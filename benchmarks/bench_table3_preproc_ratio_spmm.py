"""Paper Table 3: preprocessing-to-SpMM-kernel-time ratio bands.

Paper: at K=512 >85% of matrices are under 10x; at K=1024 >90% under 5x
(kernel time grows with K while preprocessing is K-independent, so the
K=1024 column shifts down a band).  Our preprocessing is single-process
NumPy vs their OpenMP C++ and our kernel times are model outputs, so the
absolute ratios land higher; the reproduced shape is the *K=1024 column
dominating the K=512 column* and the heavy concentration below the top
band.
"""

from conftest import emit
from repro.experiments.tables import (
    format_band_table,
    needing_reordering,
    preprocessing_ratio_bands,
    records_at_k,
)

_PAPER_TABLE3 = {
    512: {"0x~5x": 24.8, "5x~10x": 61.1, "10x~100x": 12.7, ">100x": 1.4},
    1024: {"0x~5x": 90.9, "5x~10x": 5.3, "10x~100x": 3.1, ">100x": 0.7},
}


def _compute(records):
    bands = {
        k: preprocessing_ratio_bands(
            needing_reordering(records_at_k(records, k)), "spmm"
        )
        for k in (512, 1024)
    }
    import numpy as np

    means = {
        k: float(
            np.mean(
                [r.preprocess_ratio("spmm") for r in needing_reordering(records_at_k(records, k))]
            )
        )
        for k in (512, 1024)
    }
    return bands, means


def test_table3_preprocessing_ratio_spmm(benchmark, records):
    bands, means = benchmark(_compute, records)
    text = format_band_table(
        "Table 3 — preprocessing / SpMM kernel-time ratio, gated subset", bands
    ) + "\npaper reference:\n" + format_band_table("", _PAPER_TABLE3)
    text += f"\nmean ratio: K=512 {means[512]:.0f}x, K=1024 {means[1024]:.0f}x"
    emit(benchmark, text, bands=bands, means=means)

    # Absolute bands are not comparable (pure-Python preprocessing vs a
    # modelled GPU kernel lands far above the paper's C++/silicon ratios);
    # the reproducible *shape* is that doubling K roughly halves the ratio
    # because kernel time grows with K while preprocessing does not.
    assert means[1024] < means[512] * 0.75
    def low_mass(b):
        return b["0x~5x"] + b["5x~10x"] + b["10x~100x"]

    assert low_mass(bands[1024]) >= low_mass(bands[512])
