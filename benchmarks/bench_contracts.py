"""Micro-benchmark: the disabled contract layer must be (near) free.

The acceptance bar for :mod:`repro.contracts` is that decorating the hot
kernels costs **under 2%** when ``REPRO_CONTRACTS`` is off.  A direct
A/B timing of a ~50 ms kernel cannot resolve a sub-microsecond wrapper
(run-to-run jitter alone exceeds 2%), so the gate is measured the stable
way: the disabled dispatch cost of a ``@checked`` wrapper is timed on a
no-op function over many calls (nanosecond resolution), and asserted to
be under 2% of one ``spmm_tiled`` call on the bench operands — i.e. the
wrapper could not cost the kernel 2% even if it ran on every call.

A second bench records the *enabled* cost for visibility (not gated —
the point of the toggle is that validation may cost something when
explicitly requested).
"""

import timeit

import numpy as np
import pytest

from repro.aspt import tile_matrix
from repro.contracts import checked, contracts
from repro.datasets import hidden_clusters
from repro.kernels import spmm_tiled

#: Maximum tolerated disabled-path overhead relative to one kernel call.
MAX_DISABLED_OVERHEAD = 0.02


@pytest.fixture(scope="module")
def operands():
    matrix = hidden_clusters(200, 8, 4096, 20, noise=0.1, seed=0)
    tiled = tile_matrix(matrix, 16, 2)
    X = np.random.default_rng(0).normal(size=(matrix.n_cols, 128))
    return tiled, X


def _noop(a, b):
    return a


_checked_noop = checked(lambda args: None)(_noop)


def _per_call_dispatch_cost() -> float:
    """Disabled wrapper cost per call, in seconds (minimum over repeats)."""
    calls = 100_000
    with contracts(False):
        wrapped = min(
            timeit.repeat(lambda: _checked_noop(1, 2), repeat=7, number=calls)
        )
        bare = min(timeit.repeat(lambda: _noop(1, 2), repeat=7, number=calls))
    return max(wrapped - bare, 0.0) / calls


class TestDisabledOverhead:
    def test_disabled_wrapper_under_two_percent_of_spmm_tiled(
        self, benchmark, operands
    ):
        tiled, X = operands
        with contracts(False):
            spmm_tiled(tiled, X)  # warm caches/allocator
            kernel_s = min(
                timeit.repeat(lambda: spmm_tiled(tiled, X), repeat=5, number=1)
            )
            Y = benchmark(spmm_tiled, tiled, X)
        dispatch_s = _per_call_dispatch_cost()
        overhead = dispatch_s / kernel_s
        benchmark.extra_info["kernel_s"] = kernel_s
        benchmark.extra_info["dispatch_s"] = dispatch_s
        benchmark.extra_info["overhead"] = overhead
        assert Y.shape == (tiled.original.n_rows, 128)
        assert overhead < MAX_DISABLED_OVERHEAD, (
            f"disabled @checked dispatch costs {overhead:.4%} of one "
            f"spmm_tiled call (budget {MAX_DISABLED_OVERHEAD:.0%})"
        )


class TestEnabledCost:
    def test_spmm_tiled_enabled_contract_cost(self, benchmark, operands):
        tiled, X = operands
        with contracts(True):
            Y = benchmark(spmm_tiled, tiled, X)
        assert Y.shape == (tiled.original.n_rows, 128)
