"""Micro-benchmarks of the library's own hot paths (wall-clock, not model).

Not a paper table — this is the engineering-quality check that the
vectorised Python implementations stay fast enough to drive the corpus
experiments: kernels, MinHash, LSH, clustering, tiling, the row
permutation primitive and both cache simulators.
"""

import numpy as np
import pytest

from repro.aspt import tile_matrix
from repro.clustering import cluster_rows
from repro.datasets import hidden_clusters, uniform_random
from repro.gpu.cache import approx_lru_hits, lru_hits
from repro.kernels import KernelSession, sddmm, spmm, spmm_tiled
from repro.reorder import ReorderConfig, build_plan
from repro.similarity import LSHIndex, minhash_signatures
from repro.sparse import permute_csr_rows


@pytest.fixture(scope="module")
def matrix():
    return hidden_clusters(200, 8, 4096, 20, noise=0.1, seed=0)


@pytest.fixture(scope="module")
def dense_ops(matrix):
    rng = np.random.default_rng(0)
    return (
        rng.normal(size=(matrix.n_cols, 128)),
        rng.normal(size=(matrix.n_rows, 128)),
    )


class TestKernelThroughput:
    def test_spmm(self, benchmark, matrix, dense_ops):
        X, _ = dense_ops
        Y = benchmark(spmm, matrix, X)
        assert Y.shape == (matrix.n_rows, 128)

    def test_sddmm(self, benchmark, matrix, dense_ops):
        X, Y = dense_ops
        out = benchmark(sddmm, matrix, X, Y)
        assert out.nnz == matrix.nnz

    def test_spmm_tiled(self, benchmark, matrix, dense_ops):
        X, _ = dense_ops
        tiled = tile_matrix(matrix, 16, 2)
        Y = benchmark(spmm_tiled, tiled, X)
        assert Y.shape == (matrix.n_rows, 128)

    def test_spmm_session_steady_state(self, benchmark, matrix, dense_ops):
        X, _ = dense_ops
        session = KernelSession(matrix)
        session.run(X)  # pay the pool misses before timing
        Y = benchmark(session.run, X)
        assert Y.shape == (matrix.n_rows, 128)
        assert session.stats()["evictions"] == 0

    def test_spmm_tiled_session_steady_state(self, benchmark, matrix, dense_ops):
        X, _ = dense_ops
        session = KernelSession(tile_matrix(matrix, 16, 2))
        session.run(X)
        Y = benchmark(session.run, X)
        assert Y.shape == (matrix.n_rows, 128)


class TestPreprocessingThroughput:
    def test_minhash(self, benchmark, matrix):
        sig = benchmark(minhash_signatures, matrix, 128, 0)
        assert sig.shape == (matrix.n_rows, 128)

    def test_lsh_candidates(self, benchmark, matrix):
        index = LSHIndex(siglen=128, bsize=2, seed=0)
        pairs, sims = benchmark(index.candidate_pairs, matrix)
        assert pairs.shape[0] == sims.size

    def test_clustering(self, benchmark, matrix):
        pairs, sims = LSHIndex(siglen=128, bsize=2, seed=0).candidate_pairs(matrix)
        result = benchmark(cluster_rows, matrix, pairs, sims)
        assert sorted(result.order.tolist()) == list(range(matrix.n_rows))

    def test_tiling(self, benchmark, matrix):
        tiled = benchmark(tile_matrix, matrix, 16, 2)
        assert tiled.nnz_dense + tiled.nnz_sparse == matrix.nnz

    def test_row_permutation(self, benchmark, matrix):
        order = np.random.default_rng(0).permutation(matrix.n_rows).astype(np.int64)
        out = benchmark(permute_csr_rows, matrix, order)
        assert out.nnz == matrix.nnz

    def test_full_pipeline(self, benchmark, matrix):
        plan = benchmark.pedantic(
            build_plan,
            args=(matrix, ReorderConfig(panel_height=16)),
            rounds=1,
            iterations=1,
        )
        assert plan.row_order.size == matrix.n_rows


class TestCacheSimulators:
    def test_approx_lru(self, benchmark):
        stream = uniform_random(4000, 4000, 10, seed=0).colidx
        stats = benchmark(approx_lru_hits, stream, 256)
        assert stats.accesses == stream.size

    def test_exact_lru(self, benchmark):
        stream = uniform_random(1000, 1000, 10, seed=0).colidx
        stats = benchmark.pedantic(
            lru_hits, args=(stream, 256), rounds=1, iterations=1
        )
        assert stats.accesses == stream.size
