"""Paper Fig. 11: SDDMM throughput (GFLOP/s), ASpT-NR vs ASpT-RR.

Expectation (shape): same dominance as Fig. 10; the paper's SDDMM gains are
at least as large as SpMM's.
"""

import numpy as np
import pytest

from conftest import emit
from repro.experiments import fig11_throughput_series


@pytest.mark.parametrize("k", [512, 1024])
def test_fig11_sddmm_throughput(benchmark, records, k):
    out = benchmark(fig11_throughput_series, records, k)
    emit(benchmark, out["text"])
    nr = np.array(out["series"]["nr(aspt)"])
    rr = np.array(out["series"]["rr(aspt)"])
    assert nr.size > 0
    assert (rr >= nr * 0.999).mean() > 0.9
    assert rr.mean() > nr.mean()
