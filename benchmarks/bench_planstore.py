"""Plan-store bench: cache-cold vs cache-warm ``build_plan``.

The paper's amortisation argument (preprocess once, multiply many times)
extends across *calls* with the plan store: the second identical
``build_plan`` must skip MinHash/LSH/clustering entirely and pay only
permute + tile.  This bench measures both sides on a clustered synthetic
matrix at the default corpus scale and asserts the warm path is at least
5x faster; it also reports the batched parallel front end on a small
fleet of matrices.
"""

import os
import time

from conftest import emit
from repro.datasets import hidden_clusters
from repro.planstore import PlanStore, build_plans
from repro.reorder import ReorderConfig, build_plan

#: Default-scale clustered matrix (matches the "small" corpus regime).
_MATRIX_ARGS = dict(
    n_clusters=64, rows_per_cluster=32, n_cols=2048, pattern_nnz=32
)
_CFG = ReorderConfig(panel_height=16, force_round1=True)


def _measure():
    matrix = hidden_clusters(noise=0.1, seed=11, **_MATRIX_ARGS)
    store = PlanStore()

    t0 = time.perf_counter()
    cold = build_plan(matrix, _CFG, cache=store)
    cold_s = time.perf_counter() - t0

    warm_laps = []
    for _ in range(5):
        t0 = time.perf_counter()
        warm = build_plan(matrix, _CFG, cache=store)
        warm_laps.append(time.perf_counter() - t0)
    warm_s = min(warm_laps)
    assert warm.row_order.tobytes() == cold.row_order.tobytes()

    # Pool fan-out only pays off with real cores to fan out to.
    workers = min(4, len(os.sched_getaffinity(0)))
    fleet = [
        hidden_clusters(noise=0.1, seed=seed, **_MATRIX_ARGS)
        for seed in range(4)
    ]
    t0 = time.perf_counter()
    serial = build_plans(fleet, _CFG, workers=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fanout = build_plans(fleet, _CFG, workers=workers)
    fanout_s = time.perf_counter() - t0
    assert all(r.ok for r in serial) and all(r.ok for r in fanout)

    return {
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "batch_serial_s": serial_s,
        "batch_workers": workers,
        "batch_parallel_s": fanout_s,
        "batch_speedup": serial_s / fanout_s,
    }


def test_planstore_warm_vs_cold(benchmark):
    r = benchmark.pedantic(_measure, rounds=1, iterations=1)
    text = (
        "Plan store: cache-cold vs cache-warm build_plan\n"
        f"  cold build        {r['cold_s'] * 1e3:9.1f} ms\n"
        f"  warm hit          {r['warm_s'] * 1e3:9.1f} ms   "
        f"({r['speedup']:.1f}x faster)\n"
        f"  batch of 4 serial {r['batch_serial_s'] * 1e3:9.1f} ms\n"
        f"  batch workers={r['batch_workers']}   {r['batch_parallel_s'] * 1e3:9.1f} ms   "
        f"({r['batch_speedup']:.1f}x faster)"
    )
    emit(benchmark, text, **r)
    # Acceptance: the second identical call must be >= 5x faster.
    assert r["speedup"] >= 5.0, f"warm hit only {r['speedup']:.1f}x faster"
