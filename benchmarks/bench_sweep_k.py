"""Sweep of the dense-operand width K (extension).

The paper evaluates K in {512, 1024} only.  The model lets us trace the
whole curve: at small K the dense operand fits in L2 and *any* ordering
gets the reuse for free (reordering is pointless — exactly why the paper's
story does not apply to SpMV/K=1); as K grows past the L2 capacity,
engineered reuse (dense tiles + grouped remainder rows) takes over and the
row-reordering speedup rises, then saturates once X traffic dominates
everything else.
"""

from conftest import emit
from repro.aspt import tile_matrix
from repro.datasets import hidden_clusters
from repro.experiments.config import ExperimentConfig
from repro.gpu import GPUExecutor
from repro.reorder import ReorderConfig, build_plan

KS = (32, 128, 512, 2048)


def _sweep():
    matrix = hidden_clusters(256, 8, 6144, 20, noise=0.1, seed=0)
    cfg = ExperimentConfig(scale="small")
    device, cost = cfg.effective_model()
    executor = GPUExecutor(device, cost)
    plan = build_plan(matrix, ReorderConfig(panel_height=16))
    tiled_nr = tile_matrix(matrix, 16)
    rows = []
    for k in KS:
        t_nr = executor.spmm_cost(tiled_nr, k, "aspt").time_s
        t_rr = executor.spmm_cost(plan.cost_view(), k, "aspt").time_s
        capacity_rows = device.l2_capacity_rows(k * 4, cost.l2_utilization)
        rows.append((k, capacity_rows, t_nr, t_rr, t_nr / t_rr))
    return rows


def test_speedup_vs_k(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = ["Sweep — row-reordering speedup vs dense width K (hidden clusters)",
             f"{'K':>6}{'L2 rows':>9}{'NR':>10}{'RR':>10}{'speedup':>9}"]
    for k, cap, t_nr, t_rr, sp in rows:
        lines.append(
            f"{k:>6}{cap:>9}{t_nr * 1e6:>8.1f}us{t_rr * 1e6:>8.1f}us{sp:>8.2f}x"
        )
    emit(benchmark, "\n".join(lines))

    by_k = {k: sp for k, _, _, _, sp in rows}
    # At tiny K the dense operand fits in L2: reuse is free for every
    # ordering and the dense-tile machinery can only cost (a few percent).
    assert 0.9 < by_k[32] < 1.1
    # The speedup must RISE as K pushes the operand past L2 capacity...
    assert by_k[128] > by_k[32]
    assert by_k[512] > by_k[128]
    # ...and persist (saturate, not collapse) at K=2048.
    assert by_k[2048] > 1.2
