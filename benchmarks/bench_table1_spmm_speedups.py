"""Paper Table 1: SpMM speedup bands of ASpT-RR vs best(cuSPARSE, ASpT-NR)
on the matrices needing reordering, plus the §5.2 headline statistics.

Paper values: max 2.73x/2.91x, median 1.12x/1.14x, geomean 1.17x/1.19x for
K=512/1024; <=1% of matrices in the slowdown band, none beyond 10%.
"""

from conftest import emit
from repro.experiments.tables import (
    format_band_table,
    needing_reordering,
    records_at_k,
    speedup_bands,
    summary_stats,
)

_PAPER_TABLE1 = {
    512: {"slowdown 0%~10%": 1.0, "speedup 0%~10%": 40.0, "speedup 10%~50%": 53.1,
          "speedup 50%~100%": 4.8, "speedup >100%": 1.1},
    1024: {"slowdown 0%~10%": 0.0, "speedup 0%~10%": 28.8, "speedup 10%~50%": 65.3,
           "speedup 50%~100%": 4.9, "speedup >100%": 1.0},
}


def _compute(records):
    subset = {k: needing_reordering(records_at_k(records, k)) for k in (512, 1024)}
    bands = {k: speedup_bands(v, "spmm_vs_best") for k, v in subset.items()}
    stats = {k: summary_stats(v, "spmm_vs_best") for k, v in subset.items()}
    return bands, stats


def test_table1_spmm_speedup_bands(benchmark, records):
    bands, stats = benchmark(_compute, records)
    lines = [format_band_table(
        "Table 1 — SpMM: ASpT-RR vs best(cuSPARSE, ASpT-NR), gated subset", bands
    )]
    for k in (512, 1024):
        s = stats[k]
        lines.append(
            f"K={k}: n={s['n']}  max={s['max']:.2f}x  median={s['median']:.2f}x  "
            f"geomean={s['geomean']:.2f}x   (paper: max "
            f"{'2.73' if k == 512 else '2.91'}x, median "
            f"{'1.12' if k == 512 else '1.14'}x, geomean "
            f"{'1.17' if k == 512 else '1.19'}x)"
        )
    lines.append("paper band percentages for reference:")
    lines.append(format_band_table("", _PAPER_TABLE1))
    emit(benchmark, "\n".join(lines), bands=bands, stats=stats)

    for k in (512, 1024):
        s = stats[k]
        assert s["n"] > 0
        # Shape contracts: real gains, bounded slowdowns, paper-ballpark max.
        assert s["geomean"] > 1.0
        assert s["max"] > 1.5
        assert bands[k]["slowdown 0%~10%"] <= 25.0
