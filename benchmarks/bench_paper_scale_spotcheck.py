"""Paper-scale spot check: one true-size matrix on the *unscaled* P100.

The corpus experiments shrink matrices ~6x and co-shrink the device model
(DESIGN.md §2).  This bench validates that the shrink is not doing the
work: a hidden-cluster matrix at the paper's scale (>= 10K rows/columns,
>= 100K non-zeros, the paper's selection criteria) is run against the
full 4 MB-L2 P100 with unscaled overheads, and the row-reordering speedup
must appear there too.
"""

from conftest import emit
from repro.aspt import tile_matrix
from repro.datasets import hidden_clusters
from repro.gpu import GPUExecutor, P100
from repro.reorder import ReorderConfig, build_plan


def _measure():
    # 12,288 rows x 24,576 columns, ~245K nnz: passes the paper's filter
    # (>= 10K rows/cols, >= 100K nnz); column count chosen so the original
    # dense-tile ratio sits below the 10% gate.
    matrix = hidden_clusters(
        n_clusters=1536, rows_per_cluster=8, n_cols=24576, pattern_nnz=20,
        noise=0.1, seed=0,
    )
    executor = GPUExecutor(P100)  # unscaled device, unscaled overheads
    plan = build_plan(matrix, ReorderConfig(panel_height=64))
    nr = executor.spmm_cost(tile_matrix(matrix, 64), 512, "aspt")
    rr = executor.spmm_cost(plan.cost_view(), 512, "aspt")
    cusp = executor.spmm_cost(matrix, 512, "cusparse")
    return {
        "rows": matrix.n_rows,
        "cols": matrix.n_cols,
        "nnz": matrix.nnz,
        "preprocess_s": plan.preprocessing_time,
        "round1": plan.stats.round1_applied,
        "dense_ratio_before": plan.stats.dense_ratio_before,
        "dense_ratio_after": plan.stats.dense_ratio_after,
        "t_cusparse_us": cusp.time_s * 1e6,
        "t_nr_us": nr.time_s * 1e6,
        "t_rr_us": rr.time_s * 1e6,
        "speedup_vs_best": min(nr.time_s, cusp.time_s) / rr.time_s,
    }


def test_paper_scale_spotcheck(benchmark):
    out = benchmark.pedantic(_measure, rounds=1, iterations=1)
    emit(
        benchmark,
        "Paper-scale spot check (unscaled P100, K=512)\n"
        f"  matrix              : {out['rows']} x {out['cols']}, nnz={out['nnz']}\n"
        f"  dense-tile ratio    : {out['dense_ratio_before']:.1%} -> "
        f"{out['dense_ratio_after']:.1%} (round 1 ran: {out['round1']})\n"
        f"  modelled cuSPARSE   : {out['t_cusparse_us']:9.1f} us\n"
        f"  modelled ASpT-NR    : {out['t_nr_us']:9.1f} us\n"
        f"  modelled ASpT-RR    : {out['t_rr_us']:9.1f} us\n"
        f"  RR vs best          : {out['speedup_vs_best']:.2f}x\n"
        f"  preprocessing       : {out['preprocess_s']:.1f} s wall-clock "
        "(paper: 157 ms - 298 s on this matrix-size class)",
        **out,
    )
    assert out["nnz"] >= 100_000 and out["rows"] >= 10_000  # paper's filter
    assert out["round1"]
    assert out["dense_ratio_after"] > out["dense_ratio_before"] + 0.2
    # The headline effect at true scale on the true device.
    assert out["speedup_vs_best"] > 1.3
