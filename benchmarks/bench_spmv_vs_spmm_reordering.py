"""The paper's central argument, reproduced as a measurement:

    "Traditional vertex-reordering techniques for improving data locality
    for SpMV will not work for SpMM either, because there is little
    spatial locality among the corresponding elements in different rows
    of the dense matrix."  (§1)

Setup: a *staircase* matrix (row ``i`` holds columns ``[8i, 8i+8)``) with
its rows and columns scrambled.  The staircase separates the two locality
notions perfectly — adjacent rows touch **adjacent but disjoint** columns:

* **SpMV** reads the dense vector at cache-line granularity, so restoring
  the spatial order (the ideal outcome of any vertex reordering) packs 4
  consecutive rows' operands into each 128 B line — a real speedup.
* **SpMM (K=512)** reads a 2 KB dense row per non-zero; with every column
  used exactly once there is no reuse for *any* ordering to create — the
  ideal spatial reordering buys nothing, and the paper's LSH machinery
  correctly finds no candidate pairs (the Fig. 7b automatic-detection
  behaviour).
"""

import numpy as np

from conftest import emit
from repro.datasets import staircase
from repro.experiments.config import ExperimentConfig
from repro.gpu import GPUExecutor
from repro.reorder import ReorderConfig, build_plan
from repro.sparse import permute_csr_columns, permute_csr_rows
from repro.util.arrayops import rank_of_permutation
from repro.util.rng import as_generator


def _measure():
    rng = as_generator(11)
    ordered = staircase(2000, 8, seed=rng)
    row_shuffle = rng.permutation(ordered.n_rows).astype(np.int64)
    col_shuffle = rng.permutation(ordered.n_cols).astype(np.int64)
    scrambled = permute_csr_columns(
        permute_csr_rows(ordered, row_shuffle), col_shuffle
    )
    # The *ideal* spatial reordering: exactly undo the scramble.
    restored = permute_csr_rows(
        permute_csr_columns(scrambled, rank_of_permutation(col_shuffle)),
        rank_of_permutation(row_shuffle),
    )
    assert restored.same_pattern(ordered)

    device, cost = ExperimentConfig(scale="small").effective_model()
    executor = GPUExecutor(device, cost)

    spmv_speedup = (
        executor.spmv_cost(scrambled).time_s / executor.spmv_cost(restored).time_s
    )
    spmm_speedup = (
        executor.spmm_cost(scrambled, 512, "rowwise").time_s
        / executor.spmm_cost(restored, 512, "rowwise").time_s
    )
    # And the paper's own machinery on the scrambled matrix: LSH must find
    # nothing (no two rows share a column).
    plan = build_plan(scrambled, ReorderConfig(panel_height=16))
    return {
        "spmv_speedup": spmv_speedup,
        "spmm_speedup": spmm_speedup,
        "lsh_candidates": plan.stats.n_candidates_round1
        + plan.stats.n_candidates_round2,
        "row_order_identity": bool(
            np.array_equal(plan.row_order, np.arange(scrambled.n_rows))
        ),
    }


def test_spatial_reordering_helps_spmv_not_spmm(benchmark):
    out = benchmark.pedantic(_measure, rounds=1, iterations=1)
    emit(
        benchmark,
        "Ideal spatial (vertex-style) reordering on a scrambled staircase\n"
        f"  SpMV  speedup           : {out['spmv_speedup']:.2f}x  "
        "(cache-line locality restored)\n"
        f"  SpMM  speedup (K=512)   : {out['spmm_speedup']:.2f}x  "
        "(no row reuse exists to create)\n"
        f"  LSH candidate pairs     : {out['lsh_candidates']}  "
        "(paper Fig. 7b: scattered matrices auto-detected)",
        **out,
    )
    assert out["spmv_speedup"] > 1.3
    assert 0.95 < out["spmm_speedup"] < 1.05
    assert out["lsh_candidates"] == 0
    assert out["row_order_identity"]
