"""Ablation: LSH parameters (the paper fixes siglen=128, bsize=2).

Sweeps signature length and band size on a hidden-cluster matrix and
reports candidate-pair counts, achieved ΔDenseRatio and preprocessing
time.  Expectations: smaller bsize admits many more (lower-similarity)
candidates at sharply higher preprocessing cost; overly permissive
candidates plus chained merges dilute cluster quality.  ``threshold_size``
is pinned to a matrix-proportionate 32 here (clusters have 8 rows) so the
sweep isolates the LSH parameters — see
``bench_ablation_threshold_size.py`` for why the paper's 256 should scale
with matrix size.
"""

import time

from conftest import emit
from repro.datasets import hidden_clusters
from repro.reorder import ReorderConfig, build_plan


def _sweep(matrix):
    rows = []
    for siglen in (32, 64, 128, 256):
        for bsize in (1, 2, 4):
            config = ReorderConfig(
                siglen=siglen, bsize=bsize, panel_height=16,
                threshold_size=32,
                force_round1=True, force_round2=False,
            )
            t0 = time.perf_counter()
            plan = build_plan(matrix, config)
            elapsed = time.perf_counter() - t0
            rows.append(
                (siglen, bsize, plan.stats.n_candidates_round1,
                 plan.stats.delta_dense_ratio, elapsed)
            )
    return rows


def test_ablation_lsh_params(benchmark, ):
    matrix = hidden_clusters(200, 8, 4096, 20, noise=0.15, seed=0)
    rows = benchmark.pedantic(_sweep, args=(matrix,), rounds=1, iterations=1)

    lines = ["Ablation — LSH parameters (hidden-cluster matrix, round 1 forced)",
             f"{'siglen':>7}{'bsize':>6}{'pairs':>9}{'dDenseRatio':>13}{'preproc(s)':>12}"]
    for siglen, bsize, pairs, ddr, secs in rows:
        lines.append(f"{siglen:>7}{bsize:>6}{pairs:>9}{ddr:>13.3f}{secs:>12.2f}")
    emit(benchmark, "\n".join(lines))

    by_key = {(s, b): (p, d) for s, b, p, d, _ in rows}
    # The paper's configuration must reach (near-)plateau quality:
    best_ddr = max(d for _, _, _, d, _ in rows)
    assert by_key[(128, 2)][1] >= 0.7 * best_ddr
    # Smaller bsize admits at least as many candidates at fixed siglen.
    assert by_key[(128, 1)][0] >= by_key[(128, 4)][0]
    # And reordering must be productive at every swept configuration with
    # bsize >= 2 (bsize=1 floods the heap with near-zero-similarity pairs).
    for (siglen, bsize), (_, ddr) in by_key.items():
        if bsize >= 2:
            assert ddr > 0.1, (siglen, bsize)
