"""Paper Fig. 10: SpMM throughput (GFLOP/s) of cuSPARSE / ASpT-NR / ASpT-RR
over the matrices needing reordering, sorted by ASpT-NR throughput.

Expectation (shape): the RR series dominates the NR series ("row-reordering
brings consistent speedup to SpMM with ASpT").
"""

import numpy as np
import pytest

from conftest import emit
from repro.experiments import fig10_throughput_series


@pytest.mark.parametrize("k", [512, 1024])
def test_fig10_spmm_throughput(benchmark, records, k):
    out = benchmark(fig10_throughput_series, records, k)
    emit(benchmark, out["text"])
    nr = np.array(out["series"]["nr(aspt)"])
    rr = np.array(out["series"]["rr(aspt)"])
    assert nr.size > 0
    # Consistent improvement: RR >= NR on ~all matrices (tiny tolerance for
    # gate borderline cases), and strictly better in aggregate.
    assert (rr >= nr * 0.999).mean() > 0.9
    assert rr.mean() > nr.mean()
