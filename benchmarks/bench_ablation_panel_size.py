"""Ablation: ASpT row-panel height.

Taller panels give each dense column more chances to reach the density
threshold (higher dense ratio) but dilute intra-panel similarity after
clustering; the modelled kernel time exposes the trade-off.  The paper
treats panel height as an ASpT-inherited constant; this bench shows the
pipeline is robust across a 16x range.
"""

from conftest import emit
from repro.datasets import hidden_clusters
from repro.experiments.config import ExperimentConfig
from repro.gpu import GPUExecutor
from repro.reorder import ReorderConfig, build_plan


def _sweep(matrix, executor):
    rows = []
    for panel_height in (4, 8, 16, 32, 64):
        plan = build_plan(
            matrix,
            ReorderConfig(
                panel_height=panel_height, threshold_size=32, force_round1=True
            ),
        )
        cost = executor.spmm_cost(plan.cost_view(), 512, "aspt")
        rows.append(
            (panel_height, plan.stats.dense_ratio_after, cost.time_s)
        )
    return rows


def test_ablation_panel_height(benchmark):
    matrix = hidden_clusters(200, 8, 4096, 20, noise=0.1, seed=0)
    device, cost_cfg = ExperimentConfig(scale="small").effective_model()
    executor = GPUExecutor(device, cost_cfg)

    rows = benchmark.pedantic(
        _sweep, args=(matrix, executor), rounds=1, iterations=1
    )
    lines = ["Ablation — panel height (hidden-cluster matrix, round 1 forced)",
             f"{'panel':>6}{'dense ratio':>13}{'modelled spmm':>15}"]
    for ph, ratio, t in rows:
        lines.append(f"{ph:>6}{ratio:>13.3f}{t * 1e6:>13.1f}us")
    emit(benchmark, "\n".join(lines))

    ratios = {ph: ratio for ph, ratio, _ in rows}
    times = {ph: t for ph, _, t in rows}
    # Reordering groups ~8-row clusters: panels >= the cluster size must
    # capture the bulk of the non-zeros in dense tiles.
    assert ratios[8] > 0.5
    assert ratios[16] > 0.5
    # And no sweep point should collapse (robustness claim).
    assert max(times.values()) / min(times.values()) < 3.0
