"""Ablation: the clustering ``threshold_size`` (paper default 256).

Clusters are retired when they reach ``threshold_size`` (Alg. 3's
``deleted`` flag).  Too small fragments genuine clusters across panels;
too large lets mega-clusters swallow dissimilar rows through chained
merges — and because rows within a finished cluster are emitted in index
order, a mixed mega-cluster destroys panel locality.  **Finding of this
ablation:** the optimal threshold scales with the matrix (the paper's 256
suits their >=10K-row corpus; on our ~6x-smaller matrices the plateau sits
at 16-64).  The sweep encodes that shape: small thresholds beat the
oversized one.
"""

from conftest import emit
from repro.datasets import hidden_clusters
from repro.experiments.config import ExperimentConfig
from repro.gpu import GPUExecutor
from repro.reorder import ReorderConfig, build_plan


def _sweep(matrix, executor):
    rows = []
    for threshold in (4, 16, 64, 256, 1024):
        plan = build_plan(
            matrix,
            ReorderConfig(
                panel_height=16, threshold_size=threshold, force_round1=True
            ),
        )
        cost = executor.spmm_cost(plan.cost_view(), 512, "aspt")
        rows.append((threshold, plan.stats.dense_ratio_after, cost.time_s))
    return rows


def test_ablation_threshold_size(benchmark):
    matrix = hidden_clusters(200, 8, 4096, 20, noise=0.1, seed=0)
    device, cost_cfg = ExperimentConfig(scale="small").effective_model()
    executor = GPUExecutor(device, cost_cfg)
    rows = benchmark.pedantic(_sweep, args=(matrix, executor), rounds=1, iterations=1)

    lines = ["Ablation — clustering threshold_size (hidden-cluster matrix)",
             f"{'threshold':>10}{'dense ratio':>13}{'modelled spmm':>15}"]
    for th, ratio, t in rows:
        lines.append(f"{th:>10}{ratio:>13.3f}{t * 1e6:>13.1f}us")
    emit(benchmark, "\n".join(lines))

    by_th = {th: (ratio, t) for th, ratio, t in rows}
    # Matrix-proportionate thresholds (16-64 for 8-row clusters in a
    # ~1600-row matrix) must beat the oversized 1024 (mega-cluster
    # pathology), and the tiny threshold must not collapse either.
    assert min(by_th[16][1], by_th[64][1]) < by_th[1024][1]
    assert by_th[4][1] < by_th[1024][1] * 1.5
