"""Paper Fig. 8: SpMM speedup distribution vs cuSPARSE, all matrices.

Expectation (shape): ASpT-RR shifts mass out of the slowdown / <10% bands
into the higher-speedup bands relative to ASpT-NR.
"""

import pytest

from conftest import emit
from repro.experiments import fig8_speedup_histogram


@pytest.mark.parametrize("k", [512, 1024])
def test_fig8_speedup_histogram(benchmark, records, k):
    out = benchmark(fig8_speedup_histogram, records, k)
    emit(benchmark, out["text"], bands_nr=out["bands_nr"], bands_rr=out["bands_rr"])

    def mass_above(bands, labels):
        return sum(bands[b] for b in labels)

    high = ("speedup 10%~50%", "speedup 50%~100%", "speedup >100%")
    # RR must move mass upward relative to NR.
    assert mass_above(out["bands_rr"], high) >= mass_above(out["bands_nr"], high)
