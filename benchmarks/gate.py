#!/usr/bin/env python
"""Standalone entry point for the perf-regression gate.

Equivalent to ``repro bench --gate``; kept as a script so the gate can be
run straight from a checkout (or a CI step) without installing the
console entry point::

    PYTHONPATH=src python benchmarks/gate.py --quick
    PYTHONPATH=src python benchmarks/gate.py --update-baseline

All heavy lifting lives in :mod:`repro.bench.gate`; this file only parses
arguments and prints the report.
"""

import argparse
import sys

from repro.bench.gate import DEFAULT_TOLERANCE, SUITES, run_gate


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", action="append", choices=sorted(SUITES))
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--baseline-dir", default=".")
    parser.add_argument("--out-dir", default=None)
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument(
        "--backend",
        default="numpy",
        help="compiled kernel backend dimension for the kernel cells",
    )
    args = parser.parse_args(argv)
    code, text = run_gate(
        args.suite,
        quick=args.quick,
        tolerance=args.tolerance,
        baseline_dir=args.baseline_dir,
        out_dir=args.out_dir,
        update_baseline=args.update_baseline,
        backend=args.backend,
    )
    print(text)
    return code


if __name__ == "__main__":
    sys.exit(main())
