"""Paper Fig. 12: preprocessing wall-clock distribution.

The paper reports 157 ms – 298 s (mean 69.4 s, median 59.6 s) on a 14-core
Xeon for matrices of 10^4–10^7 rows.  Our matrices are ~6x smaller and the
implementation is single-process NumPy rather than OpenMP C++, so absolute
values differ; the reproduced *shape* is the long-tailed distribution and
the fact that preprocessing stays within a few orders of magnitude of the
kernel time (Tables 3/4 check the ratios).
"""

from conftest import emit
from repro.experiments import fig12_preprocessing_times


def test_fig12_preprocessing_times(benchmark, records):
    out = benchmark(fig12_preprocessing_times, records)
    stats = out["stats"]
    emit(
        benchmark,
        out["text"]
        + (
            f"\nmeasured: n={stats['n']}  min={stats['min_s'] * 1e3:.0f}ms  "
            f"max={stats['max_s']:.2f}s  mean={stats['mean_s']:.2f}s  "
            f"median={stats['median_s']:.2f}s"
            "\npaper   : min=157ms  max=298s  mean=69.38s  median=59.58s "
            "(10^4-10^7-row matrices, OpenMP C++)"
        ),
        **stats,
    )
    assert stats["n"] > 0
    assert stats["max_s"] > stats["min_s"]
