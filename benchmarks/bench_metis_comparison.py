"""Paper §5.2 negative result: METIS-style vertex reordering for SpMM.

"It turns out all of the sparse matrices show slowdown for SpMM ... after
being reordered by METIS.  This validates our argument that
vertex-reordering does little help to SpMM."

Our METIS stand-in is a from-scratch recursive graph bisection
(``repro.baselines.bisection_order``); the expectation is that vertex
reordering helps (almost) nowhere and hurts wherever the natural ordering
had locality.
"""

import numpy as np

from conftest import emit
from repro.experiments import metis_comparison
from repro.experiments.config import ExperimentConfig
from repro.gpu import GPUExecutor
from repro.reorder import ReorderConfig


def test_metis_vertex_reordering_does_not_help(benchmark, corpus, bench_config):
    device, cost = bench_config.effective_model()
    executor = GPUExecutor(device, cost)
    # Square matrices only (vertex reordering is a graph relabelling);
    # sample across categories, capped to keep the bisection affordable.
    per_category: dict[str, int] = {}
    square = []
    for e in corpus:
        if e.matrix.n_rows != e.matrix.n_cols:
            continue
        if per_category.get(e.category, 0) >= 2:
            continue
        per_category[e.category] = per_category.get(e.category, 0) + 1
        square.append(e)

    out = benchmark.pedantic(
        metis_comparison,
        args=(square, 512),
        kwargs={
            "executor": executor,
            "reorder": ReorderConfig(
                panel_height=bench_config.reorder.panel_height,
                force_round1=False,
                force_round2=False,
            ),
        },
        rounds=1,
        iterations=1,
    )
    emit(
        benchmark,
        out["text"],
        n_slowdown=out["n_slowdown"],
        n_total=out["n_total"],
    )
    vertex = np.array(out["speedup_vs_original"])
    rr = np.array(out["rr_speedup_vs_original"])
    categories = out["categories"]
    assert out["n_total"] > 0

    # The paper observes slowdowns from METIS on *all* of its real-world
    # matrices, whose natural orderings carry locality.  That part of the
    # claim is checked on the naturally ordered categories:
    natural = {"diagonal", "banded", "smallworld", "preclustered", "rmat"}
    vertex_natural = vertex[[c in natural for c in categories]]
    assert vertex_natural.size > 0
    assert (vertex_natural <= 1.03).all()

    # On deliberately shuffled community structures (sbm / uniform /
    # powerlaw start from random labels) vertex reordering can rediscover
    # some structure — but the paper's LSH row reordering (in its
    # trial-and-error deployment mode) must stay within 5% of it on every
    # matrix and never exhibit vertex reordering's catastrophic losses.
    assert (rr >= vertex * 0.95).all()
    assert rr.min() >= 0.999  # trial-and-error never regresses
    assert vertex.min() < 0.8  # ...while vertex reordering does
