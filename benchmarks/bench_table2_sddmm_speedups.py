"""Paper Table 2: SDDMM speedup bands of ASpT-RR vs ASpT-NR, gated subset.

Paper values: max 3.19x/2.95x, median 1.45x, geomean 1.48x/1.49x; no
slowdown row at all (every gated matrix improves).
"""

from conftest import emit
from repro.experiments.tables import (
    format_band_table,
    needing_reordering,
    records_at_k,
    speedup_bands,
    summary_stats,
)

_PAPER_TABLE2 = {
    512: {"speedup 0%~10%": 11.3, "speedup 10%~50%": 44.4,
          "speedup 50%~100%": 33.8, "speedup >100%": 10.5},
    1024: {"speedup 0%~10%": 7.0, "speedup 10%~50%": 47.4,
           "speedup 50%~100%": 35.7, "speedup >100%": 9.9},
}


def _compute(records):
    subset = {k: needing_reordering(records_at_k(records, k)) for k in (512, 1024)}
    bands = {k: speedup_bands(v, "sddmm_vs_nr") for k, v in subset.items()}
    stats = {k: summary_stats(v, "sddmm_vs_nr") for k, v in subset.items()}
    return bands, stats


def test_table2_sddmm_speedup_bands(benchmark, records):
    bands, stats = benchmark(_compute, records)
    lines = [format_band_table("Table 2 — SDDMM: ASpT-RR vs ASpT-NR, gated subset", bands)]
    for k in (512, 1024):
        s = stats[k]
        lines.append(
            f"K={k}: n={s['n']}  max={s['max']:.2f}x  median={s['median']:.2f}x  "
            f"geomean={s['geomean']:.2f}x   (paper: max "
            f"{'3.19' if k == 512 else '2.95'}x, median 1.45x, geomean "
            f"{'1.48' if k == 512 else '1.49'}x)"
        )
    lines.append("paper band percentages for reference:")
    lines.append(format_band_table("", _PAPER_TABLE2))
    emit(benchmark, "\n".join(lines), bands=bands, stats=stats)

    for k in (512, 1024):
        s = stats[k]
        assert s["n"] > 0
        assert s["geomean"] >= 1.0
        assert s["max"] > 1.5
        # Paper Table 2 has no slowdown row at all; our only "slowdowns"
        # are banded matrices at 0.97-0.98x (a within-noise model artifact
        # of panel-boundary column duplication), so the band stays small
        # and shallow.
        assert bands[k]["slowdown 0%~10%"] <= 10.0
