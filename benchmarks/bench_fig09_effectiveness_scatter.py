"""Paper Fig. 9: ΔDenseRatio vs ΔAvgSim, marked by speedup/slowdown.

Expectation (shape): points with both deltas positive show speedup; the
majority of reordered matrices improve (paper: 613/1084 overall; within the
gated subset nearly all).
"""

import numpy as np

from conftest import emit
from repro.experiments import fig9_effectiveness_scatter


def test_fig9_effectiveness_scatter(benchmark, records):
    out = benchmark(fig9_effectiveness_scatter, records, 512)
    emit(
        benchmark,
        out["text"],
        n_improved=out["n_improved"],
        n_total=out["n_total"],
    )
    assert out["n_total"] > 0
    # Most gated matrices must improve.
    assert out["n_improved"] / out["n_total"] > 0.5

    # Both-deltas-positive quadrant must be all speedups (the paper's
    # cleanest claim about Fig. 9).
    dx = np.array(out["delta_dense_ratio"])
    dy = np.array(out["delta_avg_sim"])
    sp = np.array(out["speedup"])
    both_up = (dx > 0.01) & (dy > 0.01)
    if both_up.any():
        assert (sp[both_up] >= 1.0).all()
