"""Sensitivity study: do the conclusions survive a different GPU?

Re-prices the headline comparison on a V100-parameterised model (more
SMs, larger L2, higher bandwidth).  The paper evaluated on a P100 only;
a reproduction should check that the qualitative conclusions — hidden
clusters gain the most, reordering never materially regresses under the
gates — are not artifacts of one device's constants.
"""

from conftest import emit
from repro.experiments.config import SCALE_FACTORS, scale_model
from repro.experiments.tables import (
    category_breakdown,
    format_category_table,
    needing_reordering,
    records_at_k,
    summary_stats,
)
from repro.experiments.runner import run_single_matrix
from repro.gpu import GPUExecutor, V100


def _run_on_v100(corpus, bench_config):
    device, cost = scale_model(
        V100, bench_config.cost, SCALE_FACTORS[bench_config.scale]
    )
    executor = GPUExecutor(device, cost, cache_mode=bench_config.cache_mode)
    records = []
    for entry in corpus:
        records.extend(run_single_matrix(entry, bench_config, executor))
    return records


def test_conclusions_stable_on_v100(benchmark, corpus, records, bench_config):
    v100_records = benchmark.pedantic(
        _run_on_v100, args=(corpus, bench_config), rounds=1, iterations=1
    )
    p100 = needing_reordering(records_at_k(records, 512))
    v100 = needing_reordering(records_at_k(v100_records, 512))
    p100_stats = summary_stats(p100, "spmm_vs_best")
    v100_stats = summary_stats(v100, "spmm_vs_best")
    p100_cat = category_breakdown(records_at_k(records, 512))
    v100_cat = category_breakdown(records_at_k(v100_records, 512))

    emit(
        benchmark,
        "Device sensitivity — SpMM ASpT-RR vs best, gated subset, K=512\n"
        f"  P100: geomean {p100_stats['geomean']:.2f}x  max {p100_stats['max']:.2f}x\n"
        f"  V100: geomean {v100_stats['geomean']:.2f}x  max {v100_stats['max']:.2f}x\n\n"
        + format_category_table("V100 per-category", v100_cat),
        p100=p100_stats,
        v100=v100_stats,
    )
    # Conclusions stable: real aggregate gain on both devices, hidden
    # clusters the top class on both, and the two geomeans within 25%.
    assert v100_stats["geomean"] > 1.05
    assert next(iter(p100_cat)) == next(iter(v100_cat)) == "hidden"
    ratio = v100_stats["geomean"] / p100_stats["geomean"]
    assert 0.75 < ratio < 1.33
