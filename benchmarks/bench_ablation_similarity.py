"""Ablation (extension): the similarity measure driving the clustering.

The paper scores candidate pairs with Jaccard.  This sweep re-runs the
pipeline with cosine, overlap-coefficient and Dice scoring on matrices
with uniform and with *skewed* row lengths.  Expectation: on uniform-length
clusters the measures are order-equivalent (identical results); measurable
divergence needs rows of very different lengths, where overlap/cosine rank
subset-style pairs higher than Jaccard.
"""

import numpy as np

from conftest import emit
from repro.datasets import bipartite_ratings, hidden_clusters
from repro.experiments.config import ExperimentConfig
from repro.gpu import GPUExecutor
from repro.reorder import ReorderConfig, build_plan
from repro.similarity import MEASURES


def _sweep(matrices, executor):
    rows = []
    for matrix_name, matrix in matrices.items():
        for measure in MEASURES:
            plan = build_plan(
                matrix,
                ReorderConfig(
                    panel_height=16, threshold_size=32, measure=measure,
                    force_round1=True,
                ),
            )
            cost = executor.spmm_cost(plan.cost_view(), 512, "aspt")
            rows.append(
                (matrix_name, measure, plan.stats.dense_ratio_after, cost.time_s)
            )
    return rows


def test_ablation_similarity_measure(benchmark):
    matrices = {
        "hidden(uniform-len)": hidden_clusters(160, 8, 3072, 20, noise=0.1, seed=0),
        "bipartite(skewed)": bipartite_ratings(
            1600, 1200, 18, n_taste_groups=20, concentration=0.9, seed=0
        ),
    }
    device, cost_cfg = ExperimentConfig(scale="small").effective_model()
    executor = GPUExecutor(device, cost_cfg)
    rows = benchmark.pedantic(_sweep, args=(matrices, executor), rounds=1, iterations=1)

    lines = ["Ablation — clustering similarity measure (extension beyond the paper)",
             f"{'matrix':>22}{'measure':>10}{'dense ratio':>13}{'modelled spmm':>15}"]
    for name, measure, ratio, t in rows:
        lines.append(f"{name:>22}{measure:>10}{ratio:>13.3f}{t * 1e6:>13.1f}us")
    emit(benchmark, "\n".join(lines))

    by_key = {(n, m): t for n, m, _, t in rows}
    for name in matrices:
        times = np.array([by_key[(name, m)] for m in MEASURES])
        # No measure catastrophically better/worse: the paper's Jaccard
        # choice is safe (within 15% of the best measure on both classes).
        assert by_key[(name, "jaccard")] <= times.min() * 1.15, name
