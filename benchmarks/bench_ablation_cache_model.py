"""Ablation: exact LRU vs vectorised reuse-distance approximation.

The corpus sweeps use the vectorised time-distance model
(:func:`repro.gpu.cache.approx_lru_hits`); this bench quantifies its
accuracy against the exact stack-distance simulator on real kernel access
streams, and its speed advantage (the reason it exists).
"""

import time

import numpy as np

from conftest import emit
from repro.datasets import hidden_clusters, power_law_rows, uniform_random
from repro.gpu.cache import approx_lru_hits, lru_hits
from repro.gpu.trace import block_access_stream


def _streams():
    return {
        "uniform": block_access_stream(uniform_random(1200, 1200, 8, seed=0), 4),
        "powerlaw": block_access_stream(power_law_rows(1200, 1200, 10, seed=0), 4),
        "hidden": block_access_stream(hidden_clusters(150, 8, 1200, 16, seed=0), 4),
    }


def _compare(streams, capacity=128, slack=4.0):
    rows = []
    for name, stream in streams.items():
        t0 = time.perf_counter()
        exact = lru_hits(stream, capacity)
        t_exact = time.perf_counter() - t0
        lower = approx_lru_hits(stream, capacity, slack=1.0)
        t0 = time.perf_counter()
        approx = approx_lru_hits(stream, capacity, slack=slack)
        t_approx = time.perf_counter() - t0
        rows.append((name, stream.size, exact.hit_rate, lower.hit_rate,
                     approx.hit_rate, t_exact, t_approx))
    return rows


def test_ablation_cache_model_accuracy(benchmark):
    streams = _streams()
    rows = benchmark.pedantic(_compare, args=(streams,), rounds=1, iterations=1)

    lines = ["Ablation — exact LRU vs reuse-distance approximation (capacity=128)",
             f"{'stream':>10}{'accesses':>10}{'exact':>9}{'slack=1':>9}{'slack=4':>9}"
             f"{'exact(s)':>10}{'approx(s)':>11}{'speedup':>9}"]
    for name, n, he, hl, ha, te, ta in rows:
        lines.append(
            f"{name:>10}{n:>10}{he:>8.1%}{hl:>9.1%}{ha:>9.1%}{te:>10.3f}{ta:>11.4f}"
            f"{te / max(ta, 1e-9):>8.0f}x"
        )
    emit(benchmark, "\n".join(lines))

    for name, n, hit_exact, hit_lower, hit_approx, t_exact, t_approx in rows:
        # slack=1 is a guaranteed lower bound (stack distance <= time
        # distance, proved in repro.gpu.cache and property-tested).
        assert hit_lower <= hit_exact + 1e-12, name
        # slack=4 (the corpus setting) stays within 30 percentage points
        # on every stream class.
        assert abs(hit_exact - hit_approx) < 0.30, name
        # Speed: the vectorised model must be at least 5x faster.
        assert t_approx * 5 < t_exact, name
