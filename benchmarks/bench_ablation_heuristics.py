"""Ablation: the §4 skip heuristics.

Runs the pipeline three ways over a mixed mini-corpus — gates on (the
paper's configuration), reordering forced ON everywhere, and forced OFF —
and compares aggregate modelled SpMM time.  Expectation: the gated
configuration captures (almost) all of force-ON's wins while avoiding its
losses on pre-clustered matrices, i.e. gated <= min(on, off) in aggregate
up to small tolerance.
"""

import numpy as np
from dataclasses import replace

from conftest import emit
from repro.datasets import build_corpus
from repro.experiments.config import ExperimentConfig
from repro.gpu import GPUExecutor
from repro.reorder import build_plan


def _total_time(entries, executor, reorder_config):
    total = 0.0
    for e in entries:
        plan = build_plan(e.matrix, reorder_config)
        total += executor.spmm_cost(plan.cost_view(), 512, "aspt").time_s
    return total


def test_ablation_skip_heuristics(benchmark):
    entries = build_corpus(
        "tiny", repeats=1,
        categories=("hidden", "preclustered", "banded", "uniform"),
    )
    cfg = ExperimentConfig(ks=(512,), scale="tiny", repeats=1)
    device, cost = cfg.effective_model()
    executor = GPUExecutor(device, cost)
    base = cfg.reorder

    def _sweep():
        gated = _total_time(entries, executor, base)
        forced_on = _total_time(
            entries, executor, replace(base, force_round1=True, force_round2=True)
        )
        forced_off = _total_time(
            entries, executor, replace(base, force_round1=False, force_round2=False)
        )
        return gated, forced_on, forced_off

    gated, on, off = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        benchmark,
        "Ablation — §4 skip heuristics (aggregate modelled SpMM time, mini-corpus)\n"
        f"  gates on (paper)   : {gated * 1e6:9.1f} us\n"
        f"  always reorder     : {on * 1e6:9.1f} us\n"
        f"  never reorder      : {off * 1e6:9.1f} us",
        gated_us=gated * 1e6, forced_on_us=on * 1e6, forced_off_us=off * 1e6,
    )
    # Gated must beat never-reordering (it captures the hidden-cluster wins)
    assert gated < off
    # and be competitive with always-on.  The gates trade a little peak
    # gain for safety: borderline matrices (prior dense ratio just above
    # the 10% threshold) skip round 1 even though forcing it would have
    # helped a bit, so allow a modest margin.
    assert gated <= on * 1.25
