"""Shared fixtures for the benchmark suite.

The corpus experiment (the expensive part) runs **once per session** and is
shared by every table/figure bench; each bench then times its own
presentation-layer computation with pytest-benchmark and prints the
regenerated table/figure (visible with ``pytest benchmarks/ -s`` and
attached to the benchmark's ``extra_info`` either way).
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))  # noqa: E402

from repro.datasets import build_corpus
from repro.experiments import ExperimentConfig, run_experiment

#: Corpus scale used by the benches.  Override with REPRO_BENCH_SCALE.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
#: Replicas per corpus spec.  Override with REPRO_BENCH_REPEATS.
BENCH_REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        ks=(512, 1024), scale=BENCH_SCALE, repeats=BENCH_REPEATS
    )


@pytest.fixture(scope="session")
def corpus(bench_config):
    """The corpus standing in for the paper's 1084 matrices."""
    return build_corpus(
        bench_config.scale, seed=bench_config.seed, repeats=bench_config.repeats
    )


@pytest.fixture(scope="session")
def records(bench_config, corpus):
    """One full corpus run: all kernel variants, K in {512, 1024}."""
    return run_experiment(bench_config, entries=corpus)


def emit(benchmark, text: str, **extra) -> None:
    """Print a regenerated table/figure and attach it to the benchmark."""
    print()
    print(text)
    benchmark.extra_info["output"] = text
    for key, value in extra.items():
        benchmark.extra_info[key] = value
