"""Paper Figs. 3/4 worked example: global-memory access counts 13 -> 12 -> 6.

Regenerates the paper's walk-through numbers on the reconstructed 6x6
matrix and benchmarks the trace-counting machinery.
"""

import numpy as np

from conftest import emit
from repro.gpu import paper_example_access_counts
from repro.sparse import COOMatrix


def _paper_matrix():
    supports = {0: [0, 4], 1: [1, 3, 5], 2: [2, 4], 3: [1], 4: [0, 3, 4], 5: [2, 5]}
    rows, cols = [], []
    for r, cs in supports.items():
        rows += [r] * len(cs)
        cols += cs
    return COOMatrix.from_arrays(
        (6, 6), np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64)
    ).to_csr()


def test_fig3_access_count_walkthrough(benchmark):
    csr = _paper_matrix()

    counts = benchmark(
        paper_example_access_counts,
        csr,
        panel_height=3,
        rows_per_block=2,
        dense_threshold=2,
        round1_order=np.array([0, 4, 2, 3, 1, 5]),
        round2_order=np.array([1, 4, 2, 5, 0, 3]),
    )
    assert counts.rowwise == 13
    assert counts.aspt == 12
    assert counts.aspt_reordered == 6
    emit(
        benchmark,
        "Paper Figs. 3/4 worked example — global memory accesses\n"
        f"  row-wise on original matrix : {counts.rowwise}   (paper: 13)\n"
        f"  ASpT on original matrix     : {counts.aspt}   (paper: 12)\n"
        f"  ASpT after row reordering   : {counts.aspt_reordered}    (paper: 6)",
        rowwise=counts.rowwise,
        aspt=counts.aspt,
        aspt_reordered=counts.aspt_reordered,
    )
