"""Paper Table 4: preprocessing-to-SDDMM-kernel-time ratio bands.

Same construction and caveats as Table 3 (see
``bench_table3_preproc_ratio_spmm.py``); the paper's SDDMM kernels are
slightly slower than SpMM, so the ratios sit slightly lower.
"""

from conftest import emit
from repro.experiments.tables import (
    format_band_table,
    needing_reordering,
    preprocessing_ratio_bands,
    records_at_k,
)

_PAPER_TABLE4 = {
    512: {"0x~5x": 33.2, "5x~10x": 61.3, "10x~100x": 4.5, ">100x": 1.0},
    1024: {"0x~5x": 95.7, "5x~10x": 2.4, "10x~100x": 1.7, ">100x": 0.2},
}


def _compute(records):
    bands = {
        k: preprocessing_ratio_bands(
            needing_reordering(records_at_k(records, k)), "sddmm"
        )
        for k in (512, 1024)
    }
    import numpy as np

    means = {
        k: float(
            np.mean(
                [r.preprocess_ratio("sddmm") for r in needing_reordering(records_at_k(records, k))]
            )
        )
        for k in (512, 1024)
    }
    return bands, means


def test_table4_preprocessing_ratio_sddmm(benchmark, records):
    bands, means = benchmark(_compute, records)
    text = format_band_table(
        "Table 4 — preprocessing / SDDMM kernel-time ratio, gated subset", bands
    ) + "\npaper reference:\n" + format_band_table("", _PAPER_TABLE4)
    text += f"\nmean ratio: K=512 {means[512]:.0f}x, K=1024 {means[1024]:.0f}x"
    emit(benchmark, text, bands=bands, means=means)

    # Same shape contract as Table 3: doubling K roughly halves the ratio.
    assert means[1024] < means[512] * 0.75

    def low_mass(b):
        return b["0x~5x"] + b["5x~10x"] + b["10x~100x"]

    assert low_mass(bands[1024]) >= low_mass(bands[512])
