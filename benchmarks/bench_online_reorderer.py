"""Extension bench: online (streaming) row placement vs the batch pipeline.

`repro.reorder.OnlineReorderer` ingests rows one at a time; this bench
streams a taste-clustered rating matrix through it and compares (a) the
preprocessing cost and (b) the resulting modelled SpMM time against the
full batch pipeline and the arrival order.  Expectation: online reaches
batch-level quality at a fraction of the preprocessing cost.
"""

import time

from conftest import emit
from repro.aspt import tile_matrix
from repro.datasets import bipartite_ratings
from repro.experiments.config import ExperimentConfig
from repro.gpu import GPUExecutor
from repro.reorder import OnlineReorderer, ReorderConfig, build_plan
from repro.sparse import permute_csr_rows


def _measure():
    ratings = bipartite_ratings(
        2048, 2048, 20, n_taste_groups=64, concentration=0.95, seed=7
    )
    t0 = time.perf_counter()
    online = OnlineReorderer(ratings.n_cols, siglen=128, bsize=2, seed=0)
    online.insert_matrix(ratings)
    online_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    plan = build_plan(ratings, ReorderConfig(panel_height=16, force_round1=True))
    batch_s = time.perf_counter() - t0

    device, cost = ExperimentConfig(scale="small").effective_model()
    executor = GPUExecutor(device, cost)
    arrival_t = executor.spmm_cost(tile_matrix(ratings, 16), 512, "aspt").time_s
    online_t = executor.spmm_cost(
        tile_matrix(permute_csr_rows(ratings, online.order()), 16), 512, "aspt"
    ).time_s
    batch_t = executor.spmm_cost(plan.cost_view(), 512, "aspt").time_s
    return {
        "online_preproc_s": online_s,
        "batch_preproc_s": batch_s,
        "arrival_us": arrival_t * 1e6,
        "online_us": online_t * 1e6,
        "batch_us": batch_t * 1e6,
        "online_speedup": arrival_t / online_t,
        "batch_speedup": arrival_t / batch_t,
    }


def test_online_matches_batch_quality(benchmark):
    out = benchmark.pedantic(_measure, rounds=1, iterations=1)
    emit(
        benchmark,
        "Online (streaming) vs batch reordering — rating matrix, K=512\n"
        f"  preprocessing: online {out['online_preproc_s']:.2f}s, "
        f"batch {out['batch_preproc_s']:.2f}s\n"
        f"  modelled SpMM: arrival {out['arrival_us']:.1f}us, "
        f"online {out['online_us']:.1f}us ({out['online_speedup']:.2f}x), "
        f"batch {out['batch_us']:.1f}us ({out['batch_speedup']:.2f}x)",
        **out,
    )
    # Online must recover at least ~85% of the batch pipeline's speedup...
    assert out["online_speedup"] >= 0.85 * out["batch_speedup"]
    assert out["online_speedup"] > 1.3
    # ...at materially lower preprocessing cost.
    assert out["online_preproc_s"] < out["batch_preproc_s"]
