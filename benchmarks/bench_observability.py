"""Micro-benchmark: the disabled tracer must be (near) free.

The acceptance bar for :mod:`repro.observability` mirrors the contract
layer's: instrumenting the hot kernels costs **under 2%** when no tracer
is installed.  A direct A/B timing of a ~50 ms kernel cannot resolve a
sub-microsecond ``span()`` dispatch (run-to-run jitter alone exceeds
2%), so the gate is measured the stable way: the disabled dispatch cost
of one ``with span(...)`` block is timed over many iterations
(nanosecond resolution) and asserted to be under 2% of one
``spmm_tiled`` call on the bench operands — i.e. the instrumentation
could not cost the kernel 2% even if a span wrapped every call.

A second bench records the *enabled* (tracer-installed) cost for
visibility; it is not gated — collecting a trace is allowed to cost
something when explicitly requested.
"""

import timeit

import numpy as np
import pytest

from repro.aspt import tile_matrix
from repro.datasets import hidden_clusters
from repro.kernels import spmm_tiled
from repro.observability import Tracer, span, tracing

#: Maximum tolerated disabled-path overhead relative to one kernel call.
MAX_DISABLED_OVERHEAD = 0.02


@pytest.fixture(scope="module")
def operands():
    matrix = hidden_clusters(200, 8, 4096, 20, noise=0.1, seed=0)
    tiled = tile_matrix(matrix, 16, 2)
    X = np.random.default_rng(0).normal(size=(matrix.n_cols, 128))
    return tiled, X


def _spanned_noop():
    with span("bench.noop", k=1):
        pass


def _bare_noop():
    pass


def _per_span_dispatch_cost() -> float:
    """Disabled ``span()`` cost per use, in seconds (minimum over repeats)."""
    calls = 100_000
    spanned = min(timeit.repeat(_spanned_noop, repeat=7, number=calls))
    bare = min(timeit.repeat(_bare_noop, repeat=7, number=calls))
    return max(spanned - bare, 0.0) / calls


class TestDisabledOverhead:
    def test_disabled_span_under_two_percent_of_spmm_tiled(
        self, benchmark, operands
    ):
        tiled, X = operands
        spmm_tiled(tiled, X)  # warm caches/allocator
        kernel_s = min(
            timeit.repeat(lambda: spmm_tiled(tiled, X), repeat=5, number=1)
        )
        Y = benchmark(spmm_tiled, tiled, X)
        dispatch_s = _per_span_dispatch_cost()
        overhead = dispatch_s / kernel_s
        benchmark.extra_info["kernel_s"] = kernel_s
        benchmark.extra_info["dispatch_s"] = dispatch_s
        benchmark.extra_info["overhead"] = overhead
        assert Y.shape == (tiled.original.n_rows, 128)
        assert overhead < MAX_DISABLED_OVERHEAD, (
            f"disabled span() dispatch costs {overhead:.4%} of one "
            f"spmm_tiled call (budget {MAX_DISABLED_OVERHEAD:.0%})"
        )


class TestEnabledCost:
    def test_spmm_tiled_under_installed_tracer(self, benchmark, operands):
        tiled, X = operands
        with tracing(Tracer()):
            Y = benchmark(spmm_tiled, tiled, X)
        assert Y.shape == (tiled.original.n_rows, 128)
