"""BIDMach-like SDDMM baseline.

The paper cites ASpT as 3.6x faster than BIDMach on SDDMM and therefore
compares ASpT-RR only against ASpT-NR; this baseline exists so that context
figure can be reproduced too.  Functionally it is the row-wise SDDMM; its
performance character (``variant="bidmach"``) is an untiled kernel with the
low bandwidth efficiency documented in
:class:`repro.gpu.costmodel.CostModelConfig`.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.costmodel import KernelCost
from repro.gpu.executor import GPUExecutor
from repro.kernels.sddmm import sddmm
from repro.sparse.csr import CSRMatrix

__all__ = ["BidmachLikeSDDMM"]


class BidmachLikeSDDMM:
    """Machine-learning-library stand-in for SDDMM."""

    def __init__(self, csr: CSRMatrix):
        self.csr = csr

    def sddmm(self, X: np.ndarray, Y: np.ndarray) -> CSRMatrix:
        """Compute ``(Y @ X.T) .* csr``."""
        return sddmm(self.csr, X, Y)

    def cost(self, k: int, executor: GPUExecutor | None = None) -> KernelCost:
        """Modelled kernel cost for dense width ``k``."""
        executor = executor or GPUExecutor()
        return executor.sddmm_cost(self.csr, k, "bidmach")
