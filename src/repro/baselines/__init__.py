"""Baselines the paper compares against.

* :mod:`repro.baselines.cusparse_like` — the generic vendor SpMM kernel
  (cuSPARSE csrmm stand-in).
* :mod:`repro.baselines.bidmach_like` — the untiled SDDMM baseline
  (BIDMach stand-in).
* :mod:`repro.baselines.vertex_reorder` — vertex reordering (METIS
  stand-in: recursive graph bisection; plus reverse Cuthill–McKee), used to
  reproduce the paper's §5.2 negative result that vertex reordering does
  not help SpMM.
"""

from repro.baselines.bidmach_like import BidmachLikeSDDMM
from repro.baselines.cusparse_like import CusparseLikeSpMM
from repro.baselines.vertex_reorder import (
    apply_symmetric_order,
    bisection_order,
    reverse_cuthill_mckee,
    symmetrized_adjacency,
)

__all__ = [
    "BidmachLikeSDDMM",
    "CusparseLikeSpMM",
    "apply_symmetric_order",
    "bisection_order",
    "reverse_cuthill_mckee",
    "symmetrized_adjacency",
]
