"""cuSPARSE-like SpMM baseline.

Functionally this is the ordinary row-wise kernel; its distinguishing
characteristics live in the performance model (``variant="cusparse"``):
one row per thread block (no intra-block column sharing from row
adjacency) and the generality bandwidth penalty documented in
:class:`repro.gpu.costmodel.CostModelConfig`.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.costmodel import KernelCost
from repro.gpu.executor import GPUExecutor
from repro.kernels.spmm import spmm
from repro.sparse.csr import CSRMatrix

__all__ = ["CusparseLikeSpMM"]


class CusparseLikeSpMM:
    """Vendor-library stand-in: SpMM with no structure-adaptive tiling.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.sparse import CSRMatrix
    >>> kernel = CusparseLikeSpMM(CSRMatrix.from_dense(np.eye(3)))
    >>> kernel.spmm(np.ones((3, 2))).shape
    (3, 2)
    """

    def __init__(self, csr: CSRMatrix):
        self.csr = csr

    def spmm(self, X: np.ndarray) -> np.ndarray:
        """Compute ``csr @ X``."""
        return spmm(self.csr, X)

    def cost(self, k: int, executor: GPUExecutor | None = None) -> KernelCost:
        """Modelled kernel cost for dense width ``k``."""
        executor = executor or GPUExecutor()
        return executor.spmm_cost(self.csr, k, "cusparse")
