"""Vertex reordering baselines (from scratch).

The paper's §5.2 runs METIS — a graph-partitioning vertex reordering — on
every matrix and shows that *all* of them slow down for SpMM, supporting
the argument that vertex reordering (which permutes the dense operand's
rows for spatial locality) is the wrong tool for SpMM, where locality must
be *temporal* over whole dense rows.

Two classic vertex orderings are implemented here on the symmetrised
pattern graph:

* :func:`reverse_cuthill_mckee` — BFS-based bandwidth reduction;
* :func:`bisection_order` — recursive graph bisection via BFS level sets,
  the closest from-scratch analogue of METIS's multilevel partitioning
  (vertices of the same part get contiguous labels).

Both return a permutation intended to be applied *symmetrically*
(:func:`apply_symmetric_order`): rows and columns are relabelled together,
exactly what reordering a graph's vertices means.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import permute_csr_columns, permute_csr_rows
from repro.util.arrayops import rank_of_permutation
from repro.util.validation import check_positive

__all__ = [
    "symmetrized_adjacency",
    "reverse_cuthill_mckee",
    "bisection_order",
    "apply_symmetric_order",
]


def symmetrized_adjacency(csr: CSRMatrix) -> CSRMatrix:
    """Pattern of ``A + A^T`` without the diagonal, as canonical CSR.

    Vertex orderings operate on the undirected graph underlying the
    matrix; requires a square matrix.
    """
    if csr.n_rows != csr.n_cols:
        raise ValidationError(
            f"vertex reordering requires a square matrix, got {csr.shape}"
        )
    n = csr.n_rows
    rows = np.concatenate([csr.row_ids(), csr.colidx])
    cols = np.concatenate([csr.colidx, csr.row_ids()])
    off_diag = rows != cols
    rows, cols = rows[off_diag], cols[off_diag]
    from repro.sparse.coo import COOMatrix
    from repro.sparse.conversions import coo_to_csr

    sym = coo_to_csr(
        COOMatrix((n, n), rows, cols, np.ones(rows.size, dtype=np.float64))
    )
    return sym.pattern()


def reverse_cuthill_mckee(csr: CSRMatrix) -> np.ndarray:
    """Reverse Cuthill–McKee ordering of the symmetrised graph.

    Starts each component from a minimum-degree vertex and reverses the
    final BFS order (the classic bandwidth-reduction recipe).
    """
    adj = symmetrized_adjacency(csr)
    n = adj.n_rows
    degrees = adj.row_lengths()
    remaining = np.ones(n, dtype=bool)
    order_parts: list[np.ndarray] = []
    while remaining.any():
        candidates = np.flatnonzero(remaining)
        start = int(candidates[np.argmin(degrees[candidates])])
        component = _component_bfs(adj, start, remaining, by_degree=True)
        remaining[component] = False
        order_parts.append(component)
    order = np.concatenate(order_parts) if order_parts else np.arange(n, dtype=np.int64)
    return order[::-1].copy()


def _component_bfs(adj: CSRMatrix, start: int, allowed: np.ndarray, by_degree: bool) -> np.ndarray:
    """BFS of a single connected component (helper for the orderings)."""
    degrees = adj.row_lengths()
    visited = np.zeros(adj.n_rows, dtype=bool)
    visited[~allowed] = True
    order: list[int] = []
    queue = [start]
    visited[start] = True
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        order.append(v)
        neighbours = adj.row_cols(v)
        fresh = neighbours[~visited[neighbours]]
        if by_degree and fresh.size > 1:
            fresh = fresh[np.argsort(degrees[fresh], kind="stable")]
        visited[fresh] = True
        queue.extend(fresh.tolist())
    return np.asarray(order, dtype=np.int64)


def bisection_order(csr: CSRMatrix, *, leaf_size: int = 64) -> np.ndarray:
    """Recursive-bisection vertex ordering (METIS stand-in).

    Each subgraph is split by a BFS level-set bisection: grow a region from
    a minimum-degree seed until half the vertices are absorbed; the region
    and its complement recurse independently.  Vertices of the same final
    part receive contiguous new labels — the property graph-partitioning
    reorderings rely on for locality.
    """
    check_positive("leaf_size", leaf_size)
    adj = symmetrized_adjacency(csr)
    n = adj.n_rows
    degrees = adj.row_lengths()

    out: list[np.ndarray] = []
    stack: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    while stack:
        nodes = stack.pop()
        if nodes.size <= leaf_size:
            out.append(nodes)
            continue
        allowed = np.zeros(n, dtype=bool)
        allowed[nodes] = True
        seed = int(nodes[np.argmin(degrees[nodes])])
        visited = ~allowed
        visited = visited.copy()
        region: list[int] = []
        queue = [seed]
        visited[seed] = True
        half = nodes.size // 2
        head = 0
        while head < len(queue) and len(region) < half:
            v = queue[head]
            head += 1
            region.append(v)
            neighbours = adj.row_cols(v)
            fresh = neighbours[~visited[neighbours]]
            visited[fresh] = True
            queue.extend(fresh.tolist())
        region_arr = np.asarray(region, dtype=np.int64)
        in_region = np.zeros(n, dtype=bool)
        in_region[region_arr] = True
        rest = nodes[~in_region[nodes]]
        if region_arr.size == 0 or rest.size == 0:
            out.append(nodes)  # degenerate split (tiny component) — stop
            continue
        # LIFO order keeps the final concatenation depth-first, i.e.
        # hierarchically contiguous.
        stack.append(rest)
        stack.append(region_arr)
    return np.concatenate(out) if out else np.arange(n, dtype=np.int64)


def apply_symmetric_order(csr: CSRMatrix, order: np.ndarray) -> CSRMatrix:
    """Relabel vertices: permute rows *and* columns by the same ordering.

    ``order[k]`` is the old vertex placed at new position ``k``; column
    relabelling therefore uses the inverse permutation.
    """
    permuted = permute_csr_rows(csr, order)
    return permute_csr_columns(permuted, rank_of_permutation(np.asarray(order, dtype=np.int64)))
