"""A small synchronous client for the ``repro serve`` protocol.

Deliberately plain blocking sockets: the client is used by the CLI
(``repro doctor --serve``), by tests (which drive an in-process server
from worker threads) and as executable documentation of the wire
protocol.  One request, one response, in order, per connection.
"""

from __future__ import annotations

import socket

import numpy as np

from repro.errors import ReproIOError, ValidationError
from repro.serve.protocol import (
    decode_message,
    delta_to_wire,
    encode_message,
    matrix_to_wire,
)

__all__ = ["ServeClient", "parse_address"]


def parse_address(address: str):
    """Parse a CLI address: ``host:port`` (TCP) or a path (UNIX socket).

    >>> parse_address("127.0.0.1:7077")
    ('127.0.0.1', 7077)
    >>> parse_address("/tmp/repro.sock")
    '/tmp/repro.sock'
    """
    if "/" in address or address.startswith("@"):
        return address
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValidationError(
            f"address must be host:port or a UNIX socket path, got {address!r}"
        )
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError as exc:
        raise ValidationError(f"invalid port in address {address!r}") from exc


class ServeClient:
    """Blocking NDJSON client (context-manager; one connection).

    ``address`` is a ``(host, port)`` pair or a UNIX socket path (the
    return shape of :func:`parse_address`).
    """

    def __init__(self, address, *, timeout: float | None = 30.0) -> None:
        self.address = address
        try:
            if isinstance(address, str):
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(timeout)
                self._sock.connect(address)
            else:
                host, port = address
                self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ReproIOError(f"cannot connect to {address!r}: {exc}") from exc
        self._file = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    def request(self, msg: dict) -> dict:
        """Send one message and block for its response."""
        try:
            self._sock.sendall(encode_message(msg))
            line = self._file.readline()
        except OSError as exc:
            raise ReproIOError(f"request to {self.address!r} failed: {exc}") from exc
        if not line:
            raise ReproIOError(
                f"server at {self.address!r} closed the connection mid-request"
            )
        return decode_message(line)

    def ping(self) -> dict:
        """Liveness probe; returns ``{"status": "ok", "pong": true, ...}``."""
        return self.request({"op": "ping"})

    def upload(self, csr) -> dict:
        """Upload a :class:`~repro.sparse.CSRMatrix`; returns its fingerprint."""
        return self.request({"op": "upload", "matrix": matrix_to_wire(csr)})

    def spmm(
        self,
        x: np.ndarray,
        *,
        fingerprint: str | None = None,
        matrix=None,
        deadline_s: float | None = None,
        tenant: str | None = None,
        request_id=None,
    ) -> dict:
        """One multiply request; returns the raw response dict.

        On ``status == "ok"`` the dense result is under ``"result"`` —
        use :meth:`result_array` to get it back as float64.
        """
        msg: dict = {"op": "spmm", "x": np.asarray(x, dtype=np.float64).tolist()}
        if fingerprint is not None:
            msg["fingerprint"] = fingerprint
        if matrix is not None:
            msg["matrix"] = matrix_to_wire(matrix)
        if deadline_s is not None:
            msg["deadline_s"] = deadline_s
        if tenant is not None:
            msg["tenant"] = tenant
        if request_id is not None:
            msg["id"] = request_id
        return self.request(msg)

    def delta(self, fingerprint: str, delta) -> dict:
        """Stream a :class:`~repro.streaming.DeltaBatch` into ``fingerprint``.

        On ``status == "ok"`` the response carries the mutated matrix's
        new ``fingerprint`` (use it for subsequent ``spmm`` requests) and
        the number of warm sessions the update invalidated.
        """
        return self.request(
            {"op": "delta", "fingerprint": fingerprint, "delta": delta_to_wire(delta)}
        )

    @staticmethod
    def result_array(response: dict) -> np.ndarray:
        """The dense result of an ``ok`` spmm response as float64."""
        if response.get("status") != "ok" or "result" not in response:
            raise ValidationError(
                f"response has no result (status={response.get('status')!r})"
            )
        return np.asarray(response["result"], dtype=np.float64)

    def health(self) -> dict:
        """Readiness/health snapshot (pool, admission, breaker, shed state)."""
        return self.request({"op": "health"})

    def metrics(self) -> dict:
        """Flat snapshot of the server's metrics registry."""
        return self.request({"op": "metrics"})

    def drain(self) -> dict:
        """Ask the server to drain and shut down."""
        return self.request({"op": "drain"})

    def close(self) -> None:
        """Close the socket; the client cannot be reused afterwards."""
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
