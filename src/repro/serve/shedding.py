"""Load shedding onto the degradation ladder, plus the compile breaker.

Under pressure the server has exactly one good option the library
already implements: build *cheaper plans*.  The
:class:`LoadShedController` maps two pressure signals — in-flight depth
and a sliding-window p95 latency — onto the 4-rung degradation ladder
(``full -> round1-only -> identity -> untiled-csr``,
:data:`repro.resilience.policy.LADDER_RUNGS`).  A shed request is served
a degraded-but-provenance-tagged plan instead of timing out; the
response says which rung it got.

The :class:`CircuitBreaker` guards backend JIT compilation: after
``threshold`` consecutive compile failures (including the injected
``backend.compile`` chaos fault) the breaker *opens* and sessions are
built directly on the numpy reference backend — no doomed compile
attempt on the request path — until ``reset_s`` elapses and a half-open
trial probes whether compilation recovered.

Both classes take injectable clocks and are deterministic given their
inputs; neither influences numeric results, only which (bitwise-verified)
plan variant serves a request.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.observability.metrics import METRICS
from repro.resilience.policy import LADDER_RUNGS

__all__ = ["LoadShedController", "CircuitBreaker"]


class LoadShedController:
    """Map (in-flight depth, p95 latency) onto a ladder rung index.

    Parameters
    ----------
    depths:
        Ascending in-flight thresholds; depth >= ``depths[i]`` selects
        rung ``i + 1``.  At most 3 entries (the ladder has 4 rungs).
    slo_p95_s:
        Optional latency SLO; while the window p95 exceeds it, one extra
        rung is shed (on top of the depth rung).
    window:
        Number of recent request latencies the p95 estimate sees.
    """

    def __init__(self, depths=(6, 10, 14), *, slo_p95_s=None, window: int = 64) -> None:
        depths = tuple(int(d) for d in depths)
        if list(depths) != sorted(depths) or any(d < 1 for d in depths):
            raise ValueError(f"depths must be ascending and positive, got {depths}")
        if len(depths) >= len(LADDER_RUNGS):
            raise ValueError(
                f"at most {len(LADDER_RUNGS) - 1} depth thresholds, got {len(depths)}"
            )
        self.depths = depths
        self.slo_p95_s = slo_p95_s
        self._latencies: deque = deque(maxlen=int(window))
        self._lock = threading.Lock()
        self._shed = METRICS.counter(
            "serve.shed_degraded", "requests served below the full ladder rung"
        )
        self._rung_gauge = METRICS.gauge(
            "serve.rung", "ladder rung the last admitted request was planned at"
        )

    def observe(self, latency_s: float) -> None:
        """Record one completed request's latency."""
        with self._lock:
            self._latencies.append(float(latency_s))

    def p95(self) -> float | None:
        """Window p95 latency (``None`` until anything completed)."""
        with self._lock:
            if not self._latencies:
                return None
            ordered = sorted(self._latencies)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    def rung_for(self, depth: int) -> int:
        """The ladder rung index to plan at for the given in-flight depth."""
        rung = 0
        for threshold in self.depths:
            if depth >= threshold:
                rung += 1
        if self.slo_p95_s is not None:
            p95 = self.p95()
            if p95 is not None and p95 > self.slo_p95_s:
                rung += 1
        rung = min(rung, len(LADDER_RUNGS) - 1)
        self._rung_gauge.set(rung)
        if rung > 0:
            self._shed.inc()
        return rung


class CircuitBreaker:
    """Closed / open / half-open breaker around backend compilation.

    * **closed** — compiles are attempted; ``threshold`` *consecutive*
      failures trip the breaker.
    * **open** — compiles are skipped (sessions build on numpy) until
      ``reset_s`` elapses.
    * **half-open** — one trial compile is allowed; success closes the
      breaker, failure re-opens it for another ``reset_s``.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self, *, threshold: int = 3, reset_s: float = 30.0, clock=time.monotonic
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if reset_s < 0:
            raise ValueError(f"reset_s must be >= 0, got {reset_s}")
        self.threshold = int(threshold)
        self.reset_s = float(reset_s)
        self._clock = clock
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._trial_in_flight = False
        self._lock = threading.Lock()
        self._trips = METRICS.counter(
            "serve.breaker_trip", "compile circuit-breaker open transitions"
        )
        self._short_circuits = METRICS.counter(
            "serve.breaker_short_circuit",
            "sessions built on numpy because the compile breaker was open",
        )

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a backend compile may be attempted right now.

        In the open state this counts a short-circuit; in half-open it
        admits exactly one concurrent trial.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.reset_s:
                    self._state = self.HALF_OPEN
                    self._trial_in_flight = False
                else:
                    self._short_circuits.inc()
                    return False
            # half-open: one trial at a time.
            if self._trial_in_flight:
                self._short_circuits.inc()
                return False
            self._trial_in_flight = True
            return True

    def record_success(self) -> None:
        """A compile succeeded: reset failures and close the breaker."""
        with self._lock:
            self._failures = 0
            self._state = self.CLOSED
            self._trial_in_flight = False

    def record_failure(self) -> None:
        """A compile failed; trips the breaker at the threshold."""
        tripped = False
        with self._lock:
            self._failures += 1
            self._trial_in_flight = False
            if self._state == self.HALF_OPEN or self._failures >= self.threshold:
                if self._state != self.OPEN:
                    tripped = True
                self._state = self.OPEN
                self._opened_at = self._clock()
        if tripped:
            self._trips.inc()

    @property
    def state(self) -> str:
        """Current breaker state (``closed`` / ``open`` / ``half-open``)."""
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        """Health-endpoint view of the breaker."""
        with self._lock:
            out = {"state": self._state, "consecutive_failures": self._failures}
            if self._state == self.OPEN:
                out["open_for_s"] = round(self._clock() - self._opened_at, 3)
                out["reset_s"] = self.reset_s
            return out
