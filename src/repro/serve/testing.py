"""Test harness: run a :class:`~repro.serve.SpmmServer` on a thread.

The test suite has no async test runner, so the server's event loop
lives on a daemon thread and tests talk to it over real sockets with the
blocking :class:`~repro.serve.ServeClient` — which also means every test
exercises the genuine wire path, not an in-process shortcut.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading

from repro.errors import ReproError
from repro.serve.config import ServeConfig
from repro.serve.server import SpmmServer

__all__ = ["ServerThread"]


class ServerThread:
    """Own a server + event loop on a background thread.

    Usage::

        with ServerThread(ServeConfig(port=0)) as srv:
            with ServeClient(srv.address) as client:
                ...

    ``port=0`` is recommended: the OS-assigned port is read back after
    startup, so parallel test processes never collide.
    """

    def __init__(self, config: ServeConfig | None = None, *, clock=None) -> None:
        self.config = config or ServeConfig(port=0)
        self._clock = clock
        self.server: SpmmServer | None = None
        self._loop = None
        self._ready = threading.Event()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-test", daemon=True
        )

    # ------------------------------------------------------------------
    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        kwargs = {} if self._clock is None else {"clock": self._clock}
        self.server = SpmmServer(self.config, **kwargs)
        try:
            await self.server.start()
        except Exception as exc:  # surfaced to start() on the test thread
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self.server.wait_closed()

    def start(self, timeout: float = 10.0) -> "ServerThread":
        """Start the background loop and block until the server is listening."""
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ReproError("server thread did not become ready in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    @property
    def address(self):
        """Client-ready address (resolves ``port=0`` to the bound port)."""
        if self.config.unix_path is not None:
            return self.config.unix_path
        return (self.config.host, self.server.port)

    def stop(self, timeout: float = 10.0) -> None:
        """Drain and shut the server down, then join the thread."""
        if self.server is not None and self._loop is not None and self._thread.is_alive():
            try:
                fut = asyncio.run_coroutine_threadsafe(
                    self.server.shutdown(), self._loop
                )
                fut.result(timeout)
            except (
                asyncio.CancelledError,
                concurrent.futures.CancelledError,
                TimeoutError,
                RuntimeError,
            ):
                pass  # loop already closing; the join below settles it
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
