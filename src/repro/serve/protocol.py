"""The newline-delimited-JSON wire protocol of ``repro serve``.

One JSON object per line in each direction, UTF-8, ``\\n``-terminated.
Requests carry an ``op`` plus op-specific fields; every response echoes
the request ``id`` (when given) and carries a ``status`` from the table
below.  The protocol is dependency-free and language-neutral: any client
that can open a socket and print JSON can talk to the server.

Request ops
-----------
``ping``
    Liveness probe; responds ``{"status": "ok", "pong": true}``.
``upload``
    Register a sparse matrix (COO triples) and get its content
    fingerprint back for later fingerprint-only ``spmm`` requests.
``spmm``
    Multiply: either ``fingerprint`` (a previously uploaded matrix) or an
    inline ``matrix``, plus the dense operand ``x`` (``n_cols x K``
    nested lists), optional ``deadline_s`` and ``tenant``.
``delta``
    Stream a :class:`~repro.streaming.DeltaBatch` into a previously
    uploaded matrix: the registry entry is replaced by the mutated
    matrix (responding with its new fingerprint) and warm sessions
    pinned to the old fingerprint are invalidated, so no later request
    can multiply through pre-delta values.
``health``
    Readiness report: pool occupancy, quota state, breaker state, drain
    flag.
``metrics``
    A :meth:`repro.observability.MetricsRegistry.snapshot` of the server
    process.
``drain``
    Stop admitting work, wait for in-flight requests, shut down.

Response statuses
-----------------
=====================  ====================================================
``ok``                 result computed (``result`` holds the dense output)
``rejected_overload``  admission bound hit; retry against a less loaded
                       server (explicit rejection, never silent queueing)
``rejected_quota``     the tenant's token bucket is empty
``deadline_exceeded``  the request deadline expired before a result was
                       complete (partial work was cancelled)
``not_found``          unknown fingerprint (upload the matrix first)
``draining``           server is shutting down; no new work admitted
``error``              malformed request or internal failure (``error``
                       holds the message)
=====================  ====================================================

Fingerprints are *content* digests — shape, pattern **and values** — so a
fingerprint names exactly one multiply operator (unlike the plan store's
pattern fingerprint, which deliberately ignores values because reordering
decisions do).
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import FormatError, ShapeError, ValidationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.util.hashing import digest_arrays, stable_digest
from repro.util.validation import check_dense

__all__ = [
    "PROTOCOL_VERSION",
    "STATUS_OK",
    "STATUS_REJECTED_OVERLOAD",
    "STATUS_REJECTED_QUOTA",
    "STATUS_DEADLINE_EXCEEDED",
    "STATUS_NOT_FOUND",
    "STATUS_DRAINING",
    "STATUS_ERROR",
    "REQUEST_OPS",
    "encode_message",
    "decode_message",
    "matrix_to_wire",
    "matrix_from_wire",
    "dense_from_wire",
    "delta_to_wire",
    "delta_from_wire",
    "matrix_fingerprint",
]

#: Wire-protocol version, echoed by ``ping``/``health`` so clients can
#: detect incompatible servers instead of mis-parsing them.
PROTOCOL_VERSION = 1

STATUS_OK = "ok"
STATUS_REJECTED_OVERLOAD = "rejected_overload"
STATUS_REJECTED_QUOTA = "rejected_quota"
STATUS_DEADLINE_EXCEEDED = "deadline_exceeded"
STATUS_NOT_FOUND = "not_found"
STATUS_DRAINING = "draining"
STATUS_ERROR = "error"

#: Ops a server accepts (anything else gets an ``error`` response).
REQUEST_OPS = ("ping", "upload", "spmm", "delta", "health", "metrics", "drain")


def encode_message(obj: dict) -> bytes:
    """Serialise one protocol message as a compact JSON line."""
    return (json.dumps(obj, separators=(",", ":"), sort_keys=True) + "\n").encode(
        "utf-8"
    )


def decode_message(line: bytes | str) -> dict:
    """Parse one protocol line into a dict.

    Raises :class:`repro.errors.FormatError` on anything that is not a
    single JSON object — the server maps that to an ``error`` response
    rather than dropping the connection.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FormatError(f"protocol line is not valid UTF-8: {exc}") from exc
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise FormatError(f"protocol line is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FormatError(
            f"protocol message must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ----------------------------------------------------------------------
# Matrix / operand wire formats
# ----------------------------------------------------------------------

def matrix_to_wire(csr: CSRMatrix) -> dict:
    """Encode a CSR matrix as the COO-triple upload payload."""
    coo = csr.to_coo()
    rows, cols, values = coo.rows, coo.cols, coo.values
    return {
        "shape": [int(csr.n_rows), int(csr.n_cols)],
        "rows": [int(r) for r in rows],
        "cols": [int(c) for c in cols],
        "values": [float(v) for v in values],
    }


def matrix_from_wire(obj) -> CSRMatrix:
    """Decode an upload payload into a validated :class:`CSRMatrix`."""
    if not isinstance(obj, dict):
        raise FormatError(
            f"matrix payload must be an object, got {type(obj).__name__}"
        )
    missing = [k for k in ("shape", "rows", "cols", "values") if k not in obj]
    if missing:
        raise FormatError(f"matrix payload missing field(s): {', '.join(missing)}")
    shape = obj["shape"]
    if (
        not isinstance(shape, (list, tuple))
        or len(shape) != 2
        or not all(isinstance(s, int) and s >= 0 for s in shape)
    ):
        raise FormatError(f"matrix shape must be two non-negative ints, got {shape}")
    try:
        rows = np.asarray(obj["rows"], dtype=np.int64)
        cols = np.asarray(obj["cols"], dtype=np.int64)
        values = np.asarray(obj["values"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise FormatError(f"matrix triples are not numeric arrays: {exc}") from exc
    if not (rows.shape == cols.shape == values.shape) or rows.ndim != 1:
        raise FormatError(
            "matrix rows/cols/values must be 1-D and equally long, got "
            f"{rows.shape}/{cols.shape}/{values.shape}"
        )
    # COOMatrix.from_arrays validates the index ranges.
    return COOMatrix.from_arrays(tuple(shape), rows, cols, values).to_csr()


def dense_from_wire(obj, *, rows: int) -> np.ndarray:
    """Decode the dense operand ``x`` (``rows x K`` nested lists)."""
    try:
        x = np.asarray(obj, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise FormatError(f"dense operand is not a numeric matrix: {exc}") from exc
    if x.ndim != 2:
        raise ShapeError(f"dense operand must be 2-D, got shape {x.shape}")
    return check_dense("x", x, rows=rows)


def delta_to_wire(delta) -> dict:
    """Encode a :class:`~repro.streaming.DeltaBatch` as a ``delta`` payload."""
    return {
        "rows": [int(r) for r in delta.rows],
        "cols": [int(c) for c in delta.cols],
        "values": [float(v) for v in delta.values],
        "new_rows": int(delta.new_rows),
        "mode": delta.mode,
        "timestamp": float(delta.timestamp),
    }


def delta_from_wire(obj):
    """Decode a ``delta`` payload into a validated ``DeltaBatch``."""
    from repro.streaming import DeltaBatch

    if not isinstance(obj, dict):
        raise FormatError(
            f"delta payload must be an object, got {type(obj).__name__}"
        )
    missing = [k for k in ("rows", "cols", "values") if k not in obj]
    if missing:
        raise FormatError(f"delta payload missing field(s): {', '.join(missing)}")
    try:
        rows = np.asarray(obj["rows"], dtype=np.int64)
        cols = np.asarray(obj["cols"], dtype=np.int64)
        values = np.asarray(obj["values"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise FormatError(f"delta triples are not numeric arrays: {exc}") from exc
    new_rows = obj.get("new_rows", 0)
    mode = obj.get("mode", "add")
    if not isinstance(new_rows, int) or new_rows < 0:
        raise FormatError(f"delta new_rows must be a non-negative int, got {new_rows!r}")
    try:
        # DeltaBatch validates shapes, dtypes and the mode/new_rows combination.
        return DeltaBatch(
            rows=rows,
            cols=cols,
            values=values,
            new_rows=new_rows,
            mode=mode,
            timestamp=float(obj.get("timestamp", 0.0)),
        )
    except (TypeError, ValueError, ValidationError) as exc:
        raise FormatError(f"invalid delta payload: {exc}") from exc


def matrix_fingerprint(csr: CSRMatrix) -> str:
    """Content fingerprint of a matrix: shape, pattern **and values**.

    Two matrices with equal fingerprints produce bitwise-equal SpMM
    results, so the fingerprint is a safe name for a warm session.  The
    value bytes enter as little-endian float64, making the digest
    reproducible across machines.
    """
    values = np.ascontiguousarray(csr.values, dtype=np.float64)
    return stable_digest(
        int(csr.n_rows).to_bytes(8, "little"),
        int(csr.n_cols).to_bytes(8, "little"),
        digest_arrays(csr.rowptr, csr.colidx).encode("ascii"),
        values.astype("<f8", copy=False).tobytes(),
    )
