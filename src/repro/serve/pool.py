"""Sharded, bounded pool of warm :class:`~repro.kernels.KernelSession`.

The serving economics of the paper live here: a plan build costs orders
of magnitude more than a multiply, so the server keeps sessions (pinned
plan + compiled artifact + scratch) warm across requests, keyed by the
matrix fingerprint *and* the degradation-ladder rung the plan was built
at (a shed request must never be served a weaker plan later without its
provenance saying so, nor a degraded session outlive the pressure that
created it under a full-rung key).

Robustness properties:

* **bounded** — at most ``capacity`` sessions across ``shards`` shards;
  inserting past the bound evicts least-recently-used entries;
* **in-flight pinning** — an entry serving a request carries a non-zero
  refcount and is never evicted, however stale; the pool may
  transiently exceed its bound rather than yank a session mid-multiply;
* **instrumented** — ``serve.pool_hit`` / ``serve.pool_miss`` /
  ``serve.pool_evict`` counters plus ``serve.pool_size`` /
  ``serve.pool_pinned`` gauges feed the health endpoint;
* **chaos-covered** — eviction crosses the ``serve.pool_evict`` fault
  site; an injected eviction fault is absorbed (counted as
  ``serve.pool_evict_fault``), never propagated into a request.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from repro.errors import ReproError
from repro.observability.metrics import METRICS
from repro.resilience.faults import fault_point

__all__ = ["PooledSession", "SessionPool"]


class PooledSession:
    """One warm pool entry: a session plus its serving metadata."""

    __slots__ = ("key", "session", "rung", "provenance", "backend", "degraded", "refs")

    def __init__(self, key, session, *, rung, provenance, backend, degraded):
        self.key = key
        self.session = session
        self.rung = rung
        self.provenance = tuple(provenance)
        self.backend = backend
        self.degraded = bool(degraded)
        self.refs = 0  # guarded by the owning shard's lock


class _Shard:
    __slots__ = ("entries", "lock")

    def __init__(self):
        self.entries: OrderedDict = OrderedDict()
        self.lock = threading.Lock()


class SessionPool:
    """LRU session cache with in-flight pinning (see module docstring).

    The pool is written to from executor threads and read by the event
    loop's health endpoint, so every shard carries its own lock; the
    shard index is derived from the key digest, keeping unrelated
    fingerprints contention-free.
    """

    def __init__(self, capacity: int = 8, shards: int = 4) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.capacity = int(capacity)
        self._shards = [_Shard() for _ in range(int(shards))]
        # Per-shard bound; ceil so shards * bound >= capacity.
        self._shard_capacity = -(-self.capacity // len(self._shards))
        self._hits = METRICS.counter(
            "serve.pool_hit", "warm-session pool hits"
        )
        self._misses = METRICS.counter(
            "serve.pool_miss", "warm-session pool misses"
        )
        self._evicts = METRICS.counter(
            "serve.pool_evict", "warm sessions evicted (LRU, unpinned only)"
        )
        self._evict_faults = METRICS.counter(
            "serve.pool_evict_fault", "absorbed faults during session eviction"
        )
        self._size = METRICS.gauge("serve.pool_size", "warm sessions resident")
        self._pinned = METRICS.gauge(
            "serve.pool_pinned", "warm sessions currently serving requests"
        )

    def _shard_for(self, key: str) -> _Shard:
        # BLAKE2b, not hash(): shard placement (and therefore eviction
        # order and fault-site arrival order under chaos) must not vary
        # with PYTHONHASHSEED.
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=4).digest()
        return self._shards[int.from_bytes(digest, "little") % len(self._shards)]

    # ------------------------------------------------------------------
    def pin(self, key: str) -> PooledSession | None:
        """Look up and pin a warm entry (``None`` on miss).

        A pinned entry cannot be evicted until :meth:`unpin` releases it;
        callers pair the two in try/finally around the multiply.
        """
        shard = self._shard_for(key)
        with shard.lock:
            entry = shard.entries.get(key)
            if entry is None:
                self._misses.inc()
                return None
            shard.entries.move_to_end(key)
            entry.refs += 1
        self._hits.inc()
        self._pinned.add(1)
        return entry

    def unpin(self, entry: PooledSession) -> None:
        """Release one pin taken by :meth:`pin` or :meth:`put`."""
        shard = self._shard_for(entry.key)
        with shard.lock:
            if entry.refs < 1:
                raise AssertionError(f"unpin without pin on {entry.key!r}")
            entry.refs -= 1
        self._pinned.add(-1)

    def put(self, key: str, session, *, rung, provenance, backend, degraded) -> PooledSession:
        """Insert a freshly built session, returned already pinned.

        When two builders race on the same key the first insert wins and
        the loser's session is discarded (the returned entry is always
        the resident one).  Inserting past the shard bound evicts LRU
        entries with zero refs; pinned entries survive, so the pool can
        transiently overflow under pressure rather than break an
        in-flight multiply.
        """
        made = PooledSession(
            key, session, rung=rung, provenance=provenance,
            backend=backend, degraded=degraded,
        )
        shard = self._shard_for(key)
        evicted = []
        with shard.lock:
            resident = shard.entries.get(key)
            if resident is not None:
                shard.entries.move_to_end(key)
                resident.refs += 1
                entry = resident
            else:
                made.refs = 1
                shard.entries[key] = made
                entry = made
                # LRU scan from the cold end; skip pinned entries.
                while len(shard.entries) > self._shard_capacity:
                    victim_key = next(
                        (k for k, e in shard.entries.items() if e.refs == 0),
                        None,
                    )
                    if victim_key is None:
                        break  # everything pinned: transient overflow
                    evicted.append(shard.entries.pop(victim_key))
        for victim in evicted:
            self._evict(victim)
        self._pinned.add(1)
        self._size.set(len(self))
        return entry

    def _evict(self, victim: PooledSession) -> None:
        """Drop one evicted session; an injected fault here is absorbed."""
        self._evicts.inc()
        try:
            fault_point("serve.pool_evict")
            victim.session.close()
        except ReproError:
            # Eviction is best-effort cleanup: the entry is already out
            # of the table, a failure must never surface into a request.
            self._evict_faults.inc()

    def invalidate_prefix(self, fingerprint: str) -> int:
        """Drop every warm entry for ``fingerprint`` (any rung).

        The streaming path: a ``delta`` request replaces a registered
        matrix, so sessions pinned to its old fingerprint must never
        serve another multiply.  Entries are removed from the table
        immediately; unpinned ones are closed through the normal evict
        path, in-flight ones finish their current multiply on the
        detached object and are garbage-collected on unpin.  Returns the
        number of entries invalidated.
        """
        prefix = f"{fingerprint}:"
        dropped = []
        for shard in self._shards:
            with shard.lock:
                doomed = [k for k in shard.entries if k.startswith(prefix)]
                for k in doomed:
                    dropped.append(shard.entries.pop(k))
        for entry in dropped:
            if entry.refs == 0:
                self._evict(entry)
        if dropped:
            METRICS.counter(
                "serve.pool_invalidate",
                "warm sessions invalidated by streaming deltas",
            ).inc(len(dropped))
        self._size.set(len(self))
        return len(dropped)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard.entries) for shard in self._shards)

    def occupancy(self) -> dict:
        """Health-endpoint snapshot: per-shard entries and pin counts."""
        shards = []
        for shard in self._shards:
            with shard.lock:
                shards.append(
                    {
                        "entries": len(shard.entries),
                        "pinned": sum(1 for e in shard.entries.values() if e.refs),
                        "keys": [
                            {"key": k, "rung": e.rung, "refs": e.refs,
                             "backend": e.backend}
                            for k, e in shard.entries.items()
                        ],
                    }
                )
        return {
            "capacity": self.capacity,
            "entries": sum(s["entries"] for s in shards),
            "pinned": sum(s["pinned"] for s in shards),
            "shards": shards,
        }

    def clear(self) -> None:
        """Evict every unpinned entry (tests and drain shutdown)."""
        for shard in self._shards:
            evicted = []
            with shard.lock:
                for key in [k for k, e in shard.entries.items() if e.refs == 0]:
                    evicted.append(shard.entries.pop(key))
            for victim in evicted:
                self._evict(victim)
        self._size.set(len(self))
