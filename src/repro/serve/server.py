"""The asyncio SpMM server behind ``repro serve``.

One event loop owns the sockets and all bookkeeping; kernels and plan
builds run on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
so the loop never blocks on numpy (rule RD108 enforces this shape).  A
request travels::

    accept -> decode -> admission -> matrix resolve -> deadline
           -> shed rung -> coalesce -> [executor] pin-or-build
           -> K-chunked multiply -> slice -> respond

Every failure mode has an explicit, typed outcome (see
:mod:`repro.serve.protocol`); the chaos suite asserts the server never
crashes and never returns a wrong answer under injected faults at the
accept, eviction, IO, clustering, workspace, kernel and compile sites.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import replace

import numpy as np

from repro.errors import FormatError, ReproError, ShapeError, TimeoutExceeded
from repro.observability.metrics import METRICS
from repro.reorder import build_plan
from repro.resilience import Deadline, ResiliencePolicy
from repro.resilience.faults import fault_point
from repro.resilience.policy import LADDER_RUNGS, ladder_rungs
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import Coalescer
from repro.serve.config import ServeConfig
from repro.serve.pool import SessionPool
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    REQUEST_OPS,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_NOT_FOUND,
    STATUS_OK,
    decode_message,
    delta_from_wire,
    dense_from_wire,
    encode_message,
    matrix_fingerprint,
    matrix_from_wire,
)
from repro.serve.shedding import CircuitBreaker, LoadShedController

__all__ = ["SpmmServer", "run_server"]


class _Member:
    """One request riding a coalesced batch."""

    __slots__ = ("x", "deadline")

    def __init__(self, x, deadline):
        self.x = x
        self.deadline = deadline


class SpmmServer:
    """The long-running SpMM service (see module docstring).

    Parameters
    ----------
    config:
        A :class:`~repro.serve.ServeConfig` (defaults apply when omitted).
    clock:
        Injectable monotonic clock shared by deadlines, quotas and the
        breaker, so every time-dependent behaviour is testable.
    """

    def __init__(self, config: ServeConfig | None = None, *, clock=time.monotonic):
        self.config = config or ServeConfig()
        self._clock = clock
        cfg = self.config
        self.pool = SessionPool(cfg.pool_sessions, cfg.pool_shards)
        self.admission = AdmissionController(
            max_inflight=cfg.max_inflight,
            quota_rate=cfg.quota_rate,
            quota_burst=cfg.quota_burst,
            tenant_quotas=cfg.tenant_quotas,
            clock=clock,
        )
        self.shedder = LoadShedController(
            cfg.shed_depths, slo_p95_s=cfg.slo_p95_s, window=cfg.latency_window
        )
        self.breaker = CircuitBreaker(
            threshold=cfg.breaker_threshold, reset_s=cfg.breaker_reset_s, clock=clock
        )
        self.coalescer = Coalescer()
        self._plan_cache = None
        if cfg.plan_cache_dir is not None:
            from repro.planstore import PlanStore

            self._plan_cache = PlanStore(cache_dir=cfg.plan_cache_dir)
        self._matrices: OrderedDict = OrderedDict()  # fingerprint -> CSRMatrix
        self._matrices_lock = threading.Lock()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=cfg.workers, thread_name_prefix="repro-serve"
        )
        self._loop = None
        self._server = None
        self._port = None
        self._conns: set = set()
        self._draining = False
        self._shutdown_task = None
        self._closed = None  # asyncio.Event, created in start()
        self._requests = METRICS.counter("serve.requests", "protocol requests handled")
        self._errors = METRICS.counter("serve.errors", "requests answered with error")
        self._accept_faults = METRICS.counter(
            "serve.accept_fault", "connections dropped by an injected accept fault"
        )
        self._matrix_evicts = METRICS.counter(
            "serve.matrix_evict", "uploaded matrices evicted from the registry"
        )
        self._deltas = METRICS.counter(
            "serve.deltas", "streaming delta requests applied"
        )
        self._latency = METRICS.histogram(
            "serve.latency_s", "admitted spmm latency in seconds"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listen socket and begin accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._closed = asyncio.Event()
        addr = self.config.address()
        if isinstance(addr, str):
            self._server = await asyncio.start_unix_server(
                self._on_conn, path=addr, limit=self.config.max_line_bytes
            )
        else:
            host, port = addr
            self._server = await asyncio.start_server(
                self._on_conn, host, port, limit=self.config.max_line_bytes
            )
            # Cache now: the sockets list empties once the listener closes,
            # but clients still need the address to observe the drain.
            self._port = self._server.sockets[0].getsockname()[1]
        # SIGTERM -> graceful drain.  Unavailable off the main thread and
        # on non-UNIX loops; the drain op covers those cases.
        with contextlib.suppress(
            NotImplementedError, RuntimeError, ValueError, OSError
        ):
            self._loop.add_signal_handler(signal.SIGTERM, self._begin_shutdown)

    @property
    def port(self) -> int | None:
        """The bound TCP port (meaningful with ``port=0``)."""
        return self._port

    def _begin_shutdown(self) -> None:
        if self._shutdown_task is None:
            self._shutdown_task = self._loop.create_task(self.shutdown())

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop admitting work, optionally drain in-flight, close down."""
        if self._draining and self._closed.is_set():
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            give_up = self._clock() + self.config.drain_timeout_s
            while self.admission.in_flight > 0 and self._clock() < give_up:
                await asyncio.sleep(0.005)
        for writer in list(self._conns):
            writer.close()
        self._executor.shutdown(wait=True)
        self.pool.clear()
        if self.config.unix_path is not None:
            import os

            with contextlib.suppress(OSError):
                os.unlink(self.config.unix_path)
        self._closed.set()

    async def wait_closed(self) -> None:
        """Block until :meth:`shutdown` (drain op / SIGTERM) completes."""
        await self._closed.wait()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_conn(self, reader, writer) -> None:
        try:
            fault_point("serve.accept")
        except ReproError:
            # Chaos site: an accept fault drops the connection cleanly —
            # the client sees EOF and may retry; nothing leaks.
            self._accept_faults.inc()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            return
        self._conns.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line longer than the protocol bound.
                    await self._send(
                        writer,
                        {
                            "status": STATUS_ERROR,
                            "error": "protocol line exceeds max_line_bytes",
                        },
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_line(line)
                await self._send(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            self._conns.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _send(self, writer, response: dict) -> None:
        writer.write(encode_message(response))
        with contextlib.suppress(ConnectionError):
            await writer.drain()

    async def _handle_line(self, line: bytes) -> dict:
        self._requests.inc()
        try:
            msg = decode_message(line)
        except FormatError as exc:
            self._errors.inc()
            return {"status": STATUS_ERROR, "error": str(exc)}
        rid = msg.get("id")
        try:
            response = await self._dispatch(msg)
        except (ReproError, ShapeError) as exc:
            self._errors.inc()
            response = {
                "status": STATUS_ERROR,
                "error": f"{type(exc).__name__}: {exc}",
            }
        except Exception as exc:
            # The connection loop must survive anything a request does.
            self._errors.inc()
            response = {
                "status": STATUS_ERROR,
                "error": f"internal {type(exc).__name__}: {exc}",
            }
        if rid is not None:
            response.setdefault("id", rid)
        return response

    async def _dispatch(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "ping":
            return {"status": STATUS_OK, "pong": True, "version": PROTOCOL_VERSION}
        if op == "upload":
            return await self._op_upload(msg)
        if op == "spmm":
            return await self._op_spmm(msg)
        if op == "delta":
            return await self._op_delta(msg)
        if op == "health":
            return self._op_health()
        if op == "metrics":
            return {"status": STATUS_OK, "metrics": METRICS.snapshot()}
        if op == "drain":
            self._begin_shutdown()
            return {"status": STATUS_OK, "draining": True}
        return {
            "status": STATUS_ERROR,
            "error": f"unknown op {op!r}; expected one of {', '.join(REQUEST_OPS)}",
        }

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def _register_matrix(self, fingerprint: str, csr) -> None:
        with self._matrices_lock:
            self._matrices[fingerprint] = csr
            self._matrices.move_to_end(fingerprint)
            while len(self._matrices) > self.config.max_matrices:
                self._matrices.popitem(last=False)
                self._matrix_evicts.inc()

    def _lookup_matrix(self, fingerprint: str):
        with self._matrices_lock:
            csr = self._matrices.get(fingerprint)
            if csr is not None:
                self._matrices.move_to_end(fingerprint)
            return csr

    async def _op_upload(self, msg: dict) -> dict:
        if self._draining:
            return {"status": STATUS_DRAINING}
        if "matrix" not in msg:
            return {"status": STATUS_ERROR, "error": "upload needs a matrix field"}
        csr = await self._loop.run_in_executor(
            self._executor, matrix_from_wire, msg["matrix"]
        )
        fingerprint = matrix_fingerprint(csr)
        self._register_matrix(fingerprint, csr)
        return {
            "status": STATUS_OK,
            "fingerprint": fingerprint,
            "shape": [csr.n_rows, csr.n_cols],
            "nnz": int(csr.nnz),
        }

    async def _op_delta(self, msg: dict) -> dict:
        """Stream a delta into a registered matrix (see the protocol docs).

        The mutated matrix replaces the old registry entry under its new
        content fingerprint, and every warm session pinned to the old
        fingerprint is invalidated — a later ``spmm`` against the new
        fingerprint rebuilds warm (the plan store still holds the
        pattern-keyed decisions when the delta was value-only).
        """
        if self._draining:
            return {"status": STATUS_DRAINING}
        fingerprint = msg.get("fingerprint")
        if fingerprint is None or "delta" not in msg:
            return {
                "status": STATUS_ERROR,
                "error": "delta needs a fingerprint and a delta payload",
            }
        csr = self._lookup_matrix(fingerprint)
        if csr is None:
            return {
                "status": STATUS_NOT_FOUND,
                "error": f"no matrix with fingerprint {fingerprint!r}; "
                "upload it first",
            }
        delta = delta_from_wire(msg["delta"])

        def mutate():
            fault_point("streaming.update")
            return delta.apply_to(csr)

        csr_new = await self._loop.run_in_executor(self._executor, mutate)
        new_fingerprint = matrix_fingerprint(csr_new)
        with self._matrices_lock:
            self._matrices.pop(fingerprint, None)
        self._register_matrix(new_fingerprint, csr_new)
        invalidated = self.pool.invalidate_prefix(fingerprint)
        self._deltas.inc()
        return {
            "status": STATUS_OK,
            "fingerprint": new_fingerprint,
            "previous_fingerprint": fingerprint,
            "shape": [csr_new.n_rows, csr_new.n_cols],
            "nnz": int(csr_new.nnz),
            "sessions_invalidated": invalidated,
        }

    def _op_health(self) -> dict:
        return {
            "status": STATUS_OK,
            "version": PROTOCOL_VERSION,
            "ready": self._server is not None and not self._draining,
            "draining": self._draining,
            "pool": self.pool.occupancy(),
            "admission": self.admission.snapshot(),
            "breaker": self.breaker.snapshot(),
            "shed": {"p95_s": self.shedder.p95()},
            "matrices": len(self._matrices),
        }

    async def _op_spmm(self, msg: dict) -> dict:
        if self._draining:
            return {"status": STATUS_DRAINING}
        tenant = str(msg.get("tenant", "default"))
        rejection = self.admission.admit(tenant)
        if rejection is not None:
            return {"status": rejection}
        t0 = self._clock()
        try:
            return await self._admitted_spmm(msg)
        finally:
            self.admission.release()
            self.shedder.observe(self._clock() - t0)
            self._latency.observe(self._clock() - t0)

    async def _admitted_spmm(self, msg: dict) -> dict:
        # Resolve the operator matrix.
        fingerprint = msg.get("fingerprint")
        if fingerprint is not None:
            csr = self._lookup_matrix(fingerprint)
            if csr is None:
                return {
                    "status": STATUS_NOT_FOUND,
                    "error": f"no matrix with fingerprint {fingerprint!r}; "
                    "upload it first",
                }
        elif "matrix" in msg:
            csr = await self._loop.run_in_executor(
                self._executor, matrix_from_wire, msg["matrix"]
            )
            fingerprint = matrix_fingerprint(csr)
            self._register_matrix(fingerprint, csr)
        else:
            return {
                "status": STATUS_ERROR,
                "error": "spmm needs a fingerprint or an inline matrix",
            }
        if "x" not in msg:
            return {"status": STATUS_ERROR, "error": "spmm needs a dense operand x"}
        x = await self._loop.run_in_executor(
            self._executor, lambda: dense_from_wire(msg["x"], rows=csr.n_cols)
        )

        # Deadline: per-request budget on the server's clock.
        deadline_s = msg.get("deadline_s", self.config.default_deadline_s)
        deadline = None
        if deadline_s is not None:
            if not isinstance(deadline_s, (int, float)) or deadline_s <= 0:
                return {
                    "status": STATUS_ERROR,
                    "error": f"deadline_s must be a positive number, got {deadline_s!r}",
                }
            deadline = Deadline.after(float(deadline_s), clock=self._clock)

        # Shed rung for *this* request, decided at admission depth.
        rung_idx = self.shedder.rung_for(self.admission.in_flight)
        rung_label, rung_config = self._rung(rung_idx)
        key = f"{fingerprint}:{rung_label}"

        member = _Member(x, deadline)

        async def execute(batch_key, members):
            return await self._loop.run_in_executor(
                self._executor,
                self._run_batch,
                batch_key,
                csr,
                rung_label,
                rung_config,
                members,
            )

        result = await self.coalescer.submit(key, member, execute)
        return result

    def _rung(self, rung_idx: int):
        """The ``(label, config)`` the shed controller selected.

        ``ladder_rungs`` drops rungs that cannot differ from an earlier
        one, so the index maps through labels with a floor fallback.
        """
        rungs = ladder_rungs(self.config.reorder_config())
        wanted = LADDER_RUNGS[min(rung_idx, len(LADDER_RUNGS) - 1)]
        for label, rung_config in rungs:
            if label == wanted:
                return label, rung_config
        return rungs[-1]

    # ------------------------------------------------------------------
    # Executor-side work (sync; never runs on the event loop)
    # ------------------------------------------------------------------
    def _run_batch(self, key, csr, rung_label, rung_config, members) -> list:
        entry = self.pool.pin(key)
        if entry is None:
            entry = self._build_entry(key, csr, rung_config, members)
        try:
            return self._multiply_members(entry, csr.n_rows, rung_label, members)
        finally:
            self.pool.unpin(entry)

    def _build_entry(self, key, csr, rung_config, members):
        """Build a plan + session for ``key`` and insert it (pinned)."""
        requested = self.config.backend
        compiling = requested != "numpy" and self.breaker.allow()
        build_backend = requested if compiling else "numpy"
        # Build budget: the most patient member bounds the build, so a
        # batch never builds longer than anyone could still use.
        budgets = [m.deadline.remaining() for m in members if m.deadline is not None]
        budget = None
        if len(budgets) == len(members) and budgets:
            budget = max(0.0, max(budgets))
        policy = ResiliencePolicy(deadline_s=budget, ladder=True)
        plan = build_plan(
            csr,
            replace(rung_config, backend=build_backend),
            cache=self._plan_cache,
            resilience=policy,
        )
        session = plan.session(chunk_k=self.config.chunk_k)
        if compiling:
            if session.backend == requested:
                self.breaker.record_success()
            else:
                self.breaker.record_failure()
        return self.pool.put(
            key,
            session,
            rung=key.rsplit(":", 1)[-1],
            provenance=plan.provenance,
            backend=session.backend,
            degraded=plan.degraded,
        )

    def _multiply_members(self, entry, n_rows, rung_label, members) -> list:
        """One K-chunked multiply over the concatenated batch operand.

        Output column ``j`` depends only on input column ``j`` with an
        accumulation order independent of neighbouring columns, so the
        concatenation + per-member slicing is bitwise-identical to
        serving each member alone (asserted by the chaos suite).  Member
        deadlines are polled at chunk boundaries; an expired member's
        remaining columns are cancelled, not computed.
        """
        widths = [m.x.shape[1] for m in members]
        ends = list(np.cumsum(widths))
        starts = [e - w for e, w in zip(ends, widths)]
        total_k = ends[-1] if ends else 0
        X = members[0].x if len(members) == 1 else np.hstack([m.x for m in members])
        out = np.empty((n_rows, total_k), dtype=np.float64)
        expired = [False] * len(members)
        chunk = self.config.chunk_k
        for col in range(0, total_k, chunk):
            stop = min(col + chunk, total_k)
            for i, member in enumerate(members):
                if (
                    not expired[i]
                    and member.deadline is not None
                    and ends[i] > col  # columns still outstanding
                    and member.deadline.expired()
                ):
                    expired[i] = True
            owners = [i for i in range(len(members)) if starts[i] < stop and ends[i] > col]
            if all(expired[i] for i in owners):
                continue  # partial-work cancellation: nobody wants these columns
            out[:, col:stop] = self._run_chunk(entry, X, col, stop)
        results = []
        for i, member in enumerate(members):
            if expired[i] or (member.deadline is not None and member.deadline.expired()):
                results.append(
                    {
                        "status": STATUS_DEADLINE_EXCEEDED,
                        "rung": entry.rung,
                        "error": "deadline expired before the result was complete",
                    }
                )
                continue
            results.append(
                {
                    "status": STATUS_OK,
                    "result": out[:, starts[i] : ends[i]].tolist(),
                    "rung": entry.rung,
                    "degraded": entry.degraded,
                    "provenance": list(entry.provenance),
                    "backend": entry.backend,
                    "coalesced": len(members) > 1,
                }
            )
        return results

    def _run_chunk(self, entry, X, col, stop) -> np.ndarray:
        # session.run returns a per-thread pinned buffer that the next
        # run overwrites; the caller copies it into the batch output.
        block = np.ascontiguousarray(X[:, col:stop])
        return entry.session.run(block)


async def _serve_forever(config: ServeConfig) -> None:
    server = SpmmServer(config)
    await server.start()
    await server.wait_closed()


def run_server(config: ServeConfig | None = None) -> None:
    """Run a server until a drain request or SIGTERM stops it."""
    asyncio.run(_serve_forever(config or ServeConfig()))
