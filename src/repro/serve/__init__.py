"""`repro serve` — a fault-tolerant multi-tenant SpMM service.

The paper's economic argument is that the cost of data transformation
(reordering + tiling) is amortised when the same sparse matrix is
multiplied many times — a *serving* workload.  This package turns the
library into that long-running service: clients submit
``(matrix fingerprint | matrix upload, dense batch, deadline, tenant)``
requests over a newline-delimited-JSON TCP/UNIX-socket protocol
(:mod:`repro.serve.protocol`) and get results computed on a sharded,
bounded pool of warm :class:`~repro.kernels.KernelSession`
(:mod:`repro.serve.pool`).

The robustness stack, rung by rung:

* **admission control + per-tenant token-bucket quotas**
  (:mod:`repro.serve.admission`) — overload produces explicit
  ``rejected_overload`` / ``rejected_quota`` responses instead of
  unbounded queueing;
* **deadline propagation** — the request deadline threads into the
  existing cooperative :class:`~repro.resilience.Deadline` through plan
  build and the K-chunked multiply, with partial-work cancellation at
  chunk boundaries;
* **graceful degradation under pressure**
  (:mod:`repro.serve.shedding`) — queue depth and p95 latency map onto
  the existing 4-rung degradation ladder, so a pressured server serves a
  degraded-but-provenance-tagged plan rather than timing out, and a
  **circuit breaker** around backend JIT compilation trips to the numpy
  backend on repeated compile faults;
* **request coalescing** (:mod:`repro.serve.coalesce`) — concurrent
  requests against the same fingerprint batch into one K-chunked
  multiply with per-request result slicing, bitwise-identical to serial
  execution;
* **health / readiness / drain** — ``health`` and ``metrics`` protocol
  ops backed by the process-global metrics registry, plus a SIGTERM
  graceful-drain path.

See ``docs/SERVING.md`` for the protocol spec and the tuning knobs, and
``tests/chaos/test_serve_load.py`` for the SLO-gated chaos load tests.
"""

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.client import ServeClient, parse_address
from repro.serve.coalesce import Coalescer
from repro.serve.config import ServeConfig
from repro.serve.pool import SessionPool
from repro.serve.protocol import (
    STATUS_DEADLINE_EXCEEDED,
    STATUS_DRAINING,
    STATUS_ERROR,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_REJECTED_OVERLOAD,
    STATUS_REJECTED_QUOTA,
    decode_message,
    dense_from_wire,
    encode_message,
    matrix_fingerprint,
    matrix_from_wire,
    matrix_to_wire,
)
from repro.serve.server import SpmmServer, run_server
from repro.serve.shedding import CircuitBreaker, LoadShedController
from repro.serve.testing import ServerThread

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "Coalescer",
    "LoadShedController",
    "ServeClient",
    "ServeConfig",
    "ServerThread",
    "SessionPool",
    "SpmmServer",
    "TokenBucket",
    "decode_message",
    "dense_from_wire",
    "encode_message",
    "matrix_fingerprint",
    "matrix_from_wire",
    "matrix_to_wire",
    "parse_address",
    "run_server",
    "STATUS_OK",
    "STATUS_ERROR",
    "STATUS_NOT_FOUND",
    "STATUS_DRAINING",
    "STATUS_DEADLINE_EXCEEDED",
    "STATUS_REJECTED_OVERLOAD",
    "STATUS_REJECTED_QUOTA",
]
