"""Request coalescing: batch concurrent same-matrix multiplies.

SpMM is column-independent — output column ``j`` of ``A @ X`` depends
only on input column ``j``, with an accumulation order that does not
change when unrelated columns sit beside it (the kernels chunk over K
already).  So when several requests for the *same* session key arrive
concurrently, the server can stack their operands side by side, run one
multiply, and slice each requester's columns back out — bitwise-identical
to serving them one at a time, but paying the per-call overhead (session
pin, workspace lease, fault bookkeeping) once.

The :class:`Coalescer` implements single-flight batching per key: the
first arrival for a key becomes the *leader* and executes the batch; any
request landing while the leader holds the key's lock becomes a
*passenger* whose future the leader resolves.  Passengers never execute;
leaders drain the whole pending list atomically before running.
"""

from __future__ import annotations

import asyncio

from repro.observability.metrics import METRICS

__all__ = ["Coalescer"]


class Coalescer:
    """Single-flight batcher keyed by session key (see module docstring).

    Usage (from event-loop coroutines only)::

        result = await coalescer.submit(key, member, execute)

    ``member`` is an opaque per-request payload; ``execute`` is an async
    callable receiving ``(key, [member, ...])`` and returning a list of
    per-member results in the same order.  All members of one batch get
    their result (or the batch's exception) through their own future.
    """

    def __init__(self) -> None:
        self._pending: dict = {}  # key -> list[(member, future)]
        self._locks: dict = {}  # key -> asyncio.Lock
        self._coalesced = METRICS.counter(
            "serve.coalesced", "requests served as passengers of a coalesced batch"
        )
        self._batches = METRICS.counter(
            "serve.batches", "coalesced multiply batches executed"
        )

    def _lock_for(self, key: str) -> asyncio.Lock:
        lock = self._locks.get(key)
        if lock is None:
            lock = self._locks[key] = asyncio.Lock()
        return lock

    async def submit(self, key: str, member, execute):
        """Enqueue ``member`` under ``key``; return its result.

        Exactly one submitter per key executes at a time; the executing
        leader takes every member queued up to that moment in one batch.
        """
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._pending.setdefault(key, []).append((member, fut))
        lock = self._lock_for(key)
        while not fut.done():
            async with lock:
                if fut.done():
                    break
                batch = self._pending.pop(key, [])
                if not batch:
                    continue
                if len(batch) > 1:
                    self._coalesced.inc(len(batch) - 1)
                self._batches.inc()
                members = [m for m, _ in batch]
                try:
                    results = await execute(key, members)
                    if len(results) != len(members):
                        raise AssertionError(
                            f"execute returned {len(results)} results for "
                            f"{len(members)} members"
                        )
                except BaseException as exc:
                    for _, member_fut in batch:
                        if not member_fut.done():
                            member_fut.set_exception(exc)
                else:
                    for (_, member_fut), result in zip(batch, results):
                        if not member_fut.done():
                            member_fut.set_result(result)
        # Benign-race pruning: the lock object is recreated on demand, so
        # dropping it while another waiter holds a reference is safe.
        if not self._pending.get(key) and key in self._locks:
            if not self._locks[key].locked():
                self._locks.pop(key, None)
        return fut.result()
