"""Configuration for the SpMM serving layer.

One frozen dataclass holds every tuning knob of the server — transport,
session-pool bounds, admission quotas, load-shedding thresholds and the
compile circuit breaker — so a config is printable, JSON-able and easy to
pin in tests.  Validation happens at construction
(:class:`repro.errors.ConfigError`), never at request time.

See ``docs/SERVING.md`` for tuning guidance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Every knob of :class:`repro.serve.SpmmServer`.

    Attributes
    ----------
    host, port:
        TCP listen address.  ``port=0`` lets the OS pick (the bound port
        is exposed as :attr:`repro.serve.SpmmServer.port`).
    unix_path:
        When set, listen on a UNIX domain socket instead of TCP.
    pool_sessions, pool_shards:
        Bound and shard count of the warm :class:`~repro.serve.SessionPool`.
    max_matrices:
        Bound of the uploaded-matrix registry (LRU evicted).
    workers:
        Threads executing plan builds and multiplies (the asyncio loop
        never runs kernels itself).
    max_inflight:
        Admission bound: requests admitted concurrently.  Everything past
        it is rejected with ``rejected_overload`` — explicit rejection
        instead of unbounded queueing.
    quota_rate, quota_burst:
        Per-tenant token-bucket refill rate (requests/second) and burst
        capacity; exhausted buckets reject with ``rejected_quota``.
    default_deadline_s:
        Deadline applied to requests that do not carry ``deadline_s``
        (``None`` = no implicit deadline).
    shed_depths:
        In-flight depth thresholds mapping pressure onto the degradation
        ladder: depth >= ``shed_depths[i]`` serves plans from ladder rung
        ``i + 1`` (``full`` -> ``round1-only`` -> ``identity`` ->
        ``untiled-csr``).
    slo_p95_s:
        Optional p95 latency SLO; while the observed p95 exceeds it the
        shed controller degrades one extra rung.
    latency_window:
        Sliding-window size for the p95 estimate.
    breaker_threshold, breaker_reset_s:
        Consecutive backend-compile failures that trip the circuit
        breaker, and the open interval before a half-open retrial.
    backend, panel_height, chunk_k:
        Kernel-side knobs forwarded into the
        :class:`~repro.reorder.ReorderConfig` / sessions.
    plan_cache_dir:
        Optional persistent plan-store directory shared across restarts.
    drain_timeout_s:
        Bound on the graceful drain (SIGTERM / ``drain`` op): in-flight
        requests get this long to finish before the server closes anyway.
    max_line_bytes:
        Protocol line-length bound (guards the reader buffer).
    """

    host: str = "127.0.0.1"
    port: int = 7077
    unix_path: str | None = None
    pool_sessions: int = 8
    pool_shards: int = 4
    max_matrices: int = 64
    workers: int = 2
    max_inflight: int = 16
    quota_rate: float = 100.0
    quota_burst: float = 50.0
    default_deadline_s: float | None = None
    shed_depths: tuple = (6, 10, 14)
    slo_p95_s: float | None = None
    latency_window: int = 64
    breaker_threshold: int = 3
    breaker_reset_s: float = 30.0
    backend: str = "numpy"
    panel_height: int = 32
    chunk_k: int = 64
    plan_cache_dir: str | None = None
    drain_timeout_s: float = 30.0
    max_line_bytes: int = 64 * 1024 * 1024
    #: Extra per-tenant quota overrides: ``{tenant: (rate, burst)}``.
    tenant_quotas: dict = field(default_factory=dict)

    def __post_init__(self):
        for name in ("pool_sessions", "pool_shards", "max_matrices", "workers",
                     "max_inflight", "breaker_threshold", "latency_window",
                     "chunk_k", "panel_height", "max_line_bytes"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value}")
        if self.quota_rate <= 0 or self.quota_burst <= 0:
            raise ConfigError(
                f"quota_rate/quota_burst must be > 0, got "
                f"{self.quota_rate}/{self.quota_burst}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ConfigError(
                f"default_deadline_s must be > 0, got {self.default_deadline_s}"
            )
        if self.slo_p95_s is not None and self.slo_p95_s <= 0:
            raise ConfigError(f"slo_p95_s must be > 0, got {self.slo_p95_s}")
        if list(self.shed_depths) != sorted(self.shed_depths) or any(
            d < 1 for d in self.shed_depths
        ):
            raise ConfigError(
                f"shed_depths must be ascending positive depths, got "
                f"{self.shed_depths}"
            )
        if len(self.shed_depths) > 3:
            raise ConfigError(
                "shed_depths maps onto the 4-rung ladder; at most 3 "
                f"thresholds make sense, got {len(self.shed_depths)}"
            )
        if self.breaker_reset_s < 0 or self.drain_timeout_s < 0:
            raise ConfigError("breaker_reset_s/drain_timeout_s must be >= 0")
        # Registered-name check (availability degrades later, a typo
        # should fail loudly now) — same contract as ReorderConfig.
        from repro.kernels.backends import get_backend

        get_backend(self.backend)

    def reorder_config(self):
        """The :class:`~repro.reorder.ReorderConfig` requests build with."""
        from repro.reorder import ReorderConfig

        return ReorderConfig(panel_height=self.panel_height, backend=self.backend)

    def address(self):
        """The listen address: a UNIX path string or a ``(host, port)`` pair."""
        if self.unix_path is not None:
            return self.unix_path
        return (self.host, self.port)
