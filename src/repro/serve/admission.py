"""Admission control: a global in-flight bound + per-tenant token buckets.

The server never queues unboundedly.  A request is either *admitted* —
it holds one of ``max_inflight`` slots until its response is written —
or *rejected explicitly* with a status the client can act on:

* ``rejected_overload`` — every in-flight slot is taken.  Rejecting at
  the door keeps the executor queue short, so admitted requests see
  predictable latency and the shed controller's depth signal stays
  meaningful.
* ``rejected_quota`` — the tenant's token bucket is empty.  Workload
  heterogeneity is the norm (Yang et al., PAPERS.md): one tenant
  hammering a huge matrix must not starve the others, so each tenant
  refills at ``quota_rate`` requests/second up to a ``quota_burst``
  ceiling.

Overload is checked before quota: an over-capacity server rejects
everyone equally without charging tenants tokens for work it cannot do.

The clock is injectable (``clock=``) so quota behaviour is exactly
testable; no wall-clock read influences any numeric result.
"""

from __future__ import annotations

import threading
import time

from repro.observability.metrics import METRICS
from repro.serve.protocol import STATUS_REJECTED_OVERLOAD, STATUS_REJECTED_QUOTA

__all__ = ["TokenBucket", "AdmissionController"]


class TokenBucket:
    """The classic token bucket: refill at ``rate``/s, hold at most ``burst``.

    >>> clock = iter([0.0, 0.0, 0.0, 10.0]).__next__
    >>> bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
    >>> bucket.try_acquire(), bucket.try_acquire(), bucket.try_acquire()
    (True, True, False)
    >>> bucket.try_acquire()  # 10s later: refilled to the burst ceiling
    True
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock", "_lock")

    def __init__(self, rate: float, burst: float, *, clock=time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate/burst must be > 0, got {rate}/{burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current token balance (after a refill to now)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class AdmissionController:
    """The server's front door (see module docstring).

    ``admit`` returns ``None`` (admitted — the caller owns one in-flight
    slot and must :meth:`release` it) or a rejection status string.
    """

    def __init__(
        self,
        *,
        max_inflight: int,
        quota_rate: float,
        quota_burst: float,
        tenant_quotas: dict | None = None,
        clock=time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = int(max_inflight)
        self.quota_rate = float(quota_rate)
        self.quota_burst = float(quota_burst)
        self._tenant_quotas = dict(tenant_quotas or {})
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._in_flight = 0
        self._lock = threading.Lock()
        self._admitted = METRICS.counter("serve.admitted", "requests admitted")
        self._rej_overload = METRICS.counter(
            "serve.rejected_overload", "requests rejected at the in-flight bound"
        )
        self._rej_quota = METRICS.counter(
            "serve.rejected_quota", "requests rejected by a tenant quota"
        )
        self._gauge = METRICS.gauge("serve.in_flight", "admitted requests in flight")

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            rate, burst = self._tenant_quotas.get(
                tenant, (self.quota_rate, self.quota_burst)
            )
            bucket = TokenBucket(rate, burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    # ------------------------------------------------------------------
    def admit(self, tenant: str) -> str | None:
        """Try to admit one request for ``tenant``.

        Returns ``None`` on success (caller must :meth:`release`), or the
        rejection status.  Overload precedes quota, so tokens are only
        charged for work the server can actually take.
        """
        with self._lock:
            if self._in_flight >= self.max_inflight:
                self._rej_overload.inc()
                return STATUS_REJECTED_OVERLOAD
            bucket = self._bucket(tenant)
            if not bucket.try_acquire():
                self._rej_quota.inc()
                return STATUS_REJECTED_QUOTA
            self._in_flight += 1
        self._admitted.inc()
        self._gauge.add(1)
        return None

    def release(self) -> None:
        """Give back one in-flight slot taken by a successful :meth:`admit`."""
        with self._lock:
            if self._in_flight < 1:
                raise AssertionError("release() without a matching admit()")
            self._in_flight -= 1
        self._gauge.add(-1)

    @property
    def in_flight(self) -> int:
        """Admitted requests currently holding a slot."""
        with self._lock:
            return self._in_flight

    def snapshot(self) -> dict:
        """Health-endpoint view: slots plus per-tenant token balances."""
        with self._lock:
            tenants = {
                name: round(bucket.tokens, 3)
                for name, bucket in sorted(self._buckets.items())
            }
            return {
                "in_flight": self._in_flight,
                "max_inflight": self.max_inflight,
                "tenants": tenants,
            }
