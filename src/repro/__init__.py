"""repro — reproduction of "A Novel Data Transformation and Execution
Strategy for Accelerating Sparse Matrix Multiplication on GPUs"
(Jiang, Hong & Agrawal, PPoPP 2020).

The paper accelerates SpMM and SDDMM on GPUs by **reordering the rows of
the sparse matrix** so that rows with similar column sets become
neighbours, letting Adaptive Sparse Tiling (ASpT) capture far more
non-zeros in shared-memory-friendly dense tiles and improving L2 temporal
locality for the remainder.  The reordering is computed with MinHash/LSH
candidate generation plus hierarchical clustering (union–find + max-heap).

Quick start::

    import numpy as np
    from repro import build_plan, ReorderConfig
    from repro.datasets import hidden_clusters

    S = hidden_clusters(64, 32, 2048, 24, seed=0)   # a shuffled-cluster matrix
    plan = build_plan(S, ReorderConfig(panel_height=32))
    X = np.random.default_rng(0).normal(size=(S.n_cols, 512))
    Y = plan.spmm(X)                                # == S @ X, faster layout

    from repro.gpu import GPUExecutor
    ex = GPUExecutor()                              # modelled P100
    print(ex.spmm_cost(plan.cost_view(), 512, "aspt").gflops)

Package map::

    repro.sparse      CSR/CSC/COO containers, ops, MatrixMarket I/O
    repro.similarity  Jaccard, MinHash, LSH
    repro.clustering  union-find, max-heap, Alg. 3 clustering
    repro.aspt        adaptive sparse tiling
    repro.kernels     functional SpMM/SDDMM kernels
    repro.gpu         P100 memory-hierarchy performance model
    repro.reorder     the paper's pipeline (Fig. 5), heuristics, autotuner
    repro.baselines   cuSPARSE/BIDMach stand-ins, vertex reordering
    repro.datasets    synthetic corpus generators
    repro.experiments tables/figures reproduction harness
"""

from repro.aspt import TiledMatrix, tile_matrix
from repro.gpu import GPUExecutor, P100, DeviceSpec
from repro.kernels import sddmm, spmm
from repro.reorder import (
    AutotuneResult,
    ExecutionPlan,
    ReorderConfig,
    autotune,
    build_plan,
    reorder_rows,
)
from repro.sparse import COOMatrix, CSCMatrix, CSRMatrix, read_matrix_market

__version__ = "1.0.0"

__all__ = [
    "TiledMatrix",
    "tile_matrix",
    "GPUExecutor",
    "P100",
    "DeviceSpec",
    "sddmm",
    "spmm",
    "AutotuneResult",
    "ExecutionPlan",
    "ReorderConfig",
    "autotune",
    "build_plan",
    "reorder_rows",
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "read_matrix_market",
    "__version__",
]
