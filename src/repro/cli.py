"""Command-line interface.

Subcommands::

    repro corpus    [--scale S] [--repeats N]        # list the corpus
    repro run       [--scale S] [--k 512 1024] [--out results.json]
                    [--resume] [--stage-deadline S]  # crash-safe, resumable
    repro doctor    [--plan-cache-dir DIR] [--checkpoint PATH] [--heal]
                    [--serve ADDR]                   # probe a running server
    repro serve     [--port P | --unix-socket PATH] [--max-inflight N]
                    [--quota-rate R] [--slo-p95 S]   # the SpMM service
    repro table     {1,2,3,4} --records results.json
    repro figure    {8,9,10,11,12} --records results.json [--k K]
    repro metis     [--scale S] [--k K]
    repro reorder   --mtx in.mtx --out out.mtx       # reorder a real matrix
    repro plan      a.mtx b.mtx --cache-dir DIR --workers 4  # batched plan builds
    repro autotune  --mtx in.mtx [--k 512] [--op spmm]  # trial-and-error verdict
    repro report    --records results.json --out EXPERIMENTS.md
    repro lint      src/ tests/ [--format json]      # reprolint static analysis
    repro bench     --gate [--quick]                 # perf-regression gate
    repro trace     in.mtx [--k 512] [--runs 3]      # Chrome trace of one build+run
    repro generators

``repro run`` executes the corpus experiment and writes the JSON records
every other subcommand consumes; see DESIGN.md for the experiment index.
Every run journals per-matrix checkpoints next to ``--out`` (override with
``--checkpoint``); after a crash or Ctrl-C, ``repro run --resume``
recomputes only the unfinished matrices, and ``repro doctor`` reports
journal progress plus plan-cache health (``--heal`` restores quarantined
cache entries whose checksums still verify).  See docs/RESILIENCE.md.

Handlers are registered with :func:`cli_handler`, which lets :func:`main`
route every :class:`repro.errors.ReproError` (and ``OSError``) through the
structured exit-code table in :mod:`repro.errors` instead of surfacing a
raw traceback — enforced by reprolint rule RD304.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import (
    EXIT_INTERRUPTED,
    EXIT_IO,
    ReproError,
    exit_code_for,
    format_cli_error,
)

__all__ = ["main", "build_parser", "cli_handler"]

#: Registered subcommand handlers: command name -> handler(args) -> int.
_HANDLERS: dict = {}


def cli_handler(name: str):
    """Decorator registering a CLI handler under its subcommand name.

    Registration is what routes the handler's errors through the
    :mod:`repro.errors` exit-code table in :func:`main`; reprolint rule
    RD304 flags ``_cmd_*`` functions that skip it.
    """

    def register(fn):
        _HANDLERS[name] = fn
        return fn

    return register


def build_parser() -> argparse.ArgumentParser:
    """Construct the `repro` argument parser (see module docstring)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="PPoPP'20 row-reordering SpMM/SDDMM reproduction harness",
    )
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("corpus", help="list corpus matrices and their stats")
    c.add_argument("--scale", default="small", help="tiny|small|medium|paper")
    c.add_argument("--repeats", type=int, default=2)

    r = sub.add_parser("run", help="run the corpus experiment")
    r.add_argument("--scale", default="small")
    r.add_argument("--repeats", type=int, default=2)
    r.add_argument("--k", type=int, nargs="+", default=[512, 1024])
    r.add_argument("--out", default="results.json")
    r.add_argument(
        "--panel-height", type=int, default=None,
        help="ASpT panel height (default: matched to --scale)",
    )
    r.add_argument("--verify", action="store_true", help="validate plans functionally")
    r.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep (matrices are independent)",
    )
    r.add_argument(
        "--plan-cache-dir", metavar="DIR", default=None,
        help="persistent plan-store directory; repeated sweeps over the "
        "same corpus skip the reordering stages",
    )
    r.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="journal path for crash-safe per-matrix checkpoints "
        "(default: <--out>.journal)",
    )
    r.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep from the checkpoint journal, "
        "recomputing only unfinished matrices",
    )
    r.add_argument(
        "--stage-deadline", type=float, metavar="SECONDS", default=None,
        help="per-rung preprocessing stage deadline; builds that exceed it "
        "degrade down the ladder (full -> round1-only -> identity -> "
        "untiled-csr) instead of failing",
    )
    r.add_argument(
        "--backend", default="numpy", metavar="NAME",
        help="compiled kernel backend for the sweep's multiplies "
        "(see `repro backends`); unavailable backends degrade to numpy",
    )

    dr = sub.add_parser(
        "doctor", help="inspect (and optionally heal) sweep/cache health"
    )
    dr.add_argument(
        "--plan-cache-dir", metavar="DIR", default=None,
        help="plan-store directory to inspect for quarantined entries",
    )
    dr.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="sweep journal to summarise (progress, in-flight matrices)",
    )
    dr.add_argument(
        "--heal", action="store_true",
        help="restore quarantined plan-cache entries whose checksums "
        "still verify",
    )
    dr.add_argument(
        "--serve", metavar="ADDR", default=None, dest="serve_address",
        help="probe a running `repro serve` instance (host:port or UNIX "
        "socket path): pool occupancy, quota state, breaker status",
    )

    sv = sub.add_parser(
        "serve", help="run the fault-tolerant multi-tenant SpMM service"
    )
    sv.add_argument("--host", default="127.0.0.1", help="TCP listen host")
    sv.add_argument("--port", type=int, default=7077, help="TCP listen port (0 = OS-assigned)")
    sv.add_argument(
        "--unix-socket", metavar="PATH", default=None,
        help="listen on a UNIX domain socket instead of TCP",
    )
    sv.add_argument(
        "--pool-sessions", type=int, default=8,
        help="warm kernel sessions kept resident (LRU beyond this)",
    )
    sv.add_argument(
        "--pool-shards", type=int, default=4, help="session-pool lock shards"
    )
    sv.add_argument(
        "--workers", type=int, default=2,
        help="threads executing plan builds and multiplies",
    )
    sv.add_argument(
        "--max-inflight", type=int, default=16,
        help="admission bound; excess requests get rejected_overload",
    )
    sv.add_argument(
        "--quota-rate", type=float, default=100.0,
        help="per-tenant token-bucket refill rate (requests/second)",
    )
    sv.add_argument(
        "--quota-burst", type=float, default=50.0,
        help="per-tenant token-bucket burst capacity",
    )
    sv.add_argument(
        "--default-deadline", type=float, metavar="SECONDS", default=None,
        help="deadline for requests that do not carry deadline_s",
    )
    sv.add_argument(
        "--shed-depths", type=int, nargs="+", default=[6, 10, 14],
        help="in-flight depths at which requests shed one ladder rung each",
    )
    sv.add_argument(
        "--slo-p95", type=float, metavar="SECONDS", default=None,
        help="p95 latency SLO; exceeding it sheds one extra rung",
    )
    sv.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive compile failures that trip the JIT circuit breaker",
    )
    sv.add_argument(
        "--breaker-reset", type=float, metavar="SECONDS", default=30.0,
        help="open interval before the breaker half-opens",
    )
    sv.add_argument(
        "--backend", default="numpy", metavar="NAME",
        help="compiled kernel backend for served multiplies",
    )
    sv.add_argument(
        "--panel-height", type=int, default=32, help="ASpT panel height for plans"
    )
    sv.add_argument(
        "--chunk-k", type=int, default=64,
        help="K-chunk width of the served multiplies (deadline poll grain)",
    )
    sv.add_argument(
        "--plan-cache-dir", metavar="DIR", default=None,
        help="persistent plan-store directory shared across restarts",
    )
    sv.add_argument(
        "--drain-timeout", type=float, metavar="SECONDS", default=30.0,
        help="grace period for in-flight requests on SIGTERM/drain",
    )

    t = sub.add_parser("table", help="print a paper table from saved records")
    t.add_argument("number", type=int, choices=(1, 2, 3, 4))
    t.add_argument("--records", default="results.json")

    f = sub.add_parser("figure", help="print a paper figure from saved records")
    f.add_argument("number", type=int, choices=(8, 9, 10, 11, 12))
    f.add_argument("--records", default="results.json")
    f.add_argument("--k", type=int, default=512)
    f.add_argument(
        "--json", metavar="PATH", default=None,
        help="also dump the figure's raw data series as JSON (for plotting)",
    )
    f.add_argument(
        "--svg", metavar="PATH", default=None,
        help="also render the figure as an SVG file",
    )
    f.add_argument(
        "--svg-mode", choices=("light", "dark"), default="light",
        help="palette mode for --svg output",
    )

    m = sub.add_parser("metis", help="run the §5.2 vertex-reordering comparison")
    m.add_argument("--scale", default="tiny")
    m.add_argument("--k", type=int, default=512)

    ro = sub.add_parser("reorder", help="row-reorder a MatrixMarket file")
    ro.add_argument("--mtx", required=True)
    ro.add_argument("--out", required=True)
    ro.add_argument("--panel-height", type=int, default=64)
    ro.add_argument(
        "--plan", metavar="PATH", default=None,
        help="also persist the execution plan (.npz) for offline reuse",
    )

    pl = sub.add_parser(
        "plan", help="build (and cache) execution plans for MatrixMarket files"
    )
    pl.add_argument("mtx", nargs="+", help="input .mtx files")
    pl.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persistent plan-store directory (omit for in-memory only)",
    )
    pl.add_argument("--workers", type=int, default=1, help="process-pool size")
    pl.add_argument("--panel-height", type=int, default=64)
    pl.add_argument(
        "--save", metavar="DIR", default=None,
        help="also write each plan as <DIR>/<stem>.plan.npz for offline reuse",
    )

    at = sub.add_parser(
        "autotune", help="trial-and-error reordering decision for a .mtx file"
    )
    at.add_argument("--mtx", required=True)
    at.add_argument("--k", type=int, default=512)
    at.add_argument("--op", choices=("spmm", "sddmm"), default="spmm")
    at.add_argument("--panel-height", type=int, default=64)

    rep = sub.add_parser("report", help="write EXPERIMENTS.md from saved records")
    rep.add_argument("--records", default="results.json")
    rep.add_argument("--out", default="EXPERIMENTS.md")
    rep.add_argument(
        "--html", metavar="PATH", default=None,
        help="also write a self-contained HTML report with embedded figures",
    )

    lint = sub.add_parser(
        "lint",
        help="run the reprolint static-analysis pass (per-file rules "
        "RD1xx-RD3xx plus the inter-procedural dataflow rules RD4xx-RD6xx)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    be = sub.add_parser(
        "bench", help="run the pinned perf micro-suite / regression gate"
    )
    be.add_argument(
        "--suite", action="append", choices=("kernels", "preproc"),
        help="suite(s) to run (default: all)",
    )
    be.add_argument(
        "--gate", action="store_true",
        help="compare against the committed BENCH_*.json baselines and "
        "fail on regression",
    )
    be.add_argument(
        "--quick", action="store_true",
        help="fewer repetitions per metric (same workloads, noisier medians)",
    )
    be.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed relative drift before the gate fails (default 0.25)",
    )
    be.add_argument(
        "--baseline-dir", metavar="DIR", default=".",
        help="directory holding the committed BENCH_<suite>.json baselines",
    )
    be.add_argument(
        "--out-dir", metavar="DIR", default=None,
        help="also write the fresh result documents here (CI artifacts)",
    )
    be.add_argument(
        "--update-baseline", action="store_true",
        help="overwrite the baselines with the fresh numbers instead of gating",
    )
    be.add_argument(
        "--backend", default="numpy", metavar="NAME",
        help="compiled kernel backend dimension for the kernel cells "
        "(adds <metric>@<backend> cells and cross-backend speedups)",
    )

    sub.add_parser(
        "backends", help="list compiled kernel backends and their availability"
    )

    sb = sub.add_parser(
        "stream-bench",
        help="replay the streaming corpus through incremental replanning "
        "and report patch/replan behaviour per stream",
    )
    sb.add_argument("--seed", type=int, default=0, help="corpus seed")
    sb.add_argument(
        "--batches", type=int, default=12, help="delta batches per stream"
    )
    sb.add_argument(
        "--repeats", type=int, default=3,
        help="repetitions for the patch-vs-rebuild timing cells",
    )
    sb.add_argument(
        "--json", action="store_true",
        help="emit one JSON document instead of a table",
    )

    tr = sub.add_parser(
        "trace", help="trace one plan build + kernel run (Chrome trace_event JSON)"
    )
    tr.add_argument("mtx", help="input .mtx file")
    tr.add_argument(
        "--out", metavar="PATH", default=None,
        help="trace output path (default: <mtx stem>.trace.json)",
    )
    tr.add_argument("--k", type=int, default=512, help="dense operand width")
    tr.add_argument("--runs", type=int, default=3, help="kernel runs to record")
    tr.add_argument("--panel-height", type=int, default=64)
    tr.add_argument(
        "--gated", action="store_true",
        help="let the paper's §4 heuristics gate the reordering rounds "
        "(default: force both on so every pipeline stage appears in the trace)",
    )

    sub.add_parser("generators", help="list dataset generators")
    return p


@cli_handler("bench")
def _cmd_bench(args) -> int:
    import json

    from repro.bench import SUITES, run_gate, run_suite
    from repro.bench.gate import DEFAULT_TOLERANCE

    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    if args.gate or args.update_baseline:
        code, text = run_gate(
            args.suite,
            quick=args.quick,
            tolerance=tolerance,
            baseline_dir=args.baseline_dir,
            out_dir=args.out_dir,
            update_baseline=args.update_baseline,
            backend=args.backend,
        )
        print(text)
        return code
    for name in args.suite or sorted(SUITES):
        print(
            json.dumps(
                run_suite(name, quick=args.quick, backend=args.backend), indent=1
            )
        )
    return 0


@cli_handler("stream-bench")
def _cmd_stream_bench(args, clock=time.perf_counter) -> int:
    import json

    import numpy as np

    from repro.datasets import stream_corpus
    from repro.reorder import build_plan
    from repro.streaming import DeltaBatch, LshState, StreamingPlan, apply_delta

    def median_ms(fn, repeats):
        ts = []
        for _ in range(max(1, repeats)):
            t0 = clock()
            fn()
            ts.append((clock() - t0) * 1e3)
        return round(sorted(ts)[len(ts) // 2], 3)

    rows = []
    for stream in stream_corpus(args.seed, n_batches=args.batches):
        sp = StreamingPlan(stream.base)
        t0 = clock()
        for delta in stream.deltas:
            sp.apply(delta)
        replay_ms = round((clock() - t0) * 1e3, 3)
        patched = sum(r.patched for r in sp.reports)

        # Timing cell: one value-only set-delta on the final matrix,
        # incremental patch vs full from-scratch rebuild.
        final, config, plan = sp.matrix, sp.config, sp.plan
        state = (
            LshState.build(final, config)
            if plan.stats.round1_applied and not plan.degraded
            else None
        )
        rng = np.random.default_rng(args.seed + 99)
        n = max(1, final.nnz // 1000)
        idx = np.sort(rng.choice(final.nnz, size=n, replace=False))
        delta = DeltaBatch(
            rows=final.row_ids()[idx],
            cols=final.colidx[idx],
            values=rng.normal(size=n),
            mode="set",
        )
        mutated = delta.apply_to(final)
        patch_ms = median_ms(
            lambda: apply_delta(plan, delta, config, state=state), args.repeats
        )
        rebuild_ms = median_ms(lambda: build_plan(mutated, config), args.repeats)
        rows.append(
            {
                "stream": stream.name,
                "batches": stream.n_batches,
                "events": stream.n_events,
                "patched": patched,
                "replanned": len(sp.reports) - patched,
                "replay_ms": replay_ms,
                "patch_ms": patch_ms,
                "rebuild_ms": rebuild_ms,
                "patch_vs_rebuild": round(rebuild_ms / max(patch_ms, 1e-9), 3),
            }
        )

    if args.json:
        print(json.dumps({"seed": args.seed, "streams": rows}, indent=1))
        return 0
    print(
        f"{'stream':<22}{'batches':>8}{'events':>8}{'patched':>8}"
        f"{'replanned':>10}{'patch_ms':>10}{'rebuild_ms':>12}{'speedup':>9}"
    )
    for row in rows:
        print(
            f"{row['stream']:<22}{row['batches']:>8}{row['events']:>8}"
            f"{row['patched']:>8}{row['replanned']:>10}{row['patch_ms']:>10}"
            f"{row['rebuild_ms']:>12}{row['patch_vs_rebuild']:>9}"
        )
    return 0


@cli_handler("backends")
def _cmd_backends(_args) -> int:
    from repro.kernels.backends import backend_names, get_backend

    print(f"{'backend':<12}{'available':<12}note")
    for name in backend_names():
        backend = get_backend(name)
        if backend.available():
            note = "reference (degradation target)" if name == "numpy" else ""
            print(f"{name:<12}{'yes':<12}{note}")
        else:
            print(f"{name:<12}{'no':<12}{backend.unavailable_reason()}")
    return 0


@cli_handler("corpus")
def _cmd_corpus(args) -> int:
    from repro.datasets import build_corpus, corpus_summary

    entries = build_corpus(args.scale, repeats=args.repeats)
    rows = corpus_summary(entries)
    print(f"{'name':<32}{'category':<14}{'rows':>8}{'cols':>8}{'nnz':>10}")
    for row in rows:
        print(
            f"{row['name']:<32}{row['category']:<14}"
            f"{row['n_rows']:>8}{row['n_cols']:>8}{row['nnz']:>10}"
        )
    print(f"total: {len(rows)} matrices")
    return 0


@cli_handler("run")
def _cmd_run(args) -> int:
    from repro.experiments import ExperimentConfig, run_experiment, save_records
    from repro.experiments.config import PANEL_HEIGHTS
    from repro.reorder import ReorderConfig
    from repro.resilience import ResiliencePolicy
    from repro.util.log import enable_console_logging

    enable_console_logging()
    if args.panel_height is None and args.backend == "numpy":
        reorder = None  # ExperimentConfig picks the scale-matched default
    else:
        # A backend request alone must not lose the scale-matched panel
        # height, so fall back to the same table ExperimentConfig uses.
        reorder = ReorderConfig(
            panel_height=(
                args.panel_height
                if args.panel_height is not None
                else PANEL_HEIGHTS.get(args.scale, 64)
            ),
            backend=args.backend,
        )
    config = ExperimentConfig(
        ks=tuple(args.k),
        scale=args.scale,
        repeats=args.repeats,
        reorder=reorder,
        verify=args.verify,
        plan_cache_dir=args.plan_cache_dir,
        resilience=(
            ResiliencePolicy(deadline_s=args.stage_deadline)
            if args.stage_deadline is not None
            else None
        ),
    )
    checkpoint = args.checkpoint or f"{args.out}.journal"
    records = run_experiment(
        config,
        progress=args.jobs == 1,
        n_jobs=args.jobs,
        checkpoint=checkpoint,
        resume=args.resume,
    )
    save_records(records, args.out)
    print(f"wrote {len(records)} records to {args.out}")
    degraded = sorted({r.name for r in records if r.degradation})
    if degraded:
        print(
            f"note: {len(degraded)} matrices built below the full "
            "degradation-ladder rung (see the 'degradation' record field)"
        )
    return 0


@cli_handler("doctor")
def _cmd_doctor(args) -> int:
    from repro.resilience import doctor_report

    text, problems = doctor_report(
        cache_dir=args.plan_cache_dir,
        checkpoint=args.checkpoint,
        heal=args.heal,
        serve_address=args.serve_address,
    )
    print(text)
    return 1 if problems else 0


@cli_handler("serve")
def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix_socket,
        pool_sessions=args.pool_sessions,
        pool_shards=args.pool_shards,
        workers=args.workers,
        max_inflight=args.max_inflight,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        default_deadline_s=args.default_deadline,
        shed_depths=tuple(args.shed_depths),
        slo_p95_s=args.slo_p95,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
        backend=args.backend,
        panel_height=args.panel_height,
        chunk_k=args.chunk_k,
        plan_cache_dir=args.plan_cache_dir,
        drain_timeout_s=args.drain_timeout,
    )
    where = config.unix_path or f"{config.host}:{config.port}"
    print(f"repro serve: listening on {where} (SIGTERM or the drain op stops it)")
    run_server(config)
    return 0


@cli_handler("table")
def _cmd_table(args) -> int:
    from repro.experiments import load_records
    from repro.experiments.tables import (
        format_band_table,
        needing_reordering,
        preprocessing_ratio_bands,
        records_at_k,
        speedup_bands,
        summary_stats,
    )

    records = load_records(args.records)
    ks = sorted({r.k for r in records})
    subset = needing_reordering(records)
    if args.number == 1:
        bands = {k: speedup_bands(records_at_k(subset, k), "spmm_vs_best") for k in ks}
        print(format_band_table("Table 1: SpMM ASpT-RR vs best(cuSPARSE, ASpT-NR)", bands))
        for k in ks:
            print(f"K={k}:", summary_stats(records_at_k(subset, k), "spmm_vs_best"))
    elif args.number == 2:
        bands = {k: speedup_bands(records_at_k(subset, k), "sddmm_vs_nr") for k in ks}
        print(format_band_table("Table 2: SDDMM ASpT-RR vs ASpT-NR", bands))
        for k in ks:
            print(f"K={k}:", summary_stats(records_at_k(subset, k), "sddmm_vs_nr"))
    else:
        op = "spmm" if args.number == 3 else "sddmm"
        bands = {
            k: preprocessing_ratio_bands(records_at_k(subset, k), op) for k in ks
        }
        print(format_band_table(f"Table {args.number}: preprocessing/{op} ratio", bands))
    return 0


@cli_handler("figure")
def _cmd_figure(args) -> int:
    from repro.experiments import (
        fig8_speedup_histogram,
        fig9_effectiveness_scatter,
        fig10_throughput_series,
        fig11_throughput_series,
        fig12_preprocessing_times,
        load_records,
    )

    records = load_records(args.records)
    fn = {
        8: lambda: fig8_speedup_histogram(records, args.k),
        9: lambda: fig9_effectiveness_scatter(records, args.k),
        10: lambda: fig10_throughput_series(records, args.k),
        11: lambda: fig11_throughput_series(records, args.k),
        12: lambda: fig12_preprocessing_times(records),
    }[args.number]
    out = fn()
    print(out["text"])
    if args.json:
        import json

        data = {key: value for key, value in out.items() if key != "text"}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=1)
        print(f"wrote raw series to {args.json}")
    if args.svg:
        from repro.viz import figure_svg

        with open(args.svg, "w", encoding="utf-8") as fh:
            fh.write(figure_svg(args.number, out, mode=args.svg_mode))
        print(f"wrote SVG to {args.svg}")
    return 0


@cli_handler("metis")
def _cmd_metis(args) -> int:
    from repro.datasets import build_corpus
    from repro.experiments import metis_comparison

    entries = build_corpus(args.scale, repeats=1)
    result = metis_comparison(entries, args.k)
    print(result["text"])
    return 0


@cli_handler("reorder")
def _cmd_reorder(args) -> int:
    from repro.reorder import ReorderConfig, build_plan
    from repro.sparse import permute_csr_rows, read_matrix_market, write_matrix_market

    matrix = read_matrix_market(args.mtx)
    plan = build_plan(matrix, ReorderConfig(panel_height=args.panel_height))
    reordered = permute_csr_rows(matrix, plan.row_order)
    write_matrix_market(args.out, reordered, comment=f"row-reordered from {args.mtx}")
    if args.plan:
        plan.save(args.plan)
        print(f"saved execution plan to {args.plan}")
    s = plan.stats
    print(
        f"dense ratio {s.dense_ratio_before:.3f} -> {s.dense_ratio_after:.3f}; "
        f"rounds applied: 1={s.round1_applied} 2={s.round2_applied}; "
        f"preprocessing {plan.preprocessing_time:.2f}s"
    )
    return 0


@cli_handler("plan")
def _cmd_plan(args) -> int:
    from pathlib import Path

    from repro.planstore import PlanStore, build_plans
    from repro.reorder import ReorderConfig
    from repro.util.log import enable_console_logging

    enable_console_logging()
    from repro.sparse import read_matrix_market

    matrices = [read_matrix_market(path) for path in args.mtx]
    store = PlanStore(cache_dir=args.cache_dir)
    config = ReorderConfig(panel_height=args.panel_height)
    results = build_plans(matrices, config, workers=args.workers, cache=store)

    failures = 0
    for path, matrix, result in zip(args.mtx, matrices, results):
        if not result.ok:
            failures += 1
            print(f"{path}: FAILED ({result.error})")
            continue
        plan = result.plan
        s = plan.stats
        origin = "cache" if result.cache_hit else "built"
        print(
            f"{path}: {matrix.n_rows}x{matrix.n_cols} nnz={matrix.nnz} "
            f"[{origin}] rounds 1={s.round1_applied} 2={s.round2_applied} "
            f"dense ratio {s.dense_ratio_before:.3f} -> {s.dense_ratio_after:.3f}"
        )
        if args.save:
            out_dir = Path(args.save)
            out_dir.mkdir(parents=True, exist_ok=True)
            out = out_dir / (Path(path).stem + ".plan.npz")
            plan.save(out)
            print(f"  saved {out}")
    stats = store.stats()
    mem = stats["memory"]
    line = f"cache: memory {mem['hits']} hits / {mem['misses']} misses"
    if "disk" in stats:
        disk = stats["disk"]
        line += f"; disk {disk['hits']} hits / {disk['misses']} misses"
    print(line)
    return 1 if failures else 0


@cli_handler("autotune")
def _cmd_autotune(args) -> int:
    from repro.reorder import ReorderConfig, autotune
    from repro.sparse import read_matrix_market

    matrix = read_matrix_market(args.mtx)
    result = autotune(
        matrix, args.k, op=args.op,
        config=ReorderConfig(panel_height=args.panel_height),
    )
    choice = "REORDER" if result.use_reordering else "KEEP ORIGINAL"
    print(
        f"{args.mtx}: {matrix.n_rows}x{matrix.n_cols}, nnz={matrix.nnz}\n"
        f"modelled {args.op} (K={args.k}): reordered "
        f"{result.cost_reordered.time_s * 1e6:.1f} us vs plain "
        f"{result.cost_plain.time_s * 1e6:.1f} us "
        f"({result.speedup:.2f}x)\n"
        f"decision: {choice}"
    )
    return 0


@cli_handler("trace")
def _cmd_trace(args) -> int:
    from pathlib import Path

    import numpy as np

    from repro.observability import (
        METRICS,
        Tracer,
        format_metrics,
        trace_summary,
        tracing,
    )
    from repro.reorder import ReorderConfig
    from repro.sparse import read_matrix_market

    matrix = read_matrix_market(args.mtx)
    config = ReorderConfig(panel_height=args.panel_height)
    if not args.gated:
        # Diagnostic default: force both rounds on so the trace covers
        # every pipeline stage even for matrices the §4 gates would skip.
        from dataclasses import replace

        config = replace(config, force_round1=True, force_round2=True)

    from repro.reorder import build_plan

    tracer = Tracer()
    with tracing(tracer):
        plan = build_plan(matrix, config)
        session = plan.session()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((matrix.n_cols, args.k))
        for _ in range(args.runs):
            session.run(x)

    out = args.out or (Path(args.mtx).stem + ".trace.json")
    tracer.write_chrome_trace(out)
    print(trace_summary(tracer))
    print()
    print(format_metrics(METRICS.snapshot()))
    print(f"\nwrote {out} (load in chrome://tracing or https://ui.perfetto.dev)")
    return 0


@cli_handler("report")
def _cmd_report(args) -> int:
    from repro.experiments import load_records, render_experiments_markdown

    records = load_records(args.records)
    text = render_experiments_markdown(records)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"wrote {args.out} from {len(records)} records")
    if args.html:
        from repro.experiments import render_html_report

        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_html_report(records))
        print(f"wrote {args.html}")
    return 0


@cli_handler("generators")
def _cmd_generators(_args) -> int:
    from repro.datasets import list_generators

    for name in list_generators():
        print(name)
    return 0


@cli_handler("lint")
def _cmd_lint(args) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def main(argv=None) -> int:
    """CLI entry point (returns a process exit code).

    Library and filesystem errors are reported as one structured line on
    stderr and mapped to the :mod:`repro.errors` exit codes instead of
    escaping as tracebacks.
    """
    args = build_parser().parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(format_cli_error(args.command, exc), file=sys.stderr)
        return exit_code_for(exc)
    except OSError as exc:
        print(format_cli_error(args.command, exc), file=sys.stderr)
        return EXIT_IO
    except KeyboardInterrupt:
        # The runner has already flushed its checkpoint journal by the
        # time the interrupt propagates here (see run_experiment), so the
        # user can pick up with `repro run --resume`.
        print(f"repro {args.command}: interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
