"""Incrementally maintained MinHash/LSH state for streaming plans.

:class:`LshState` holds everything the round-1 candidate generation of
:func:`repro.reorder.build_plan` derives from the matrix — MinHash
signatures, per-band bucket keys, and the scored candidate pairs — in a
form that can be *patched* when a :class:`~repro.streaming.DeltaBatch`
dirties a few rows, instead of recomputed from scratch.

Exactness contract (the property suite asserts all of it): after
:meth:`LshState.update`, every field is bit-identical to what
:meth:`LshState.build` would produce on the mutated matrix.  The
ingredients:

* a row's MinHash signature depends only on its own columns and the
  seeded hash family, so recomputing dirty rows alone is exact;
* band bucket keys are per-row functions of the signature
  (:func:`repro.similarity.lsh.band_keys_matrix` with the state's pinned
  mixers), so dirty-row re-bucketing is exact;
* pair expansion runs through the very same
  :func:`repro.similarity.lsh.pairs_from_band_keys` code path the
  from-scratch build uses, on the maintained key matrix;
* pair similarities depend only on the two rows' content, so scores are
  carried over for pairs whose endpoints are both clean and recomputed
  otherwise — the recomputed values are what a full pass would produce.

Updates are copy-on-write: ``update`` returns a *new* state and never
mutates ``self``, so an interrupted streaming update cannot tear the
state the old plan still references.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observability.metrics import METRICS
from repro.observability.tracing import span
from repro.similarity.lsh import band_keys_matrix, band_mixers, pairs_from_band_keys
from repro.similarity.measures import similarity_for_pairs
from repro.similarity.minhash import EMPTY_ROW_SENTINEL, minhash_signatures
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import extract_rows

__all__ = ["LshState"]

#: Pair key encoding stride: ``(lo, hi) -> lo * 2**32 + hi``.  Monotone in
#: lexicographic pair order (so encoded keys of the sorted unique pair
#: list are ascending and binary-searchable) and collision-free for any
#: matrix with fewer than 2**32 rows.
_PAIR_STRIDE = np.int64(1) << np.int64(32)

#: The similarity filter of :meth:`repro.similarity.LSHIndex.candidate_pairs`
#: at the pipeline's ``min_similarity=0`` default: keep strictly-positive
#: similarities, drop pure banding false positives.
_SIM_KEEP_THRESHOLD = np.finfo(np.float64).tiny


def _candidate_pairs(signatures, band_keys, csr, config, deadline):
    """Pairs + kept sims from a maintained key matrix — the exact
    from-scratch pipeline (empty-row filter, shared pair expansion,
    scoring, positive-similarity filter) minus the recompute."""
    n_rows = csr.n_rows
    empty_pairs = np.empty((0, 2), dtype=np.int64)
    empty_sims = np.zeros(0, dtype=np.float64)
    if n_rows < 2:
        return empty_pairs, empty_sims
    rows = np.arange(n_rows, dtype=np.int64)
    nonempty = ~(signatures == EMPTY_ROW_SENTINEL).all(axis=1)
    rows = rows[nonempty]
    if rows.size < 2:
        return empty_pairs, empty_sims
    pairs = pairs_from_band_keys(
        band_keys[nonempty],
        rows,
        n_rows,
        bucket_cap=config.bucket_cap,
        deadline=deadline,
    )
    if pairs.shape[0] == 0:
        return pairs, empty_sims
    sims = similarity_for_pairs(csr, pairs, config.measure)
    keep = sims >= _SIM_KEEP_THRESHOLD
    return pairs[keep], sims[keep]


@dataclass(frozen=True)
class LshState:
    """Round-1 candidate-generation state of one matrix (see module docs).

    Attributes
    ----------
    signatures:
        ``(n_rows, siglen)`` int64 MinHash signature matrix.
    band_keys:
        ``(n_rows, nbands)`` int64 per-band bucket keys of every row.
    mixers:
        ``(nbands, bsize)`` band-compression vectors pinned at build time
        (seeded from the config, identical to the from-scratch draw).
    pairs, sims:
        The scored candidate pairs exactly as
        :meth:`repro.similarity.LSHIndex.candidate_pairs` returns them —
        the input round-1 clustering consumes.
    """

    signatures: np.ndarray
    band_keys: np.ndarray
    mixers: np.ndarray
    pairs: np.ndarray
    sims: np.ndarray

    @property
    def n_rows(self) -> int:
        """Height of the matrix this state describes."""
        return int(self.signatures.shape[0])

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, csr: CSRMatrix, config, *, deadline=None) -> "LshState":
        """From-scratch state for ``csr`` under ``config``.

        Uses the same seeds as ``config.lsh_index()`` (MinHash at
        ``lsh_seed``, banding at ``lsh_seed + 1``), so ``pairs``/``sims``
        equal a fresh :meth:`~repro.similarity.LSHIndex.candidate_pairs`
        call bit for bit.
        """
        with span("streaming.state_build", rows=csr.n_rows, nnz=csr.nnz):
            signatures = minhash_signatures(
                csr, config.siglen, seed=config.lsh_seed, deadline=deadline
            )
            mixers = band_mixers(config.siglen, config.bsize, config.lsh_seed + 1)
            band_keys = band_keys_matrix(signatures, mixers)
            pairs, sims = _candidate_pairs(
                signatures, band_keys, csr, config, deadline
            )
        return cls(
            signatures=signatures,
            band_keys=band_keys,
            mixers=mixers,
            pairs=pairs,
            sims=sims,
        )

    # ------------------------------------------------------------------
    def update(
        self,
        csr_new: CSRMatrix,
        dirty_rows: np.ndarray,
        n_new_rows: int,
        config,
        *,
        deadline=None,
    ) -> tuple["LshState", int]:
        """Patched state for ``csr_new`` (copy-on-write; see module docs).

        Parameters
        ----------
        csr_new:
            The matrix *after* the delta.
        dirty_rows:
            Pre-existing rows whose content changed (from
            :meth:`repro.streaming.DeltaBatch.dirty_existing_rows`).
        n_new_rows:
            Rows appended at the bottom (``csr_new.n_rows`` must equal
            this state's height plus ``n_new_rows``).
        config:
            The same :class:`repro.reorder.ReorderConfig` the state was
            built with.

        Returns
        -------
        tuple
            ``(new_state, n_pairs_rescored)``.
        """
        m_old = self.n_rows
        m_new = csr_new.n_rows
        if m_new != m_old + n_new_rows:
            raise ValueError(
                f"state covers {m_old} rows + {n_new_rows} new != {m_new}"
            )
        dirty_rows = np.asarray(dirty_rows, dtype=np.int64)
        changed = np.concatenate(
            [dirty_rows, np.arange(m_old, m_new, dtype=np.int64)]
        )
        with span(
            "streaming.state_update", dirty=int(dirty_rows.size), new=n_new_rows
        ):
            if n_new_rows:
                signatures = np.vstack(
                    [
                        self.signatures,
                        np.empty((n_new_rows, self.signatures.shape[1]), np.int64),
                    ]
                )
                band_keys = np.vstack(
                    [
                        self.band_keys,
                        np.empty((n_new_rows, self.band_keys.shape[1]), np.int64),
                    ]
                )
            else:
                signatures = self.signatures.copy()
                band_keys = self.band_keys.copy()
            if changed.size:
                sub = extract_rows(csr_new, changed)
                sub_sigs = minhash_signatures(
                    sub, config.siglen, seed=config.lsh_seed, deadline=deadline
                )
                signatures[changed] = sub_sigs
                band_keys[changed] = band_keys_matrix(sub_sigs, self.mixers)
            pairs, sims, n_rescored = self._rescore(
                signatures, band_keys, csr_new, changed, config, deadline
            )
        METRICS.counter(
            "streaming.rows_resigned",
            "rows whose MinHash signature was incrementally recomputed",
        ).inc(int(changed.size))
        METRICS.counter(
            "streaming.pairs_rescored",
            "candidate pairs rescored during incremental updates",
        ).inc(n_rescored)
        return (
            LshState(
                signatures=signatures,
                band_keys=band_keys,
                mixers=self.mixers,
                pairs=pairs,
                sims=sims,
            ),
            n_rescored,
        )

    def _rescore(self, signatures, band_keys, csr_new, changed, config, deadline):
        """Regenerate pairs; carry scores over for clean-endpoint pairs.

        Mirrors :func:`_candidate_pairs` stage by stage, but splits the
        scoring step so similarities of pairs with two clean endpoints
        are copied from the previous state instead of recomputed.
        """
        n_rows = csr_new.n_rows
        empty_pairs = np.empty((0, 2), dtype=np.int64)
        empty_sims = np.zeros(0, dtype=np.float64)
        if n_rows < 2:
            return empty_pairs, empty_sims, 0
        rows = np.arange(n_rows, dtype=np.int64)
        nonempty = ~(signatures == EMPTY_ROW_SENTINEL).all(axis=1)
        rows = rows[nonempty]
        if rows.size < 2:
            return empty_pairs, empty_sims, 0
        pairs = pairs_from_band_keys(
            band_keys[nonempty],
            rows,
            n_rows,
            bucket_cap=config.bucket_cap,
            deadline=deadline,
        )
        if pairs.shape[0] == 0:
            return pairs, empty_sims, 0

        changed_mask = np.zeros(n_rows, dtype=bool)
        changed_mask[changed] = True
        clean = ~(changed_mask[pairs[:, 0]] | changed_mask[pairs[:, 1]])
        new_enc = pairs[:, 0] * _PAIR_STRIDE + pairs[:, 1]
        reuse = np.zeros(pairs.shape[0], dtype=bool)
        pos = np.zeros(pairs.shape[0], dtype=np.int64)
        if self.pairs.shape[0]:
            old_enc = self.pairs[:, 0] * _PAIR_STRIDE + self.pairs[:, 1]
            pos = np.searchsorted(old_enc, new_enc)
            inb = pos < old_enc.size
            found = np.zeros(pairs.shape[0], dtype=bool)
            found[inb] = old_enc[pos[inb]] == new_enc[inb]
            reuse = clean & found
        sims = np.empty(pairs.shape[0], dtype=np.float64)
        sims[reuse] = self.sims[pos[reuse]]
        rescore = ~reuse
        n_rescored = int(rescore.sum())
        if n_rescored:
            sims[rescore] = similarity_for_pairs(
                csr_new, pairs[rescore], config.measure
            )
        keep = sims >= _SIM_KEEP_THRESHOLD
        return pairs[keep], sims[keep], n_rescored
