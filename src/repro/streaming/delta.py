"""Delta batches: the unit of change for streaming matrices.

The ROADMAP north-star is a service whose matrices drift under live
traffic — ratings matrices gain rows, graphs gain edges, edge weights
get corrected.  A :class:`DeltaBatch` captures one such update as a COO
fragment plus an optional count of appended rows, with two modes:

``add``
    Insert new non-zeros and/or accumulate onto existing ones (sparse
    addition).  Entries may target appended rows.
``set``
    Overwrite the values of entries that already exist; the sparsity
    pattern is preserved and no rows may be appended.

Applying a delta never mutates the input matrix — :meth:`DeltaBatch.apply_to`
returns a new canonical :class:`~repro.sparse.CSRMatrix`, so an
interrupted streaming update can always fall back to the old matrix.

:func:`split_into_deltas` is the inverse operation used by the test
battery and the stream corpus: it decomposes a matrix into a replayable
delta sequence with an *exact-replay* guarantee — every non-zero is
emitted by exactly one delta, all deltas are ``add``, and no two deltas
touch the same entry, so replaying them reproduces the source matrix
bit-for-bit (no float re-accumulation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.sparse.csr import CSRMatrix
from repro.util.arrayops import counts_to_offsets
from repro.util.rng import as_generator
from repro.util.validation import check_positive

__all__ = ["DeltaBatch", "split_into_deltas"]


@dataclass(frozen=True)
class DeltaBatch:
    """One batch of matrix mutations (see module docstring).

    Attributes
    ----------
    rows, cols, values:
        Parallel COO arrays of the touched entries.  Row indices refer to
        the matrix *after* appending :attr:`new_rows` rows, so an entry
        may populate a row this same batch creates.
    new_rows:
        Rows appended to the bottom of the matrix (0 = same height).
    mode:
        ``"add"`` (sparse addition, may create entries) or ``"set"``
        (overwrite values of existing entries only).
    timestamp:
        Event time of the batch (seconds, caller-defined epoch).  Carried
        through to update reports; never interpreted by the library.
    """

    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    new_rows: int = 0
    mode: str = "add"
    timestamp: float = 0.0

    def __post_init__(self):
        rows = np.ascontiguousarray(self.rows, dtype=np.int64)
        cols = np.ascontiguousarray(self.cols, dtype=np.int64)
        values = np.ascontiguousarray(self.values, dtype=np.float64)
        if not (rows.ndim == cols.ndim == values.ndim == 1):
            raise ValidationError("delta rows/cols/values must be 1-D arrays")
        if not (rows.size == cols.size == values.size):
            raise ValidationError(
                f"delta arrays must have equal length, got "
                f"{rows.size}/{cols.size}/{values.size}"
            )
        if rows.size and (rows.min() < 0 or cols.min() < 0):
            raise ValidationError("delta indices must be non-negative")
        if self.new_rows < 0:
            raise ValidationError(f"new_rows must be >= 0, got {self.new_rows}")
        if self.mode not in ("add", "set"):
            raise ValidationError(f"mode must be 'add' or 'set', got {self.mode!r}")
        if self.mode == "set" and self.new_rows:
            raise ValidationError("mode='set' cannot append rows (pattern-preserving)")
        object.__setattr__(self, "rows", rows)
        object.__setattr__(self, "cols", cols)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "new_rows", int(self.new_rows))
        object.__setattr__(self, "timestamp", float(self.timestamp))

    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        """Number of COO entries in the batch."""
        return int(self.rows.size)

    def touched_rows(self) -> np.ndarray:
        """Sorted unique row indices receiving entries."""
        return np.unique(self.rows)

    def dirty_existing_rows(self, n_rows_before: int) -> np.ndarray:
        """Sorted unique *pre-existing* rows this batch modifies.

        Appended rows (index ``>= n_rows_before``) are excluded — they
        are new, not dirty, and the incremental pipeline treats the two
        classes differently (new rows extend state, dirty rows patch it).
        """
        touched = self.touched_rows()
        return touched[touched < n_rows_before]

    # ------------------------------------------------------------------
    def apply_to(self, csr: CSRMatrix) -> CSRMatrix:
        """The matrix after this batch — a new canonical CSR.

        ``add`` builds the sparse sum of ``csr`` and the batch (duplicate
        batch entries and collisions with existing entries are summed, as
        in COO construction); ``set`` overwrites existing values in place
        of a structural change.  Raises
        :class:`~repro.errors.ValidationError` on out-of-range indices,
        and for ``set`` on entries that do not exist in ``csr`` or appear
        twice in the batch.
        """
        m, n = csr.shape
        m_new = m + self.new_rows
        if self.rows.size:
            if self.rows.max() >= m_new:
                raise ValidationError(
                    f"delta row {int(self.rows.max())} out of range for "
                    f"{m} + {self.new_rows} rows"
                )
            if self.cols.max() >= n:
                raise ValidationError(
                    f"delta column {int(self.cols.max())} out of range for "
                    f"{n} columns"
                )
        if self.mode == "set":
            return self._apply_set(csr)
        all_rows = np.concatenate([csr.row_ids(), self.rows])
        all_cols = np.concatenate([csr.colidx, self.cols])
        all_vals = np.concatenate([csr.values, self.values])
        counts = (
            np.bincount(all_rows, minlength=m_new)
            if all_rows.size
            else np.zeros(m_new, dtype=np.int64)
        )
        order = np.argsort(all_rows, kind="stable")
        return CSRMatrix.from_arrays(
            (m_new, n), counts_to_offsets(counts), all_cols[order], all_vals[order]
        )

    def _apply_set(self, csr: CSRMatrix) -> CSRMatrix:
        # Locate each entry by its (row, col) key; canonical CSR makes the
        # key stream strictly increasing, so one searchsorted finds all.
        stride = np.int64(csr.n_cols + 1)
        mat_keys = csr.row_ids() * stride + csr.colidx
        ent_keys = self.rows * stride + self.cols
        if np.unique(ent_keys).size != ent_keys.size:
            raise ValidationError("mode='set' batch targets an entry twice")
        pos = np.searchsorted(mat_keys, ent_keys)
        missing = (pos >= mat_keys.size) | (
            mat_keys[np.minimum(pos, max(mat_keys.size - 1, 0))] != ent_keys
        )
        if ent_keys.size and missing.any():
            bad = int(np.flatnonzero(missing)[0])
            raise ValidationError(
                f"mode='set' targets missing entry "
                f"({int(self.rows[bad])}, {int(self.cols[bad])})"
            )
        values = csr.values.copy()
        values[pos] = self.values
        return csr.with_values(values)


def split_into_deltas(
    csr: CSRMatrix, n_batches: int, *, seed=0, grow_rows: bool = False
) -> tuple[CSRMatrix, list[DeltaBatch]]:
    """Decompose ``csr`` into ``(base, deltas)`` with exact replay.

    Replaying the returned ``add`` deltas on ``base`` (in order)
    reconstructs ``csr`` bit-for-bit: each non-zero is emitted by exactly
    one delta, so no float accumulation differs from whole-matrix
    construction.  This is the workhorse of the ``streamed`` test fixture
    and the edge-stream corpus.

    Parameters
    ----------
    csr:
        Matrix to decompose.
    n_batches:
        Number of deltas (each may be empty for tiny matrices).
    seed:
        Assignment of entries to batches is seeded and deterministic.
    grow_rows:
        When false, ``base`` has the full shape and every delta only
        inserts non-zeros.  When true, ``base`` is the empty
        ``(0, n_cols)`` matrix and delta ``b`` appends the ``b``-th
        contiguous row block, with each entry landing in a uniformly
        random batch *at or after* the one that creates its row — so
        later deltas also insert into rows appended earlier (the
        mixed append/insert workload the streaming pipeline serves).

    Returns
    -------
    tuple
        ``(base, [delta_0, ..., delta_{n_batches-1}])``; delta ``b`` has
        ``timestamp=float(b)``.
    """
    n_batches = check_positive("n_batches", n_batches)
    m, n = csr.shape
    rng = as_generator(seed)
    row_ids = csr.row_ids()
    if grow_rows:
        bounds = (np.arange(n_batches + 1, dtype=np.int64) * m) // n_batches
        block = np.searchsorted(bounds, row_ids, side="right") - 1
        batch = rng.integers(block, n_batches) if row_ids.size else row_ids
        base = CSRMatrix.empty((0, n))
        appended = np.diff(bounds)
    else:
        batch = (
            rng.integers(0, n_batches, size=row_ids.size)
            if row_ids.size
            else row_ids
        )
        base = CSRMatrix.empty((m, n))
        appended = np.zeros(n_batches, dtype=np.int64)
    deltas = []
    for b in range(n_batches):
        sel = batch == b
        deltas.append(
            DeltaBatch(
                rows=row_ids[sel],
                cols=csr.colidx[sel],
                values=csr.values[sel],
                new_rows=int(appended[b]),
                mode="add",
                timestamp=float(b),
            )
        )
    return base, deltas
