"""Streaming matrices: delta batches and incremental replanning.

The preprocessing pipeline (MinHash -> LSH -> clustering -> tiling)
assumes a static matrix; this package makes it serve matrices that drift
under live traffic.  :class:`DeltaBatch` describes one batch of changes
(append rows, insert or overwrite non-zeros), :func:`apply_delta`
patches an existing :class:`~repro.reorder.ExecutionPlan` for the
mutated matrix — recomputing only dirty rows, re-bucketing only their
LSH entries, retiling only dirty panels — and :class:`StreamingPlan`
owns the plan/state pair with atomic swap semantics for serving.

The incremental path is *provably equivalent* to replanning from
scratch: the patched plan is decision-identical to a fresh
:func:`~repro.reorder.build_plan` on the mutated matrix, so multiplies
are bitwise-equal (asserted by ``tests/property/test_streaming_properties.py``).
See ``docs/STREAMING.md`` for the delta model, the drift heuristics and
the invalidation rules.
"""

from repro.streaming.delta import DeltaBatch, split_into_deltas
from repro.streaming.incremental import (
    DEFAULT_MAX_DIRTY_FRACTION,
    PlanUpdate,
    StreamingPlan,
    UpdateReport,
    apply_delta,
)
from repro.streaming.state import LshState

__all__ = [
    "DeltaBatch",
    "split_into_deltas",
    "LshState",
    "apply_delta",
    "PlanUpdate",
    "UpdateReport",
    "StreamingPlan",
    "DEFAULT_MAX_DIRTY_FRACTION",
]
