"""Incremental replanning: patch an :class:`~repro.reorder.ExecutionPlan`.

:func:`apply_delta` is the streaming counterpart of
:func:`repro.reorder.build_plan`: given the current plan, a
:class:`~repro.streaming.DeltaBatch` and the plan's config, it produces
the plan for the mutated matrix — *patching* the expensive stages
(dirty-row MinHash, dirty-row re-bucketing, clustering reuse, dirty-panel
retiling) when the drift heuristics allow, and falling back to a full
:func:`~repro.reorder.build_plan` when they do not.

Equivalence contract (asserted by ``tests/property``): the returned plan
is **decision-identical** to a from-scratch build on the mutated matrix —
same ``row_order``, same tiling, same ``remainder_order``, same stats —
and therefore its multiplies are bitwise-equal to the fresh plan's.
Every patched stage either recomputes exactly what the from-scratch
pipeline computes (dirty rows only), or reuses a cached result under a
condition that provably implies the from-scratch result is unchanged
(see the stage helpers below).

Drift heuristics (the paper's §4 gates, re-run on the delta):

* more than ``max_dirty_fraction`` of the rows changed — the patch would
  approach full-build cost, replan;
* the round-1 gate decision flips on the mutated matrix — the pipeline
  shape changes, replan;
* the old plan is degraded (settled below the ``full`` ladder rung) —
  patching would freeze the degradation, replan to recover;
* round 1 is active but no :class:`~repro.streaming.LshState` was
  provided — nothing to patch from, replan (and return a fresh state so
  the next update can patch).

Torn-plan safety: all work happens on locals; the input plan, state and
matrix are never mutated.  A fault injected at the ``streaming.update``
site (or a deadline expiry) aborts the update with the old plan fully
intact; under a :class:`~repro.resilience.ResiliencePolicy` the patch
degrades to a laddered full replan instead, recording provenance.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

import numpy as np

from repro.aspt.panels import PanelSpec
from repro.aspt.tiles import TiledMatrix, _split_by_mask, tile_matrix
from repro.clustering.hierarchical import cluster_rows
from repro.errors import TimeoutExceeded
from repro.observability.metrics import METRICS
from repro.observability.tracing import span
from repro.reorder.heuristics import should_reorder_round1, should_reorder_round2
from repro.reorder.pipeline import (
    ExecutionPlan,
    PlanStats,
    ReorderConfig,
    attach_backend,
    build_plan,
)
from repro.resilience.faults import fault_point
from repro.similarity.jaccard import average_consecutive_similarity
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import permute_csr_rows
from repro.streaming.delta import DeltaBatch
from repro.streaming.state import LshState
from repro.util.arrayops import rank_of_permutation
from repro.util.timing import timed

__all__ = ["UpdateReport", "PlanUpdate", "apply_delta", "StreamingPlan"]

#: Replan instead of patching when more than this fraction of rows is
#: dirty or new.  At 5% dirt (the acceptance workload) patches win by a
#: wide margin; beyond ~25% the patch converges on full-build cost while
#: adding bookkeeping, so drift past the default goes to ``build_plan``.
DEFAULT_MAX_DIRTY_FRACTION = 0.25

#: Give up on panel-local retiling when more than this fraction of panels
#: is dirty — the per-panel bookkeeping would exceed one vectorised pass.
_MAX_DIRTY_PANEL_FRACTION = 0.5


@dataclass(frozen=True)
class UpdateReport:
    """What one :func:`apply_delta` call did and why.

    ``mode`` is ``"patched"`` (incremental path) or ``"replanned"``
    (full :func:`~repro.reorder.build_plan`); ``reason`` explains a
    replan (or degradation) in one sentence and is ``None`` for a clean
    patch.  ``provenance`` mirrors the returned plan's ladder provenance
    so degraded updates are auditable from the report alone.
    """

    mode: str
    reason: str | None
    n_dirty_rows: int
    n_new_rows: int
    dirty_fraction: float
    reused_clustering: bool = False
    panels_retiled: int | None = None
    pairs_rescored: int = 0
    seconds: dict = field(default_factory=dict, repr=False)
    provenance: tuple = ()
    timestamp: float = 0.0

    @property
    def patched(self) -> bool:
        """True when the incremental path produced the plan."""
        return self.mode == "patched"


@dataclass(frozen=True)
class PlanUpdate:
    """Result bundle of :func:`apply_delta`.

    Attributes
    ----------
    plan:
        The plan for the mutated matrix (``plan.original`` *is* the
        mutated matrix; ``plan.revision`` is the input revision + 1).
    state:
        The matching :class:`~repro.streaming.LshState` for the next
        update (``None`` when round 1 is off and no state is needed).
    report:
        The :class:`UpdateReport` describing what happened.
    """

    plan: ExecutionPlan
    state: LshState | None
    report: UpdateReport

    @property
    def matrix(self) -> CSRMatrix:
        """The mutated matrix the new plan serves."""
        return self.plan.original


def _patch_decision(plan, dirty_fraction, max_dirty_fraction, state, gate1,
                    do_round1):
    """The drift heuristics: ``None`` to patch, else the replan reason."""
    if plan.degraded:
        return "old plan is degraded; replanning to recover the full rung"
    if dirty_fraction > max_dirty_fraction:
        return (
            f"dirty fraction {dirty_fraction:.3f} exceeds "
            f"max_dirty_fraction={max_dirty_fraction}"
        )
    if do_round1 != plan.stats.round1_applied:
        return (
            f"round-1 gate flipped ({plan.stats.round1_applied} -> {do_round1}, "
            f"indicator {gate1.indicator:.4f})"
        )
    if do_round1 and state is None:
        return "round 1 active but no incremental LSH state available"
    return None


def _pattern_unchanged(csr_new, csr_old) -> bool:
    """True when the delta touched values only (identical sparsity pattern).

    Every reordering/tiling decision in the pipeline is a function of the
    pattern alone (MinHash reads column supports, all similarity measures
    are set overlaps, tiling counts non-zeros), so a pattern-preserving
    delta lets the patch reuse clustering, the tiling mask and the
    round-2 order wholesale — the from-scratch build would reproduce each
    of them bit for bit.
    """
    return (
        csr_new.shape == csr_old.shape
        and csr_new.nnz == csr_old.nnz
        and np.array_equal(csr_new.rowptr, csr_old.rowptr)
        and np.array_equal(csr_new.colidx, csr_old.colidx)
    )


def _retile(plan, reordered, row_order, dirty, n_new, config):
    """Tile ``reordered``, recomputing only dirty panels when possible.

    Returns ``(tiled, panels_retiled)`` where ``panels_retiled`` is
    ``None`` when the full :func:`~repro.aspt.tile_matrix` ran.  The
    panel-local path is exact because the dense/sparse decision is a
    per-(panel, column) count: a panel none of whose rows changed has
    bit-identical content at (possibly) shifted offsets, so its per-entry
    dense mask and dense-column list are carried over unchanged, and the
    final split runs through the same ``_split_by_mask`` the full tiler
    uses.  Falls back to the full tiler when the row order changed, rows
    were appended, ``max_dense_cols`` is set (per-panel demotion is not
    replicated here), the matrix is degenerate, or too many panels are
    dirty.
    """
    h = config.panel_height
    old = plan.tiled

    def full():
        return tile_matrix(
            reordered, h, config.dense_threshold,
            max_dense_cols=config.max_dense_cols,
        )

    if (
        n_new
        or config.max_dense_cols is not None
        or reordered.nnz == 0
        or old.original.nnz == 0
        or reordered.n_rows == 0
        or h != old.spec.panel_height
        or config.dense_threshold != old.dense_threshold
        or not np.array_equal(row_order, plan.row_order)
    ):
        return full(), None

    spec = PanelSpec(reordered.n_rows, h)
    inverse = rank_of_permutation(row_order)
    dirty_panels = np.unique(inverse[dirty] // h) if dirty.size else dirty
    if dirty_panels.size > _MAX_DIRTY_PANEL_FRACTION * spec.n_panels:
        return full(), None

    is_dirty_panel = np.zeros(spec.n_panels, dtype=bool)
    is_dirty_panel[dirty_panels] = True

    # Per-entry dense mask of the *old* reordered matrix, recovered from
    # the dense part (both key streams are strictly increasing).
    stride = np.int64(reordered.n_cols + 1)
    old_keys = old.original.row_ids() * stride + old.original.colidx
    dense_keys = old.dense_part.row_ids() * stride + old.dense_part.colidx
    old_mask = np.zeros(old.original.nnz, dtype=bool)
    old_mask[np.searchsorted(old_keys, dense_keys)] = True

    # Recompute the per-(panel, column) counts of dirty panels only.
    row_ids = reordered.row_ids()
    panel_ids = row_ids // h
    mask = np.empty(reordered.nnz, dtype=bool)
    in_dirty = is_dirty_panel[panel_ids]
    if in_dirty.any():
        key = panel_ids[in_dirty] * np.int64(reordered.n_cols) + reordered.colidx[
            in_dirty
        ]
        uniq, inv, counts = np.unique(key, return_inverse=True, return_counts=True)
        dense_key_mask = counts >= config.dense_threshold
        mask[in_dirty] = dense_key_mask[inv]
    else:
        uniq = np.empty(0, dtype=np.int64)
        dense_key_mask = np.empty(0, dtype=bool)

    # Clean panels: copy the old mask slice (content-identical rows, the
    # offsets may have shifted when dirty panels changed their nnz).
    panel_dense_cols = list(old.panel_dense_cols)
    uniq_panels = uniq // reordered.n_cols
    for p in range(spec.n_panels):
        lo = p * h
        hi = min(lo + h, reordered.n_rows)
        new_s, new_e = reordered.rowptr[lo], reordered.rowptr[hi]
        if not is_dirty_panel[p]:
            old_s, old_e = old.original.rowptr[lo], old.original.rowptr[hi]
            mask[new_s:new_e] = old_mask[old_s:old_e]
        else:
            in_p = dense_key_mask & (uniq_panels == p)
            panel_dense_cols[p] = (uniq[in_p] % reordered.n_cols).astype(np.int64)

    tiled = TiledMatrix(
        original=reordered,
        dense_part=_split_by_mask(reordered, mask),
        sparse_part=_split_by_mask(reordered, ~mask),
        spec=spec,
        dense_threshold=config.dense_threshold,
        panel_dense_cols=panel_dense_cols,
    )
    METRICS.counter(
        "streaming.panels_retiled", "panels recomputed by panel-local retiling"
    ).inc(int(dirty_panels.size))
    return tiled, int(dirty_panels.size)


def _patch(plan, csr_new, dirty, n_new, state, config, times, deadline,
           gate1, do_round1):
    """The incremental pipeline; mirrors ``_build_plan_uncached`` stage
    by stage (same gates, same stats), patching where provably exact."""
    lsh = config.lsh_index()
    pattern_unchanged = _pattern_unchanged(csr_new, plan.original)
    n_cand1 = 0
    pairs_rescored = 0
    reused_clustering = False
    state_new = None
    if do_round1:
        with span("streaming.lsh"), timed(times, "lsh"):  # reprolint: disable=RD602 -- `times` holds timing telemetry only; an aborted patch replans and the partial stage entries never reach a returned plan
            if pattern_unchanged:
                # Signatures, band keys, pairs and scores are all pattern
                # functions: recomputing the dirty rows would reproduce
                # the old state bit for bit, so keep it as-is.
                state_new, pairs_rescored = state, 0
            else:
                state_new, pairs_rescored = state.update(  # reprolint: disable=RD602 -- LshState.update is pure (returns a new state, never mutates self); the name just matches the dict.update mutation heuristic
                    csr_new, dirty, n_new, config, deadline=deadline
                )
        pairs, sims = state_new.pairs, state_new.sims
        n_cand1 = int(pairs.shape[0])
        fault_point("streaming.update")
        # Clustering reuse: with the pair set, the scores, the row count
        # and every pair endpoint unchanged, cluster_rows reads nothing
        # that changed (it touches row *patterns* only for pair rows), so
        # the old permutation IS the from-scratch answer.  A value-only
        # delta qualifies even when dirty rows sit in pairs: cluster_rows
        # never reads values.
        in_pairs = (
            np.isin(dirty, pairs.ravel()).any() if dirty.size and n_cand1 else False
        )
        if (
            n_new == 0
            and (pattern_unchanged or not in_pairs)
            and np.array_equal(pairs, state.pairs)
            and np.array_equal(sims, state.sims)
        ):
            row_order = plan.row_order
            reused_clustering = True
        else:
            with span("streaming.cluster", pairs=n_cand1), timed(times, "cluster"):  # reprolint: disable=RD602 -- timing telemetry only; see the lsh-stage note
                clustering = cluster_rows(
                    csr_new,
                    pairs,
                    sims,
                    threshold_size=config.threshold_size,
                    measure=config.measure,
                    deadline=deadline,
                )
            row_order = clustering.order
        with timed(times, "permute"):  # reprolint: disable=RD602 -- timing telemetry only; see the lsh-stage note
            reordered = permute_csr_rows(csr_new, row_order)
    else:
        row_order = np.arange(csr_new.n_rows, dtype=np.int64)
        reordered = csr_new

    if deadline is not None:
        deadline.check("tile")
    fault_point("streaming.update")
    with span("streaming.tile"), timed(times, "tile"):
        # A value-only delta leaves every panel's pattern intact: retile
        # with no dirty rows so each panel takes the copy-old-mask path.
        tile_dirty = np.empty(0, dtype=np.int64) if pattern_unchanged else dirty
        tiled, panels_retiled = _retile(
            plan, reordered, row_order, tile_dirty, n_new, config
        )

    # Round 2 is recomputed outright unless the delta was value-only: the
    # remainder is usually small (or the gate skips it), so there is
    # nothing worth patching — and a full recompute is exact by
    # construction.
    if deadline is not None:
        deadline.check("sim2")
    with span("streaming.round2"), timed(times, "round2"):
        if pattern_unchanged and np.array_equal(row_order, plan.row_order):
            # Value-only fast path: the remainder carries the exact old
            # pattern, and the round-2 gate, candidate pairs, clustering
            # and similarity stats are all pattern functions — reuse the
            # old decisions wholesale.
            do_round2 = plan.stats.round2_applied
            n_cand2 = plan.stats.n_candidates_round2
            remainder_order = plan.remainder_order
            remainder = (
                permute_csr_rows(tiled.sparse_part, remainder_order)
                if do_round2
                else tiled.sparse_part
            )
            avg_sim_before = plan.stats.avg_sim_before
            avg_sim_after = plan.stats.avg_sim_after
        else:
            gate2 = should_reorder_round2(
                tiled.sparse_part, skip_above=config.avg_sim_skip
            )
            do_round2 = (
                gate2.reorder if config.force_round2 is None else config.force_round2
            )
            n_cand2 = 0
            if do_round2 and tiled.sparse_part.nnz:
                pairs2, sims2 = lsh.candidate_pairs(
                    tiled.sparse_part, deadline=deadline
                )
                n_cand2 = int(pairs2.shape[0])
                clustering2 = cluster_rows(
                    tiled.sparse_part,
                    pairs2,
                    sims2,
                    threshold_size=config.threshold_size,
                    measure=config.measure,
                    deadline=deadline,
                )
                remainder_order = clustering2.order
                remainder = permute_csr_rows(tiled.sparse_part, remainder_order)
            else:
                do_round2 = False
                remainder_order = np.arange(csr_new.n_rows, dtype=np.int64)
                remainder = tiled.sparse_part
            avg_sim_before = gate2.indicator
            avg_sim_after = average_consecutive_similarity(remainder)

    stats = PlanStats(
        dense_ratio_before=gate1.indicator,
        dense_ratio_after=tiled.dense_ratio,
        avg_sim_before=avg_sim_before,
        avg_sim_after=avg_sim_after,
        round1_applied=bool(do_round1),
        round2_applied=bool(do_round2),
        n_candidates_round1=n_cand1,
        n_candidates_round2=n_cand2,
    )
    patched = ExecutionPlan(
        original=csr_new,
        row_order=row_order,
        tiled=tiled,
        remainder=remainder,
        remainder_order=remainder_order,
        stats=stats,
        preprocess_seconds=times,
        revision=plan.revision + 1,
    )
    return attach_backend(patched, config), state_new, reused_clustering, (
        panels_retiled,
        pairs_rescored,
    )


def apply_delta(
    plan: ExecutionPlan,
    delta: DeltaBatch,
    config: ReorderConfig | None = None,
    *,
    state: LshState | None = None,
    cache=None,
    resilience=None,
    max_dirty_fraction: float = DEFAULT_MAX_DIRTY_FRACTION,
) -> PlanUpdate:
    """Produce the plan for ``plan.original`` + ``delta`` (see module docs).

    Parameters
    ----------
    plan:
        The current plan.  ``config`` must be the config it was built
        with — the patch reuses the plan's decisions under that
        assumption.
    delta:
        The batch of mutations to absorb.
    state:
        The :class:`~repro.streaming.LshState` matching ``plan``
        (required for the patch path whenever round 1 is active; without
        it the update replans and returns a fresh state).
    cache:
        Optional :class:`repro.planstore.PlanStore`; replans go through
        it, and successful patches write their decisions through it under
        the mutated matrix's content key, so a later cold build of the
        same matrix is a warm hit.
    resilience:
        Optional :class:`repro.resilience.ResiliencePolicy`.  The patch
        runs under a per-update deadline; a timeout (or injected
        ``streaming.update`` fault) degrades to a laddered full replan
        with provenance instead of failing.
    max_dirty_fraction:
        Patch-vs-replan threshold on ``(dirty + new) / total`` rows.

    Returns
    -------
    PlanUpdate
    """
    config = config or ReorderConfig()
    times: dict[str, float] = {}
    with span(
        "streaming.apply_delta",
        rows=plan.original.n_rows,
        entries=delta.n_entries,
        new_rows=delta.new_rows,
    ), timed(times, "total"):
        m_old = plan.original.n_rows
        with timed(times, "delta_apply"):
            csr_new = delta.apply_to(plan.original)
        dirty = delta.dirty_existing_rows(m_old)
        n_new = delta.new_rows
        dirty_fraction = (dirty.size + n_new) / max(1, csr_new.n_rows)

        gate1 = should_reorder_round1(
            csr_new,
            config.panel_height,
            config.dense_threshold,
            skip_above=config.dense_ratio_skip,
        )
        do_round1 = (
            gate1.reorder if config.force_round1 is None else config.force_round1
        )
        reason = _patch_decision(
            plan, dirty_fraction, max_dirty_fraction, state, gate1, do_round1
        )

        plan_new = None
        state_new = None
        reused_clustering = False
        panels_retiled: int | None = None
        pairs_rescored = 0
        mode = "patched"
        if reason is None:
            deadline = (
                resilience.new_deadline() if resilience is not None else None
            )
            try:
                fault_point("streaming.update")
                plan_new, state_new, reused_clustering, (
                    panels_retiled,
                    pairs_rescored,
                ) = _patch(
                    plan, csr_new, dirty, n_new, state, config, times,
                    deadline, gate1, do_round1,
                )
            except (TimeoutExceeded, MemoryError) as exc:
                if resilience is None or not resilience.ladder:
                    raise
                reason = f"patch aborted ({type(exc).__name__}: {exc}); replanned"

        if plan_new is None:
            mode = "replanned"
            with span("streaming.replan"), timed(times, "replan"):
                plan_new = build_plan(
                    csr_new, config, cache=cache, resilience=resilience
                )
                plan_new = replace(plan_new, revision=plan.revision + 1)
                if plan_new.stats.round1_applied and not plan_new.degraded:
                    state_new = LshState.build(csr_new, config)
        elif cache is not None:
            # A clean patch is a full-quality plan: write its decisions
            # through the content-addressed store so the mutated matrix
            # is a warm hit for everyone else.
            from repro.planstore.decisions import PlanDecisions

            cache.put(cache.key_for(csr_new, config), PlanDecisions.from_plan(plan_new))

    if mode == "patched":
        METRICS.counter(
            "streaming.updates_patched",
            "streaming updates absorbed by the incremental patch path",
        ).inc()
    else:
        METRICS.counter(
            "streaming.updates_replanned",
            "streaming updates that fell back to a full replan",
        ).inc()
    METRICS.counter(
        "streaming.rows_dirty", "pre-existing rows dirtied by applied deltas"
    ).inc(int(dirty.size))
    report = UpdateReport(
        mode=mode,
        reason=reason,
        n_dirty_rows=int(dirty.size),
        n_new_rows=n_new,
        dirty_fraction=float(dirty_fraction),
        reused_clustering=reused_clustering,
        panels_retiled=panels_retiled,
        pairs_rescored=pairs_rescored,
        seconds=times,
        provenance=plan_new.provenance,
        timestamp=delta.timestamp,
    )
    return PlanUpdate(plan=plan_new, state=state_new, report=report)


class StreamingPlan:
    """A plan that follows its matrix through a stream of deltas.

    Owns the ``(plan, state, matrix)`` triple and swaps it *atomically*
    under a lock at the end of each successful update — a reader (or a
    failed update) always observes a complete, consistent plan, never a
    torn one.  This is the object the serving layer holds per tenant.

    Parameters mirror :func:`apply_delta`; the initial plan is built
    through :func:`repro.reorder.build_plan` with the same cache and
    resilience policy.
    """

    def __init__(
        self,
        csr: CSRMatrix,
        config: ReorderConfig | None = None,
        *,
        cache=None,
        resilience=None,
        max_dirty_fraction: float = DEFAULT_MAX_DIRTY_FRACTION,
    ) -> None:
        self.config = config or ReorderConfig()
        self.cache = cache
        self.resilience = resilience
        self.max_dirty_fraction = float(max_dirty_fraction)
        self._lock = threading.Lock()
        self._plan = build_plan(
            csr, self.config, cache=cache, resilience=resilience
        )
        self._state = (
            LshState.build(csr, self.config)
            if self._plan.stats.round1_applied and not self._plan.degraded
            else None
        )
        self.reports: list[UpdateReport] = []

    @property
    def plan(self) -> ExecutionPlan:
        """The current plan (atomic snapshot)."""
        with self._lock:
            return self._plan

    @property
    def matrix(self) -> CSRMatrix:
        """The current matrix (the plan's ``original``)."""
        return self.plan.original

    @property
    def revision(self) -> int:
        """Revision counter of the current plan (0 = never updated)."""
        return self.plan.revision

    def apply(self, delta: DeltaBatch) -> UpdateReport:
        """Absorb one delta; returns its :class:`UpdateReport`.

        Updates are serialised; a failed update (propagated fault with no
        resilience policy, deadline expiry with the ladder disabled)
        leaves the previous plan installed and fully usable.
        """
        with self._lock:
            update = apply_delta(
                self._plan,
                delta,
                self.config,
                state=self._state,
                cache=self.cache,
                resilience=self.resilience,
                max_dirty_fraction=self.max_dirty_fraction,
            )
            # Commit point: nothing above mutated self.
            self._plan = update.plan
            self._state = update.state
            self.reports.append(update.report)
            return update.report
