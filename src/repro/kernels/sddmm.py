"""SDDMM: sampled dense–dense matrix multiplication (paper Alg. 2).

For each stored entry ``(i, c)`` of the sparse matrix ``S``,

``O.value[j] = (sum_k Y[i, k] * X[c, k]) * S.value[j]``

i.e. the output has ``S``'s sparsity pattern, each entry being the inner
product of a row of ``Y`` and a row of ``X`` scaled by the sampling value.
(With ``X`` stored row-major this is the ``Y @ X.T`` product sampled at
``S``'s non-zeros — the formulation used in ALS/collaborative filtering.)
"""

from __future__ import annotations

import numpy as np

from repro.contracts import checked, validates
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_dense
from repro.util.workspace import as_workspace

__all__ = ["sddmm", "sddmm_rowwise_reference"]


@checked(validates("csr"))
def sddmm_rowwise_reference(csr: CSRMatrix, X: np.ndarray, Y: np.ndarray) -> CSRMatrix:
    """Paper Alg. 2, literal loops.  The oracle for :func:`sddmm`."""
    X = check_dense("X", X, rows=csr.n_cols)
    Y = check_dense("Y", Y, rows=csr.n_rows, cols=X.shape[1])
    K = X.shape[1]
    out = np.zeros(csr.nnz, dtype=np.float64)  # reprolint: disable=RD105 -- reference oracle: mirrors the paper's pseudocode verbatim, allocation behaviour is part of what it checks
    for i in range(csr.n_rows):
        for j in range(csr.rowptr[i], csr.rowptr[i + 1]):
            acc = 0.0
            c = csr.colidx[j]
            for k in range(K):
                acc += Y[i, k] * X[c, k]
            out[j] = acc * csr.values[j]
    return csr.with_values(out)


@checked(validates("csr"))
def sddmm(
    csr: CSRMatrix,
    X: np.ndarray,
    Y: np.ndarray,
    *,
    workspace=None,
    backend: str | None = None,
) -> CSRMatrix:
    """Vectorised SDDMM.

    Parameters
    ----------
    csr:
        Sampling matrix ``S`` of shape ``(M, N)``.
    X:
        Dense operand of shape ``(N, K)`` (indexed by ``S``'s columns).
        Floating dtypes are preserved (no up-cast copy).
    Y:
        Dense operand of shape ``(M, K)`` (indexed by ``S``'s rows).
    workspace:
        Optional :class:`~repro.util.workspace.WorkspacePool` or
        :class:`~repro.util.workspace.Workspace`; the two ``nnz * K``
        gather buffers are leased from it instead of allocated.  The dot
        products themselves are computed by the same ``einsum`` in the
        same dtype, so results are bitwise identical either way.
    backend:
        Optional compiled-backend name (:mod:`repro.kernels.backends`);
        degrades back to this reference path when unavailable.

    Returns
    -------
    CSRMatrix
        Same pattern as ``csr`` with values
        ``(Y[i] . X[c]) * csr.value`` per stored entry.
    """
    if backend is not None and backend != "numpy":
        from repro.kernels.backends import resolve_backend

        resolved, _ = resolve_backend(backend)
        if resolved.name != "numpy":
            return resolved.sddmm(csr, X, Y, workspace=workspace)
    X = check_dense("X", X, rows=csr.n_cols, dtype=None)
    Y = check_dense("Y", Y, rows=csr.n_rows, cols=X.shape[1], dtype=None)
    if csr.nnz == 0:
        return csr.copy()
    rows = csr.row_ids()
    ws, owned = as_workspace(workspace)
    try:
        if ws is None:
            dots = np.einsum("pk,pk->p", Y[rows], X[csr.colidx])
        else:
            K = X.shape[1]
            y_gathered = ws.scratch((csr.nnz, K), dtype=Y.dtype)
            np.take(Y, rows, axis=0, out=y_gathered)
            x_gathered = ws.scratch((csr.nnz, K), dtype=X.dtype)
            np.take(X, csr.colidx, axis=0, out=x_gathered)
            # No out= here: einsum's accumulation dtype must stay the
            # operands' common dtype for bitwise identity, and the (nnz,)
            # result escapes into the returned matrix anyway.
            dots = np.einsum("pk,pk->p", y_gathered, x_gathered)
    finally:
        if owned:
            ws.release()
    return csr.with_values(dots * csr.values)
