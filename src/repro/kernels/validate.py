"""Cross-validation helpers for the kernels.

Used by the test suite, the examples, and the experiment runner's optional
``--verify`` mode: every production kernel is checked against a dense NumPy
computation of the same contraction.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["assert_spmm_correct", "assert_sddmm_correct"]


def assert_spmm_correct(
    csr: CSRMatrix, X: np.ndarray, Y: np.ndarray, *, rtol=1e-10, atol=1e-9
) -> None:
    """Assert ``Y == csr @ X`` against the dense oracle.

    Raises ``AssertionError`` with a maximum-deviation message on mismatch.
    """
    expected = csr.to_dense() @ np.asarray(X, dtype=np.float64)
    np.testing.assert_allclose(
        Y,
        expected,
        rtol=rtol,
        atol=atol,
        err_msg="SpMM kernel output deviates from the dense oracle",
    )


def assert_sddmm_correct(
    csr: CSRMatrix,
    X: np.ndarray,
    Y: np.ndarray,
    result: CSRMatrix,
    *,
    rtol=1e-10,
    atol=1e-9,
) -> None:
    """Assert ``result == (Y @ X.T) * csr`` sampled at ``csr``'s pattern."""
    if not result.same_pattern(csr):
        raise AssertionError("SDDMM result pattern differs from the sampling matrix")
    dense = (np.asarray(Y, dtype=np.float64) @ np.asarray(X, dtype=np.float64).T)
    rows = csr.row_ids()
    expected = dense[rows, csr.colidx] * csr.values
    np.testing.assert_allclose(
        result.values,
        expected,
        rtol=rtol,
        atol=atol,
        err_msg="SDDMM kernel values deviate from the dense oracle",
    )
