"""SpMM over an ASpT :class:`~repro.aspt.TiledMatrix`.

The dense tiles are computed the way the GPU kernel computes them: per
panel, the dense columns' rows of ``X`` are first gathered into a compact
*panel buffer* (the functional analogue of staging into shared memory) and
the panel's tile non-zeros index that buffer through remapped local column
ids.  The sparse remainder goes through the row-wise kernel.  Because the
tiler partitions the non-zeros exactly, the sum of the two phases equals
plain SpMM on the original matrix — asserted in the test suite against the
Alg. 1 oracle.

Like the row-wise kernels, ``spmm_tiled`` accepts ``workspace=`` so the
panel gather buffers and products scratch are leased from a
:class:`~repro.util.workspace.WorkspacePool` instead of allocated per
panel; the panel *metadata* (local column ids, segment starts) can also be
precomputed once via :func:`panel_plan` — that is what
:class:`repro.kernels.KernelSession` pins for the repeated-multiply case.
"""

from __future__ import annotations

import numpy as np

from repro.aspt.tiles import TiledMatrix
from repro.contracts import checked, invokes
from repro.kernels.spmm import spmm
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_dense, check_out
from repro.util.workspace import Workspace, as_workspace

__all__ = ["spmm_tiled", "panel_plan"]


def panel_plan(
    dense_part: CSRMatrix,
    panel_dense_cols: list[np.ndarray],
    panel_height: int,
) -> list[tuple]:
    """Precompute the per-panel gather metadata of the dense phase.

    For every non-trivial panel: ``(cols, lo, p0, vals, local, starts,
    nonempty)`` where ``local`` remaps the panel's column ids into the
    gathered buffer and ``starts``/``nonempty`` drive the segment sum.
    Computing this per call costs a ``searchsorted`` per panel; a
    :class:`~repro.kernels.KernelSession` computes it once.
    """
    rowptr = dense_part.rowptr
    plan: list[tuple] = []
    for p, cols in enumerate(panel_dense_cols):
        if cols.size == 0:
            continue
        lo = p * panel_height
        hi = min(lo + panel_height, dense_part.n_rows)
        p0, p1 = rowptr[lo], rowptr[hi]
        if p0 == p1:
            continue
        local = np.searchsorted(cols, dense_part.colidx[p0:p1])
        vals = dense_part.values[p0:p1]
        lengths = np.diff(rowptr[lo : hi + 1])
        nonempty = np.flatnonzero(lengths > 0)
        starts = (rowptr[lo:hi][nonempty] - p0).astype(np.int64)
        plan.append((cols, int(lo), vals, local, starts, nonempty))
    return plan


def _panel_dense_spmm(
    dense_part: CSRMatrix,
    X: np.ndarray,
    panel_dense_cols: list[np.ndarray],
    panel_height: int,
    out: np.ndarray,
    *,
    workspace: Workspace | None = None,
    panels: list[tuple] | None = None,
) -> None:
    """Accumulate the dense-tile contribution into ``out``.

    Mirrors the shared-memory kernel: gather, remap, multiply per panel.
    With ``workspace`` the buffers are leased; with ``panels`` (from
    :func:`panel_plan`) the per-panel metadata is not recomputed.  Both
    paths produce bitwise-identical accumulations.
    """
    if panels is None:
        panels = panel_plan(dense_part, panel_dense_cols, panel_height)
    ws = workspace
    K = X.shape[1]
    for cols, lo, vals, local, starts, nonempty in panels:
        if ws is None:
            buffer = X[cols]  # "shared memory" stage: one load per dense column
            products = vals[:, None] * buffer[local]
            out[lo + nonempty] += np.add.reduceat(products, starts, axis=0)
            continue
        buffer = ws.scratch((cols.size, K), dtype=X.dtype)
        np.take(X, cols, axis=0, out=buffer)
        gathered = ws.scratch((local.size, K), dtype=X.dtype)
        np.take(buffer, local, axis=0, out=gathered)
        products = ws.scratch((local.size, K))
        np.multiply(vals[:, None], gathered, out=products)
        sums = ws.scratch((nonempty.size, K))
        np.add.reduceat(products, starts, axis=0, out=sums)
        out[lo + nonempty] += sums


@checked(invokes("validate_structure", "tiled"))
def spmm_tiled(
    tiled: TiledMatrix,
    X: np.ndarray,
    out: np.ndarray | None = None,
    *,
    workspace=None,
    backend: str | None = None,
) -> np.ndarray:
    """Two-phase ASpT SpMM: dense tiles through panel buffers, remainder
    row-wise.

    Parameters
    ----------
    tiled:
        Output of :func:`repro.aspt.tile_matrix`.
    X:
        Dense operand of shape ``(n_cols, K)``.  Floating dtypes are
        preserved (no up-cast copy of a large ``K``-wide operand).
    out:
        Optional preallocated ``(n_rows, K)`` float64 output
        (overwritten, not accumulated).  Must be writable in place
        (float64, C-contiguous) — see
        :func:`~repro.util.validation.check_out`.
    workspace:
        Optional pool/workspace for the panel buffers, products scratch
        and the remainder kernel's scratch (bitwise-identical results).
    backend:
        Optional compiled-backend name (:mod:`repro.kernels.backends`):
        the sparse remainder then runs the backend's compiled SpMM (the
        dense phase is the shared panel-gather path on every backend).
        Degrades back to this reference path when unavailable.

    Returns
    -------
    numpy.ndarray
        ``Y = tiled.original @ X`` of shape ``(n_rows, K)``.
    """
    if backend is not None and backend != "numpy":
        from repro.kernels.backends import resolve_backend

        resolved, _ = resolve_backend(backend)
        if resolved.name != "numpy":
            return resolved.spmm_tiled(tiled, X, out, workspace=workspace)
    X = check_dense("X", X, rows=tiled.original.n_cols, dtype=None)
    K = X.shape[1]
    if out is None:
        Y = np.zeros((tiled.original.n_rows, K), dtype=np.float64)  # reprolint: disable=RD501 -- out= buffers are float64 by contract (check_out rejects anything else), so both branches agree
    else:
        Y = check_out("out", out, rows=tiled.original.n_rows, cols=K)
        Y[:] = 0.0
    ws, owned = as_workspace(workspace)
    try:
        _panel_dense_spmm(
            tiled.dense_part,
            X,
            tiled.panel_dense_cols,
            tiled.spec.panel_height,
            Y,
            workspace=ws,
        )
        if tiled.sparse_part.nnz:
            if ws is None:
                Y += spmm(tiled.sparse_part, X)
            else:
                remainder = ws.scratch((tiled.original.n_rows, K))
                spmm(tiled.sparse_part, X, out=remainder, workspace=ws)
                np.add(Y, remainder, out=Y)
    finally:
        if owned:
            ws.release()
    return Y
