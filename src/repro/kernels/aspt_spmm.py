"""SpMM over an ASpT :class:`~repro.aspt.TiledMatrix`.

The dense tiles are computed the way the GPU kernel computes them: per
panel, the dense columns' rows of ``X`` are first gathered into a compact
*panel buffer* (the functional analogue of staging into shared memory) and
the panel's tile non-zeros index that buffer through remapped local column
ids.  The sparse remainder goes through the row-wise kernel.  Because the
tiler partitions the non-zeros exactly, the sum of the two phases equals
plain SpMM on the original matrix — asserted in the test suite against the
Alg. 1 oracle.
"""

from __future__ import annotations

import numpy as np

from repro.aspt.tiles import TiledMatrix
from repro.contracts import checked, invokes
from repro.kernels.spmm import spmm
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_dense

__all__ = ["spmm_tiled"]


def _panel_dense_spmm(
    dense_part: CSRMatrix,
    X: np.ndarray,
    panel_dense_cols: list[np.ndarray],
    panel_height: int,
    out: np.ndarray,
) -> None:
    """Accumulate the dense-tile contribution into ``out``.

    Mirrors the shared-memory kernel: gather, remap, multiply per panel.
    """
    rowptr = dense_part.rowptr
    for p, cols in enumerate(panel_dense_cols):
        if cols.size == 0:
            continue
        lo = p * panel_height
        hi = min(lo + panel_height, dense_part.n_rows)
        p0, p1 = rowptr[lo], rowptr[hi]
        if p0 == p1:
            continue
        buffer = X[cols]  # "shared memory" stage: one load per dense column
        local = np.searchsorted(cols, dense_part.colidx[p0:p1])
        vals = dense_part.values[p0:p1]
        products = vals[:, None] * buffer[local]
        lengths = np.diff(rowptr[lo : hi + 1])
        nonempty = np.flatnonzero(lengths > 0)
        starts = (rowptr[lo:hi][nonempty] - p0).astype(np.int64)
        out[lo + nonempty] += np.add.reduceat(products, starts, axis=0)


@checked(invokes("validate_structure", "tiled"))
def spmm_tiled(tiled: TiledMatrix, X: np.ndarray) -> np.ndarray:
    """Two-phase ASpT SpMM: dense tiles through panel buffers, remainder
    row-wise.

    Parameters
    ----------
    tiled:
        Output of :func:`repro.aspt.tile_matrix`.
    X:
        Dense operand of shape ``(n_cols, K)``.  Floating dtypes are
        preserved (no up-cast copy of a large ``K``-wide operand).

    Returns
    -------
    numpy.ndarray
        ``Y = tiled.original @ X`` of shape ``(n_rows, K)``.
    """
    X = check_dense("X", X, rows=tiled.original.n_cols, dtype=None)
    Y = np.zeros((tiled.original.n_rows, X.shape[1]), dtype=np.float64)
    _panel_dense_spmm(
        tiled.dense_part, X, tiled.panel_dense_cols, tiled.spec.panel_height, Y
    )
    if tiled.sparse_part.nnz:
        Y += spmm(tiled.sparse_part, X)
    return Y
