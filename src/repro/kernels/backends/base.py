"""Backend abstraction: specialization specs, compiled artifacts, base class.

A *backend* turns a :class:`SpecializationSpec` — the structural facts
about one matrix that are worth baking into code (K-chunk width, whether
any row is empty, panel height, dense-ratio bucket) — into a
:class:`CompiledKernel` whose ``fn`` executes one kernel.  The contract
every backend is held to (by the cross-backend differential test matrix,
``tests/unit/test_backend_differential.py``) is the paper's "same bits,
faster" claim:

* the ``numpy`` and ``codegen`` backends must be **bitwise identical** to
  the reference kernels — they run the same ufunc sequence in the same
  operand order, so every intermediate rounds identically;
* a true machine-code backend (``numba``) must match within **1 ULP** per
  element: its sequential row-wise accumulation performs the same adds in
  the same order as ``np.add.reduceat`` (an accumulator initialised to
  ``0.0`` is exact: ``0.0 + x == x``), but the compiler may contract
  multiply-adds differently.

Compiled-fn calling conventions (what ``CompiledKernel.fn`` receives):

=========  ==================================================================
kernel      signature and contract
=========  ==================================================================
``spmm``    ``fn(state, X, out, ws)`` — *fully overwrites* ``out`` with
            ``state.csr @ X`` (including zeroing empty rows);
            ``state`` is a :class:`repro.kernels.state.CsrState`.
``spmv``    ``fn(csr, x, ws) -> y`` — returns a fresh ``(n_rows,)`` float64.
``sddmm``   ``fn(csr, X, Y, ws) -> values`` — returns the new ``(nnz,)``
            values array (``(Y[i] . X[c]) * csr.value`` per entry).
=========  ==================================================================

``ws`` is always workspace-shaped (a leased
:class:`~repro.util.workspace.Workspace` or a
:class:`~repro.util.workspace.DirectWorkspace`); compiled kernels never
allocate scratch directly, so pooled and direct invocations stay
bitwise identical.  ``spmm_tiled`` is a *hybrid* on every backend: the
dense-tile phase is the shared panel-gather implementation and only the
sparse remainder goes through the backend's compiled SpMM — the dense
phase's access pattern is already the staged "shared memory" form the
paper's GPU kernel uses, so it is the remainder row-wise loop that
benefits from compilation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.kernels.state import DEFAULT_CHUNK_K, CsrState
from repro.sparse.csr import CSRMatrix
from repro.util.hashing import stable_digest
from repro.util.validation import check_dense, check_out
from repro.util.workspace import DirectWorkspace, as_workspace

__all__ = [
    "SpecializationSpec",
    "CompiledKernel",
    "KernelBackend",
    "specialize",
]


def _dtype_token(dtype) -> str:
    """Canonical dtype name for specialization keys (``float64``, ...)."""
    return np.dtype(dtype).name


@dataclass(frozen=True)
class SpecializationSpec:
    """The structural facts one compiled kernel is specialized to.

    Every field participates in :meth:`fingerprint`, which keys the
    process-global artifact cache and — via the descriptor stored next to
    the plan in the plan store — the content-addressed plan key, so a
    warm session never recompiles an artifact it already holds.

    Parameters
    ----------
    kernel:
        ``"spmm"`` / ``"spmv"`` / ``"sddmm"``.
    dtype:
        Operand dtype token (``"float64"``, ``"float32"``) or ``"any"``
        when the generated code is dtype-generic.  SDDMM kernels are
        dtype-specific: the dot-product accumulator must stay in the
        operands' common dtype for bitwise identity with ``einsum``.
    chunk_k:
        K-chunk width baked into the SpMM inner loop.
    nonempty_rows:
        When true, the matrix has no empty rows and the generated SpMM
        elides the empty-row zeroing epilogue.
    k_hint:
        Expected operand width (``0`` = unknown).  Advisory — kernels
        must stay correct for any K — but part of the cache key so a
        plan built for a known serving width gets its own artifact.
    panel_height:
        ASpT panel height for tiled targets (``0`` for plain CSR).
    dense_bucket:
        Dense-phase nnz share in tenths (``0``–``10``) for tiled
        targets, ``-1`` for plain CSR.  Bucketed so near-identical
        splits share one artifact.
    """

    kernel: str = "spmm"
    dtype: str = "any"
    chunk_k: int = DEFAULT_CHUNK_K
    nonempty_rows: bool = False
    k_hint: int = 0
    panel_height: int = 0
    dense_bucket: int = -1

    def fingerprint(self) -> str:
        """Stable hex digest over every field (sorted ``name=repr``)."""
        fields = dataclasses.asdict(self)
        parts = [f"{k}={fields[k]!r}".encode("utf-8") for k in sorted(fields)]
        return stable_digest(*parts)

    def to_descriptor(self) -> tuple[str, ...]:
        """Serialise as ``("kernel=spmm", "dtype=any", ...)`` strings.

        The flat string form survives the plan store's ``.npz`` round
        trip and stays human-readable in ``repro doctor`` output.
        """
        fields = dataclasses.asdict(self)
        return tuple(f"{k}={fields[k]}" for k in sorted(fields))

    @classmethod
    def from_descriptor(cls, parts) -> "SpecializationSpec":
        """Parse :meth:`to_descriptor` output (unknown keys are ignored)."""
        known = {f.name: f.type for f in dataclasses.fields(cls)}
        kwargs: dict = {}
        for part in parts:
            key, sep, value = str(part).partition("=")
            if not sep or key not in known:
                continue
            if key in ("kernel", "dtype"):
                kwargs[key] = value
            elif key == "nonempty_rows":
                kwargs[key] = value == "True"
            else:
                kwargs[key] = int(value)
        return cls(**kwargs)


@dataclass(frozen=True)
class CompiledKernel:
    """One backend-compiled kernel plus its provenance.

    ``fn`` follows the calling convention for ``spec.kernel`` documented
    in the module docstring.  ``source`` is the generated source text for
    backends that generate code (``codegen``, ``numba``) — kept for
    debuggability and asserted on in the test suite — and ``None`` for
    the ``numpy`` reference.  ``compile_seconds`` is the measured wall
    clock of the ``backend.compile`` span that produced this artifact.
    """

    backend: str
    spec: SpecializationSpec
    fn: object
    source: str | None = None
    compile_seconds: float = 0.0

    def descriptor(self) -> tuple[str, ...]:
        """Flat string form: backend + spec fields + spec fingerprint."""
        return (
            f"backend={self.backend}",
            *self.spec.to_descriptor(),
            f"fingerprint={self.spec.fingerprint()}",
        )


def specialize(
    target,
    *,
    kernel: str = "spmm",
    dtype: str = "any",
    chunk_k: int = DEFAULT_CHUNK_K,
    k_hint: int = 0,
) -> SpecializationSpec:
    """Derive the :class:`SpecializationSpec` for a kernel on ``target``.

    ``target`` may be a :class:`~repro.sparse.CSRMatrix` or
    :class:`~repro.kernels.state.CsrState` (plain row-wise structure), an
    ASpT ``TiledMatrix`` (panel height and dense-ratio bucket enter the
    key) or an ``ExecutionPlan`` (specialized to its tiled form; the
    remainder is handled conservatively, so ``nonempty_rows`` stays
    false).  Detection is structural rather than by class to keep this
    module import-light.
    """
    if isinstance(target, CsrState):
        csr = target.csr
        nonempty = not target.any_empty and csr.nnz > 0
        return SpecializationSpec(
            kernel=kernel,
            dtype=dtype,
            chunk_k=int(chunk_k),
            nonempty_rows=nonempty,
            k_hint=int(k_hint),
        )
    if isinstance(target, CSRMatrix):
        nonempty = bool(target.nnz > 0 and (target.row_lengths() > 0).all())
        return SpecializationSpec(
            kernel=kernel,
            dtype=dtype,
            chunk_k=int(chunk_k),
            nonempty_rows=nonempty,
            k_hint=int(k_hint),
        )
    tiled = getattr(target, "tiled", target)
    spec_obj = getattr(tiled, "spec", None)
    original = getattr(tiled, "original", None)
    dense_part = getattr(tiled, "dense_part", None)
    if spec_obj is None or original is None or dense_part is None:
        raise TypeError(
            "specialize() target must be a CSRMatrix, CsrState, TiledMatrix "
            f"or ExecutionPlan, got {type(target).__name__}"
        )
    dense_bucket = int(10 * dense_part.nnz / original.nnz) if original.nnz else 0
    return SpecializationSpec(
        kernel=kernel,
        dtype=dtype,
        chunk_k=int(chunk_k),
        nonempty_rows=False,
        k_hint=int(k_hint),
        panel_height=int(spec_obj.panel_height),
        dense_bucket=dense_bucket,
    )


class KernelBackend:
    """Base class for compiled kernel backends.

    Subclasses set :attr:`name`, implement :meth:`compile` and (for
    optional dependencies) override :meth:`available` /
    :meth:`unavailable_reason`.  The one-shot kernel methods here are
    shared: they validate operands exactly like the reference kernels,
    fetch the matching compiled artifact through the process-global
    cache (:func:`repro.kernels.backends.compiled_artifact`) and invoke
    it through a workspace, so every backend automatically supports
    ``workspace=`` pooling and the strict ``out=`` contract.
    """

    #: Registry name; subclasses must override.
    name = "abstract"

    # -- availability ---------------------------------------------------
    @classmethod
    def available(cls) -> bool:
        """Whether this backend can compile in the current environment."""
        return True

    @classmethod
    def unavailable_reason(cls) -> str:
        """Human-readable reason when :meth:`available` is false."""
        return ""

    # -- compilation ----------------------------------------------------
    def compile(self, spec: SpecializationSpec) -> CompiledKernel:
        """Build the :class:`CompiledKernel` for ``spec``.

        Raises :class:`repro.errors.BackendUnavailable` when the backend
        cannot compile here (missing dependency, injected fault).  Called
        through :func:`repro.kernels.backends.compiled_artifact`, which
        adds caching, the ``backend.compile`` tracing span, the fault
        point and the ``kernels.backend_compile`` counter — never call it
        directly from kernel paths.
        """
        raise NotImplementedError

    def artifact(self, spec: SpecializationSpec) -> CompiledKernel:
        """The cached compiled artifact for ``spec`` (compiling on miss)."""
        from repro.kernels.backends.registry import compiled_artifact

        return compiled_artifact(self, spec)

    # -- one-shot kernel surface ----------------------------------------
    def spmm(
        self,
        csr: CSRMatrix,
        X: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
        state: CsrState | None = None,
    ) -> np.ndarray:
        """``csr @ X`` through this backend's compiled SpMM.

        Matches :func:`repro.kernels.spmm` bitwise (``numpy`` /
        ``codegen``) or within 1 ULP (``numba``).  ``state`` lets a
        long-lived caller (:class:`~repro.kernels.KernelSession`) reuse a
        prebuilt :class:`~repro.kernels.state.CsrState`.
        """
        X = check_dense("X", X, rows=csr.n_cols, dtype=None)
        K = X.shape[1]
        if out is None:
            out = np.empty((csr.n_rows, K), dtype=np.float64)  # reprolint: disable=RD501 -- out= buffers are float64 by contract (check_out rejects anything else), so both branches agree
        else:
            out = check_out("out", out, rows=csr.n_rows, cols=K)
        if state is None:
            state = CsrState(csr)
        spec = specialize(state, kernel="spmm", dtype=_dtype_token(X.dtype))
        fn = self.artifact(spec).fn
        ws, owned = as_workspace(workspace)
        try:
            fn(state, X, out, ws if ws is not None else DirectWorkspace())
        finally:
            if owned:
                ws.release()
        return out

    def spmv(self, csr: CSRMatrix, x: np.ndarray, *, workspace=None) -> np.ndarray:
        """``csr @ x`` through this backend (matches :func:`repro.kernels.spmv`)."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 1 or x.size != csr.n_cols:
            raise ValueError(
                f"x must be 1-D of length {csr.n_cols}, got shape {x.shape}"
            )
        if csr.nnz == 0:
            return np.zeros(csr.n_rows, dtype=np.float64)
        spec = specialize(csr, kernel="spmv", dtype="float64")
        fn = self.artifact(spec).fn
        ws, owned = as_workspace(workspace)
        try:
            return fn(csr, x, ws if ws is not None else DirectWorkspace())
        finally:
            if owned:
                ws.release()

    def sddmm(
        self, csr: CSRMatrix, X: np.ndarray, Y: np.ndarray, *, workspace=None
    ) -> CSRMatrix:
        """Sampled dense–dense multiply (matches :func:`repro.kernels.sddmm`)."""
        X = check_dense("X", X, rows=csr.n_cols, dtype=None)
        Y = check_dense("Y", Y, rows=csr.n_rows, cols=X.shape[1], dtype=None)
        if csr.nnz == 0:
            return csr.copy()
        # The dot-product accumulator must live in the operands' common
        # dtype (einsum semantics), so the artifact is dtype-specific.
        common = _dtype_token(np.result_type(X.dtype, Y.dtype))
        spec = specialize(csr, kernel="sddmm", dtype=common)
        fn = self.artifact(spec).fn
        ws, owned = as_workspace(workspace)
        try:
            values = fn(csr, X, Y, ws if ws is not None else DirectWorkspace())
        finally:
            if owned:
                ws.release()
        return csr.with_values(values)

    def spmm_tiled(
        self,
        tiled,
        X: np.ndarray,
        out: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> np.ndarray:
        """Two-phase ASpT SpMM (matches :func:`repro.kernels.spmm_tiled`).

        Hybrid on every backend: the dense-tile phase runs the shared
        panel-gather implementation; the sparse remainder goes through
        :meth:`spmm` (this backend's compiled row-wise kernel).
        """
        from repro.kernels.aspt_spmm import _panel_dense_spmm

        X = check_dense("X", X, rows=tiled.original.n_cols, dtype=None)
        K = X.shape[1]
        if out is None:
            Y = np.zeros((tiled.original.n_rows, K), dtype=np.float64)  # reprolint: disable=RD501 -- out= buffers are float64 by contract (check_out rejects anything else), so both branches agree
        else:
            Y = check_out("out", out, rows=tiled.original.n_rows, cols=K)
            Y[:] = 0.0
        ws, owned = as_workspace(workspace)
        try:
            _panel_dense_spmm(
                tiled.dense_part,
                X,
                tiled.panel_dense_cols,
                tiled.spec.panel_height,
                Y,
                workspace=ws,
            )
            if tiled.sparse_part.nnz:
                direct = ws if ws is not None else DirectWorkspace()
                remainder = direct.scratch((tiled.original.n_rows, K))
                self.spmm(tiled.sparse_part, X, out=remainder, workspace=ws)
                np.add(Y, remainder, out=Y)
        finally:
            if owned:
                ws.release()
        return Y
