"""The ``numba`` backend: true machine-code JIT, never a hard dependency.

When :mod:`numba` is importable, ``compile`` renders a row-wise kernel
specialized to the :class:`~repro.kernels.backends.SpecializationSpec`
(K-chunk blocking baked in as literals; SDDMM accumulator dtype chosen
per spec) and wraps it in ``numba.njit`` with ``fastmath=False`` and
row-parallel ``prange``.  When numba is absent — the default environment
and the default CI lane — the backend stays *registered* but reports
itself unavailable; :func:`~repro.kernels.backends.resolve_backend`
degrades such requests to the ``numpy`` reference, which is exactly what
the chaos and degradation tests lock down.  The dedicated ``backends``
CI lane installs numba and runs the full differential matrix against it.

Numerical contract — why 1 ULP and not bitwise
----------------------------------------------
The generated loops perform, per output element, the same multiplies and
the same left-to-right adds as ``np.add.reduceat`` (the accumulator
starts at ``0.0`` and ``0.0 + x == x`` exactly), and ``fastmath=False``
forbids reassociation.  The one freedom left to LLVM is contracting a
``multiply + add`` into a fused multiply-add, which rounds once instead
of twice — hence the differential matrix holds numba output to within
1 ULP of the numpy reference per element, and bitwise where it happens
to agree.  Parallelising over rows is safe: each output row is written
by exactly one iteration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BackendUnavailable
from repro.kernels.backends.base import CompiledKernel, KernelBackend, SpecializationSpec

__all__ = ["NumbaBackend"]

_IMPORT_ERROR: str | None = None


def _import_numba():
    """The :mod:`numba` module, or ``None`` (reason in ``_IMPORT_ERROR``)."""
    global _IMPORT_ERROR
    try:
        import numba
    except Exception as exc:  # reprolint: disable=RD106 -- import probe: any failure (ImportError, broken install, llvmlite ABI mismatch) just means the backend is unavailable here
        _IMPORT_ERROR = f"{type(exc).__name__}: {exc}"
        return None
    return numba


# Row-parallel CSR SpMM with the K-chunk width baked in.  Per (i, k) the
# j-loop adds in ascending order — the reduceat order — so the result
# matches the reference to 1 ULP (bitwise absent FMA contraction).
_SPMM_TEMPLATE = """\
def kernel(rowptr, colidx, values, X, out):
    n_rows = rowptr.shape[0] - 1
    K = X.shape[1]
    for i in prange(n_rows):
        lo = rowptr[i]
        hi = rowptr[i + 1]
        for k0 in range(0, K, {chunk_k}):
            k1 = min(k0 + {chunk_k}, K)
            for k in range(k0, k1):
                out[i, k] = 0.0
            for j in range(lo, hi):
                v = values[j]
                c = colidx[j]
                for k in range(k0, k1):
                    out[i, k] += v * X[c, k]
"""

_SPMV_TEMPLATE = """\
def kernel(rowptr, colidx, values, x, y):
    n_rows = rowptr.shape[0] - 1
    for i in prange(n_rows):
        acc = 0.0
        for j in range(rowptr[i], rowptr[i + 1]):
            acc += values[j] * x[colidx[j]]
        y[i] = acc
"""

# The accumulator literal pins the einsum accumulation dtype: float32
# operands accumulate in float32, everything else in float64.
_SDDMM_TEMPLATE = """\
def kernel(rowptr, colidx, values, X, Y, out):
    n_rows = rowptr.shape[0] - 1
    K = X.shape[1]
    for i in prange(n_rows):
        for j in range(rowptr[i], rowptr[i + 1]):
            c = colidx[j]
            acc = {acc_init}
            for k in range(K):
                acc += Y[i, k] * X[c, k]
            out[j] = acc * values[j]
"""


def render_source(spec: SpecializationSpec) -> str:
    """The specialized (pre-``njit``) kernel source for ``spec``."""
    if spec.kernel == "spmm":
        return _SPMM_TEMPLATE.format(chunk_k=max(1, spec.chunk_k))
    if spec.kernel == "spmv":
        return _SPMV_TEMPLATE
    if spec.kernel == "sddmm":
        acc_init = "np.float32(0.0)" if spec.dtype == "float32" else "0.0"
        return _SDDMM_TEMPLATE.format(acc_init=acc_init)
    raise ValueError(f"unknown kernel {spec.kernel!r}")


class NumbaBackend(KernelBackend):
    """JIT backend compiling specialized row-wise kernels via numba."""

    name = "numba"

    @classmethod
    def available(cls) -> bool:
        """True when ``import numba`` succeeds in this environment."""
        return _import_numba() is not None

    @classmethod
    def unavailable_reason(cls) -> str:
        """Why numba cannot be used here, or ``""`` when it can."""
        if _import_numba() is not None:
            return ""
        return f"numba is not importable ({_IMPORT_ERROR})"

    def compile(self, spec: SpecializationSpec) -> CompiledKernel:
        """``numba.njit``-compile the rendered kernel (``BackendUnavailable`` without numba)."""
        numba = _import_numba()
        if numba is None:
            raise BackendUnavailable(
                f"cannot compile {spec.kernel!r}: numba is not importable "
                f"({_IMPORT_ERROR})"
            )
        source = render_source(spec)
        filename = f"<repro-numba-{spec.fingerprint()[:12]}>"
        namespace: dict = {"np": np, "prange": numba.prange}
        exec(compile(source, filename, "exec"), namespace)  # noqa: S102
        raw = numba.njit(namespace["kernel"], fastmath=False, parallel=True)
        fn = _wrap(spec.kernel, raw)
        return CompiledKernel(backend=self.name, spec=spec, fn=fn, source=source)


def _wrap(kernel: str, raw):
    """Adapt a raw array-level numba kernel to the compiled-fn convention."""
    if kernel == "spmm":

        def spmm_fn(state, X, out, ws):
            raw(state.csr.rowptr, state.colidx, state.values, X, out)

        return spmm_fn
    if kernel == "spmv":

        def spmv_fn(csr, x, ws):
            y = np.empty(csr.n_rows, dtype=np.float64)
            raw(csr.rowptr, csr.colidx, csr.values, x, y)
            return y

        return spmv_fn

    def sddmm_fn(csr, X, Y, ws):
        out = np.empty(csr.nnz, dtype=np.float64)  # reprolint: disable=RD105 -- the values array escapes into the returned matrix; it must be caller-owned, never pooled scratch
        raw(csr.rowptr, csr.colidx, csr.values, X, Y, out)
        return out

    return sddmm_fn
