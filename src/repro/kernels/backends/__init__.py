"""Pluggable compiled kernel backends with per-matrix specialization.

The paper's speedups come from tailoring execution to each matrix's
structure; this package carries that idea past strategy selection into
*code* selection.  A :class:`SpecializationSpec` captures the structural
facts worth baking into a kernel (K-chunk width, empty-row presence,
panel height, dense-ratio bucket); a backend compiles it into a
:class:`CompiledKernel`; the registry caches artifacts process-wide by
``(backend, spec fingerprint)`` so warm sessions never recompile.

Three backends are always registered:

``numpy``
    The reference.  Always available; every degradation lands here.
``codegen``
    ``exec``-compiled Python/NumPy source specialized per spec — always
    available, bitwise identical to ``numpy`` by construction, and
    severalfold faster than the one-shot kernels at serving widths
    (the committed ``BENCH_kernels.json`` cell).
``numba``
    True machine-code JIT when :mod:`numba` is importable; registered
    but unavailable otherwise, so requesting it degrades gracefully to
    ``numpy`` instead of failing (never a hard dependency).

Selection is by name — ``ReorderConfig.backend``, ``repro run/bench
--backend``, ``KernelSession(backend=...)`` — and always resolves
through :func:`resolve_backend`, which records degradations in the
plan's ``backend_provenance``, the ``kernels.backend_fallback`` counter
and a :class:`~repro.errors.DegradedExecution` warning.  See
``docs/BACKENDS.md`` for the full contract.
"""

from __future__ import annotations

from repro.kernels.backends.base import (
    CompiledKernel,
    KernelBackend,
    SpecializationSpec,
    specialize,
)
from repro.kernels.backends.codegen_backend import CodegenBackend
from repro.kernels.backends.numba_backend import NumbaBackend
from repro.kernels.backends.numpy_backend import NumpyBackend
from repro.kernels.backends.registry import (
    available_backends,
    backend_names,
    compiled_artifact,
    get_backend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "SpecializationSpec",
    "CompiledKernel",
    "KernelBackend",
    "NumpyBackend",
    "CodegenBackend",
    "NumbaBackend",
    "specialize",
    "register_backend",
    "get_backend",
    "backend_names",
    "available_backends",
    "resolve_backend",
    "compiled_artifact",
]

# Canonical registrations, numpy first (the degradation target must
# exist before any resolve_backend call can run).
register_backend(NumpyBackend())
register_backend(CodegenBackend())
register_backend(NumbaBackend())
