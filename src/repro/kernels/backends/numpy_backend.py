"""The ``numpy`` reference backend — always available, defines "correct".

Its "compiled" artifacts are plain closures over the exact operation
sequences of the reference kernels: the K-chunked
:meth:`repro.kernels.state.CsrState.multiply` for SpMM, the pooled
gather/multiply/segment-sum for SpMV, the gather + ``einsum`` for SDDMM.
Every other backend's output is asserted against these artifacts by the
differential test matrix, and every degradation path (unavailable
backend, injected compile fault) lands here.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.backends.base import CompiledKernel, KernelBackend, SpecializationSpec
from repro.util.arrayops import segment_sum

__all__ = ["NumpyBackend"]


def _spmm_fn(spec: SpecializationSpec):
    chunk_k = spec.chunk_k

    def spmm_kernel(state, X, out, ws):
        state.multiply(X, out, ws, chunk_k)

    return spmm_kernel


def _spmv_kernel(csr, x, ws):
    products = ws.scratch(csr.nnz)
    np.take(x, csr.colidx, out=products)
    np.multiply(csr.values, products, out=products)
    return segment_sum(products, csr.rowptr)


def _sddmm_kernel(csr, X, Y, ws):
    K = X.shape[1]
    rows = csr.row_ids()
    y_gathered = ws.scratch((csr.nnz, K), dtype=Y.dtype)
    np.take(Y, rows, axis=0, out=y_gathered)
    x_gathered = ws.scratch((csr.nnz, K), dtype=X.dtype)
    np.take(X, csr.colidx, axis=0, out=x_gathered)
    # einsum's accumulation dtype stays the operands' common dtype —
    # the bitwise contract every backend's SDDMM is held to.
    dots = np.einsum("pk,pk->p", y_gathered, x_gathered)
    return dots * csr.values


class NumpyBackend(KernelBackend):
    """Reference backend: the existing NumPy kernels behind the artifact API."""

    name = "numpy"

    def compile(self, spec: SpecializationSpec) -> CompiledKernel:
        """Wrap the reference kernel for ``spec`` — no real compilation."""
        if spec.kernel == "spmm":
            fn = _spmm_fn(spec)
        elif spec.kernel == "spmv":
            fn = _spmv_kernel
        elif spec.kernel == "sddmm":
            fn = _sddmm_kernel
        else:
            raise ValueError(f"unknown kernel {spec.kernel!r}")
        return CompiledKernel(backend=self.name, spec=spec, fn=fn)
