"""Backend registry, resolution with graceful degradation, artifact cache.

The registry always contains every *known* backend — including ones
whose dependency is missing in this environment — so configuration
validation, ``repro backends`` listings and plan provenance can name
them.  *Availability* is a separate, per-environment question:
:func:`resolve_backend` answers it at use time, degrading to the
``numpy`` reference (with a ``kernels.backend_fallback`` count, a
:class:`~repro.errors.DegradedExecution` warning and a provenance entry)
instead of failing — an optional JIT is never a hard dependency.

Compilation goes through :func:`compiled_artifact`, the single choke
point that adds what every backend's ``compile`` needs: the
process-global artifact cache keyed by ``(backend, spec fingerprint)``
(warm sessions and repeated plan builds never recompile), the
``backend.compile`` tracing span, measured compile seconds, the
``kernels.backend_compile`` counter and the ``backend.compile`` fault
point that the chaos suite uses to prove compile failures degrade
cleanly.
"""

from __future__ import annotations

import dataclasses
import threading
import warnings

from repro.errors import BackendUnavailable, ConfigError, DegradedExecution
from repro.kernels.backends.base import CompiledKernel, KernelBackend, SpecializationSpec
from repro.observability.metrics import METRICS
from repro.observability.tracing import span
from repro.resilience.faults import fault_point
from repro.util.log import get_logger
from repro.util.timing import timed

__all__ = [
    "register_backend",
    "get_backend",
    "backend_names",
    "available_backends",
    "resolve_backend",
    "compiled_artifact",
]

_log = get_logger("kernels.backends")

# Canonical declarations of the backend instruments, so the catalogue is
# complete even before any backend compiles or degrades.
METRICS.counter("kernels.backend_compile", "compiled-kernel artifacts built (cache misses)")
METRICS.counter("kernels.backend_fallback", "backend requests degraded to the numpy reference")

#: Registered backends in registration order (numpy first — it is the
#: reference everything degrades to and must always be present).
_REGISTRY: dict[str, KernelBackend] = {}

#: Process-global compiled-artifact cache: (backend name, spec
#: fingerprint) -> CompiledKernel.  Compilation is idempotent, so a
#: racing double-compile is tolerated and the first insert wins.
_ARTIFACTS: dict[tuple[str, str], CompiledKernel] = {}
_ARTIFACTS_LOCK = threading.Lock()


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add ``backend`` to the registry (idempotent per name)."""
    name = backend.name
    if not name or name == "abstract":
        raise ConfigError(f"backend {type(backend).__name__} has no usable name")
    _REGISTRY[name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """Every *known* backend name, available here or not."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """The subset of :func:`backend_names` usable in this environment."""
    return tuple(name for name, b in _REGISTRY.items() if b.available())


def get_backend(name: str) -> KernelBackend:
    """The registered backend called ``name`` (availability not checked).

    Raises :class:`repro.errors.ConfigError` for unknown names — a typo
    in ``--backend`` should fail loudly, not degrade silently.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown kernel backend {name!r}; registered: "
            f"{', '.join(backend_names())}"
        ) from None


def resolve_backend(
    name: str | None, *, warn: bool = True
) -> tuple[KernelBackend, tuple[str, ...]]:
    """Resolve a requested backend name, degrading to ``numpy`` if needed.

    Returns ``(backend, provenance)`` where ``provenance`` is empty when
    the request was honoured and otherwise a one-entry tuple recording
    the degradation (stored in ``ExecutionPlan.backend_provenance``).
    ``None`` means "no preference" and resolves to ``numpy`` directly.
    Unknown names raise :class:`~repro.errors.ConfigError`; *known but
    unavailable* names degrade — that asymmetry is the whole point of
    keeping unavailable backends registered.
    """
    if name is None or name == "numpy":
        return _REGISTRY["numpy"], ()
    backend = get_backend(name)
    if backend.available():
        return backend, ()
    reason = backend.unavailable_reason() or "backend unavailable"
    METRICS.counter(
        "kernels.backend_fallback", "backend requests degraded to the numpy reference"
    ).inc()
    provenance = (f"backend:{name}->numpy: {reason}",)
    _log.warning("backend %s unavailable (%s); using numpy", name, reason)
    if warn:
        warnings.warn(
            f"kernel backend {name!r} unavailable ({reason}); "
            "falling back to the numpy reference (results unchanged)",
            DegradedExecution,
            stacklevel=2,
        )
    return _REGISTRY["numpy"], provenance


def compiled_artifact(
    backend: KernelBackend, spec: SpecializationSpec
) -> CompiledKernel:
    """The cached :class:`CompiledKernel` for ``(backend, spec)``.

    Cache misses compile under the ``backend.compile`` tracing span with
    wall-clock attribution and the ``kernels.backend_compile`` counter;
    hits are a dict lookup, which is what lets warm sessions (and plan
    materialisation against an already-seen fingerprint) skip
    recompilation entirely.  Propagates
    :class:`~repro.errors.BackendUnavailable` from the backend or from
    the ``backend.compile`` fault point — degradable callers catch it.
    """
    key = (backend.name, spec.fingerprint())
    with _ARTIFACTS_LOCK:
        cached = _ARTIFACTS.get(key)
    if cached is not None:
        return cached
    times: dict[str, float] = {}
    with span("backend.compile", backend=backend.name, kernel=spec.kernel):
        fault_point("backend.compile")
        if not backend.available():
            raise BackendUnavailable(
                f"backend {backend.name!r} cannot compile here: "
                f"{backend.unavailable_reason() or 'unavailable'}"
            )
        with timed(times, "compile"):
            kernel = backend.compile(spec)
    kernel = dataclasses.replace(kernel, compile_seconds=times["compile"])
    METRICS.counter(
        "kernels.backend_compile", "compiled-kernel artifacts built (cache misses)"
    ).inc()
    with _ARTIFACTS_LOCK:
        return _ARTIFACTS.setdefault(key, kernel)
