"""The ``codegen`` backend: per-matrix Python/NumPy source specialization.

Always available (it depends only on the interpreter), this backend is
the repo's stand-in for the paper's JIT story on machines without a real
JIT: at compile time it renders kernel *source text* specialized to the
:class:`~repro.kernels.backends.SpecializationSpec` — the K-chunk width
is baked in as a literal, the empty-row epilogue is elided entirely when
the matrix has no empty rows — and ``exec``-compiles it into a closure.

Correctness is by construction: the rendered source performs the exact
ufunc sequence of the ``numpy`` reference in the same operand order, so
the output is **bitwise identical** (asserted with
``np.testing.assert_array_equal`` in the differential matrix, not a
tolerance).  What changes is the *strategy*: the specialized SpMM runs
the transposed K-chunked schedule, which on the bench-gate workload is
severalfold faster than the one-shot gather of the plain
:func:`repro.kernels.spmm` at serving widths — that measured cell is
what ``BENCH_kernels.json`` commits.

The generated source is kept on :attr:`CompiledKernel.source` so tests
can assert the specialization really happened (chunk literal present,
epilogue present/absent) and ``repro doctor`` can show it.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.backends.base import CompiledKernel, KernelBackend, SpecializationSpec

__all__ = ["CodegenBackend"]

_SPMM_TEMPLATE = """\
def kernel(state, X, out, ws):
    csr = state.csr
    K = X.shape[1]
    if csr.nnz == 0 or K == 0:
        out[:] = 0.0
        return
    XT = ws.scratch((K, csr.n_cols))
    np.copyto(XT, X.T)
    chunk = min({chunk_k}, K)
    gathered = ws.scratch((chunk, csr.nnz))
    sums = ws.scratch((chunk, state.nonempty.size))
    for k0 in range(0, K, chunk):
        k1 = min(k0 + chunk, K)
        g = gathered[: k1 - k0]
        s = sums[: k1 - k0]
        np.take(XT[k0:k1], state.colidx, axis=1, out=g)
        np.multiply(state.values_row, g, out=g)
        np.add.reduceat(g, state.starts, axis=1, out=s)
        out[state.nonempty, k0:k1] = s.T
{empty_epilogue}"""

_EMPTY_EPILOGUE = """\
    if state.any_empty:
        out[state.empty] = 0.0
"""

# nonempty_rows=True: the epilogue is elided — the specialization the
# differential tests assert by inspecting CompiledKernel.source.
_NONEMPTY_EPILOGUE = ""

_SPMV_TEMPLATE = """\
def kernel(csr, x, ws):
    products = ws.scratch(csr.nnz)
    np.take(x, csr.colidx, out=products)
    np.multiply(csr.values, products, out=products)
    return segment_sum(products, csr.rowptr)
"""

_SDDMM_TEMPLATE = """\
def kernel(csr, X, Y, ws):
    K = X.shape[1]
    rows = csr.row_ids()
    y_gathered = ws.scratch((csr.nnz, K), dtype=Y.dtype)
    np.take(Y, rows, axis=0, out=y_gathered)
    x_gathered = ws.scratch((csr.nnz, K), dtype=X.dtype)
    np.take(X, csr.colidx, axis=0, out=x_gathered)
    dots = np.einsum("pk,pk->p", y_gathered, x_gathered)
    return dots * csr.values
"""


def render_source(spec: SpecializationSpec) -> str:
    """The specialized kernel source for ``spec`` (public for the tests)."""
    if spec.kernel == "spmm":
        epilogue = _NONEMPTY_EPILOGUE if spec.nonempty_rows else _EMPTY_EPILOGUE
        return _SPMM_TEMPLATE.format(chunk_k=spec.chunk_k, empty_epilogue=epilogue)
    if spec.kernel == "spmv":
        return _SPMV_TEMPLATE
    if spec.kernel == "sddmm":
        return _SDDMM_TEMPLATE
    raise ValueError(f"unknown kernel {spec.kernel!r}")


class CodegenBackend(KernelBackend):
    """Specialized-source backend: render, ``exec``-compile, close over."""

    name = "codegen"

    def compile(self, spec: SpecializationSpec) -> CompiledKernel:
        """Render Python source specialized to ``spec`` and ``exec``-compile it."""
        from repro.util.arrayops import segment_sum

        source = render_source(spec)
        filename = f"<repro-codegen-{spec.fingerprint()[:12]}>"
        namespace: dict = {"np": np, "segment_sum": segment_sum}
        exec(compile(source, filename, "exec"), namespace)  # noqa: S102
        return CompiledKernel(
            backend=self.name, spec=spec, fn=namespace["kernel"], source=source
        )
