"""Pinned per-matrix CSR state for the transposed K-chunked multiply.

:class:`CsrState` hoists everything about a CSR matrix that the
steady-state SpMM recomputes per call in the one-shot kernels — the
non-empty row set, the segment starts, contiguous copies of the index and
value arrays.  It is shared by :class:`repro.kernels.KernelSession`
(which historically owned it as a private class) and by the compiled
kernel backends (:mod:`repro.kernels.backends`), whose generated kernels
take a ``CsrState`` so one artifact serves both the one-shot and the
session path.

The reference algorithm lives in :meth:`CsrState.multiply`: stage the
dense operand transposed, then gather / scale / segment-sum one K-chunk
at a time along the contiguous axis.  Despite the different loop
structure the result is **bitwise identical** to
:func:`repro.kernels.spmm` — per output element the same products are
accumulated left-to-right in the same order, and float32 operands are
widened by an exact cast before the same float64 multiply.  Every
compiled backend is held to this same bit pattern (or, for true JIT
machine code, to within 1 ULP) by the cross-backend differential tests.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util.workspace import Workspace

__all__ = ["DEFAULT_CHUNK_K", "CsrState"]

#: Default K-chunk width.  64 float64 columns x a few tens of thousands of
#: non-zeros keeps the active gather chunk inside the last-level cache on
#: typical hardware while amortising the per-chunk Python overhead.
DEFAULT_CHUNK_K = 64


class CsrState:
    """Pinned per-matrix state for the transposed K-chunked CSR multiply."""

    __slots__ = (
        "csr",
        "colidx",
        "values",
        "values_row",
        "starts",
        "nonempty",
        "empty",
        "any_empty",
    )

    def __init__(self, csr: CSRMatrix) -> None:
        self.csr = csr
        self.colidx = np.ascontiguousarray(csr.colidx)
        #: 1-D contiguous values (what row-wise compiled kernels index).
        self.values = np.ascontiguousarray(csr.values)
        #: The same values broadcast-shaped for the chunked multiply.
        self.values_row = self.values[None, :]
        lengths = csr.row_lengths()
        self.empty = lengths == 0
        self.any_empty = bool(self.empty.any())
        self.nonempty = np.flatnonzero(lengths > 0)
        self.starts = np.ascontiguousarray(csr.rowptr[:-1][self.nonempty])

    def multiply(self, X: np.ndarray, out: np.ndarray, ws: Workspace, chunk_k: int) -> None:
        """``out = csr @ X``, bitwise identical to :func:`repro.kernels.spmm`."""
        csr = self.csr
        K = X.shape[1]
        if csr.nnz == 0 or K == 0:
            out[:] = 0.0
            return
        # Stage the operand transposed: one exact-cast copy, after which
        # every access pattern below streams along contiguous memory.
        XT = ws.scratch((K, csr.n_cols))
        np.copyto(XT, X.T)
        chunk = max(1, min(chunk_k, K))
        gathered = ws.scratch((chunk, csr.nnz))
        sums = ws.scratch((chunk, self.nonempty.size))
        for k0 in range(0, K, chunk):
            k1 = min(k0 + chunk, K)
            g = gathered[: k1 - k0]
            s = sums[: k1 - k0]
            np.take(XT[k0:k1], self.colidx, axis=1, out=g)
            np.multiply(self.values_row, g, out=g)
            np.add.reduceat(g, self.starts, axis=1, out=s)
            out[self.nonempty, k0:k1] = s.T
        if self.any_empty:
            out[self.empty] = 0.0
