"""SpMM: multiply a sparse matrix by a dense matrix (paper Alg. 1).

``Y[i, k] = sum_j S.value[j] * X[S.colidx[j], k]`` over the non-zeros ``j``
of row ``i``.

Three implementations with one contract:

* :func:`spmm_rowwise_reference` — the paper's Alg. 1 verbatim, Python
  loops; the oracle for everything else (use only on small matrices).
* :func:`spmm` — vectorised: one gather of ``X`` rows, one broadcast
  multiply, one ``reduceat`` segment sum.  Peak scratch memory is
  ``nnz * K`` floats.
* :func:`spmm_blocked` — the same algorithm applied to row blocks, capping
  scratch memory for large inputs (the "be easy on the memory" guideline).

Both vectorised kernels accept ``workspace=`` (a
:class:`~repro.util.workspace.WorkspacePool` or leased
:class:`~repro.util.workspace.Workspace`): scratch buffers are then leased
from the pool instead of allocated per call, and the gather / multiply /
segment-sum run through the ``out=`` forms of the same ufuncs in the same
operand order — results are bitwise identical to the allocating path
(asserted in the test suite).  For the repeated-multiply serving case see
:class:`repro.kernels.KernelSession`.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import checked, validates
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_dense, check_out, check_positive
from repro.util.workspace import Workspace, as_workspace

__all__ = ["spmm", "spmm_blocked", "spmm_rowwise_reference"]


@checked(validates("csr"))
def spmm_rowwise_reference(csr: CSRMatrix, X: np.ndarray) -> np.ndarray:
    """Paper Alg. 1, literal loops.  O(nnz * K) scalar operations."""
    X = check_dense("X", X, rows=csr.n_cols)
    K = X.shape[1]
    Y = np.zeros((csr.n_rows, K), dtype=np.float64)
    for i in range(csr.n_rows):
        for j in range(csr.rowptr[i], csr.rowptr[i + 1]):
            c = csr.colidx[j]
            v = csr.values[j]
            for k in range(K):
                Y[i, k] += v * X[c, k]
    return Y


def _gathered_products(
    values: np.ndarray, X: np.ndarray, cols: np.ndarray, ws: Workspace | None
) -> np.ndarray:
    """``values[:, None] * X[cols]`` — through leased scratch when pooled.

    The pooled path gathers with ``np.take(out=)`` and multiplies with
    ``np.multiply(out=)`` using the same operand order as the allocating
    expression, so both paths round identically.
    """
    if ws is None:
        return values[:, None] * X[cols]
    K = X.shape[1]
    if X.dtype == np.float64:
        products = ws.scratch((cols.size, K))
        np.take(X, cols, axis=0, out=products)
    else:
        # dtype-preserving gather, then a widening multiply into float64
        # scratch (float32 -> float64 casts are exact, so the product is
        # bit-for-bit the promoted multiply of the allocating path).
        products = ws.scratch((cols.size, K), dtype=X.dtype)
        np.take(X, cols, axis=0, out=products)
        widened = ws.scratch((cols.size, K))
        np.multiply(values[:, None], products, out=widened)
        return widened
    np.multiply(values[:, None], products, out=products)
    return products


def _segment_rows(
    products: np.ndarray,
    starts: np.ndarray,
    nonempty: np.ndarray,
    out_rows: np.ndarray,
    ws: Workspace | None,
) -> None:
    """``out_rows[nonempty] = reduceat(products, starts)`` without allocating."""
    if ws is None:
        out_rows[nonempty] = np.add.reduceat(products, starts, axis=0)
        return
    sums = ws.scratch((nonempty.size, products.shape[1]))
    np.add.reduceat(products, starts, axis=0, out=sums)
    out_rows[nonempty] = sums


@checked(validates("csr"))
def spmm(
    csr: CSRMatrix,
    X: np.ndarray,
    out: np.ndarray | None = None,
    *,
    workspace=None,
    backend: str | None = None,
) -> np.ndarray:
    """Vectorised SpMM.

    Parameters
    ----------
    csr:
        Sparse operand, shape ``(M, N)``.
    X:
        Dense operand, shape ``(N, K)``.  A ``float32`` operand is used
        as-is (dtype-preserving validation) — no up-cast copy; the
        accumulation still runs in ``float64`` via the values array.
    out:
        Optional preallocated ``(M, K)`` output (overwritten, not
        accumulated).  Must be writable in place: a float64 C-contiguous
        ndarray of exactly that shape
        (:func:`~repro.util.validation.check_out`).
    workspace:
        Optional :class:`~repro.util.workspace.WorkspacePool` or
        :class:`~repro.util.workspace.Workspace`; the ``nnz * K``
        products scratch is leased from it instead of allocated.
    backend:
        Optional compiled-backend name (see
        :mod:`repro.kernels.backends`).  ``None``/``"numpy"`` run this
        reference path; other names dispatch to the backend's compiled
        SpMM, degrading back here when the backend is unavailable.

    Returns
    -------
    numpy.ndarray
        ``Y`` of shape ``(M, K)``.
    """
    if backend is not None and backend != "numpy":
        from repro.kernels.backends import resolve_backend

        resolved, _ = resolve_backend(backend)
        if resolved.name != "numpy":
            return resolved.spmm(csr, X, out, workspace=workspace)
    X = check_dense("X", X, rows=csr.n_cols, dtype=None)
    K = X.shape[1]
    if out is None:
        out = np.zeros((csr.n_rows, K), dtype=np.float64)  # reprolint: disable=RD501 -- out= buffers are float64 by contract (check_out rejects anything else), so both branches agree
    else:
        out = check_out("out", out, rows=csr.n_rows, cols=K)
        out[:] = 0.0
    if csr.nnz == 0:
        return out
    ws, owned = as_workspace(workspace)
    try:
        # Gather + scale: products[p] = value[p] * X[col[p]], then
        # segment-sum into rows (reduceat needs non-empty segments).
        products = _gathered_products(csr.values, X, csr.colidx, ws)
        lengths = csr.row_lengths()
        nonempty = np.flatnonzero(lengths > 0)
        starts = csr.rowptr[:-1][nonempty]
        _segment_rows(products, starts, nonempty, out, ws)
    finally:
        if owned:
            ws.release()
    return out


@checked(validates("csr"))
def spmm_blocked(
    csr: CSRMatrix,
    X: np.ndarray,
    *,
    block_rows: int = 4096,
    out: np.ndarray | None = None,
    workspace=None,
) -> np.ndarray:
    """SpMM with bounded scratch: processes ``block_rows`` rows at a time.

    Scratch peaks at ``max_block_nnz * K`` floats instead of ``nnz * K``.
    Results are bitwise identical to :func:`spmm` (same reduction order).
    Accepts the same ``out=`` / ``workspace=`` as :func:`spmm`; with a
    workspace, consecutive blocks recycle the same size-class buffers.
    The ``out=`` buffer must be writable in place (float64,
    C-contiguous): a buffer that would need a dtype or contiguity copy
    is rejected instead of silently filled-then-discarded.
    """
    check_positive("block_rows", block_rows)
    X = check_dense("X", X, rows=csr.n_cols, dtype=None)
    K = X.shape[1]
    if out is None:
        Y = np.zeros((csr.n_rows, K), dtype=np.float64)  # reprolint: disable=RD501 -- out= buffers are float64 by contract (check_out rejects anything else), so both branches agree
    else:
        Y = check_out("out", out, rows=csr.n_rows, cols=K)
        Y[:] = 0.0
    ws, owned = as_workspace(workspace)
    try:
        for lo in range(0, csr.n_rows, block_rows):
            hi = min(lo + block_rows, csr.n_rows)
            p0, p1 = csr.rowptr[lo], csr.rowptr[hi]
            if p0 == p1:
                continue
            with (ws.pool.lease() if ws is not None else _NULL_LEASE) as block_ws:
                cols = csr.colidx[p0:p1]
                vals = csr.values[p0:p1]
                products = _gathered_products(vals, X, cols, block_ws)
                lengths = np.diff(csr.rowptr[lo : hi + 1])
                nonempty = np.flatnonzero(lengths > 0)
                starts = (csr.rowptr[lo:hi][nonempty] - p0).astype(np.int64)
                _segment_rows(products, starts, nonempty, Y[lo:hi], block_ws)
    finally:
        if owned:
            ws.release()
    return Y


class _NullLease:
    """Context manager standing in for "no workspace" in the block loop."""

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_LEASE = _NullLease()
