"""SpMM: multiply a sparse matrix by a dense matrix (paper Alg. 1).

``Y[i, k] = sum_j S.value[j] * X[S.colidx[j], k]`` over the non-zeros ``j``
of row ``i``.

Three implementations with one contract:

* :func:`spmm_rowwise_reference` — the paper's Alg. 1 verbatim, Python
  loops; the oracle for everything else (use only on small matrices).
* :func:`spmm` — vectorised: one gather of ``X`` rows, one broadcast
  multiply, one ``reduceat`` segment sum.  Peak scratch memory is
  ``nnz * K`` floats.
* :func:`spmm_blocked` — the same algorithm applied to row blocks, capping
  scratch memory for large inputs (the "be easy on the memory" guideline).
"""

from __future__ import annotations

import numpy as np

from repro.contracts import checked, validates
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_dense, check_positive

__all__ = ["spmm", "spmm_blocked", "spmm_rowwise_reference"]


@checked(validates("csr"))
def spmm_rowwise_reference(csr: CSRMatrix, X: np.ndarray) -> np.ndarray:
    """Paper Alg. 1, literal loops.  O(nnz * K) scalar operations."""
    X = check_dense("X", X, rows=csr.n_cols)
    K = X.shape[1]
    Y = np.zeros((csr.n_rows, K), dtype=np.float64)
    for i in range(csr.n_rows):
        for j in range(csr.rowptr[i], csr.rowptr[i + 1]):
            c = csr.colidx[j]
            v = csr.values[j]
            for k in range(K):
                Y[i, k] += v * X[c, k]
    return Y


@checked(validates("csr"))
def spmm(csr: CSRMatrix, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Vectorised SpMM.

    Parameters
    ----------
    csr:
        Sparse operand, shape ``(M, N)``.
    X:
        Dense operand, shape ``(N, K)``.  A ``float32`` operand is used
        as-is (dtype-preserving validation) — no up-cast copy; the
        accumulation still runs in ``float64`` via the values array.
    out:
        Optional preallocated ``(M, K)`` output (overwritten, not
        accumulated).

    Returns
    -------
    numpy.ndarray
        ``Y`` of shape ``(M, K)``.
    """
    X = check_dense("X", X, rows=csr.n_cols, dtype=None)
    K = X.shape[1]
    if out is None:
        out = np.zeros((csr.n_rows, K), dtype=np.float64)
    else:
        out = check_dense("out", out, rows=csr.n_rows, cols=K)
        out[:] = 0.0
    if csr.nnz == 0:
        return out
    # Gather + scale: products[p] = value[p] * X[col[p]]
    products = csr.values[:, None] * X[csr.colidx]
    # Segment-sum the products into rows.  reduceat needs non-empty
    # segments; route through the shared empty-aware helper semantics.
    lengths = csr.row_lengths()
    nonempty = np.flatnonzero(lengths > 0)
    starts = csr.rowptr[:-1][nonempty]
    out[nonempty] = np.add.reduceat(products, starts, axis=0)
    return out


@checked(validates("csr"))
def spmm_blocked(
    csr: CSRMatrix, X: np.ndarray, *, block_rows: int = 4096
) -> np.ndarray:
    """SpMM with bounded scratch: processes ``block_rows`` rows at a time.

    Scratch peaks at ``max_block_nnz * K`` floats instead of ``nnz * K``.
    Results are bitwise identical to :func:`spmm` (same reduction order).
    """
    check_positive("block_rows", block_rows)
    X = check_dense("X", X, rows=csr.n_cols, dtype=None)
    K = X.shape[1]
    Y = np.zeros((csr.n_rows, K), dtype=np.float64)
    for lo in range(0, csr.n_rows, block_rows):
        hi = min(lo + block_rows, csr.n_rows)
        p0, p1 = csr.rowptr[lo], csr.rowptr[hi]
        if p0 == p1:
            continue
        cols = csr.colidx[p0:p1]
        vals = csr.values[p0:p1]
        products = vals[:, None] * X[cols]
        lengths = np.diff(csr.rowptr[lo : hi + 1])
        nonempty = np.flatnonzero(lengths > 0)
        starts = (csr.rowptr[lo:hi][nonempty] - p0).astype(np.int64)
        Y[lo + nonempty] = np.add.reduceat(products, starts, axis=0)
    return Y
