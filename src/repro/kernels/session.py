"""Steady-state SpMM sessions: pin one matrix, multiply many times.

The serving scenario behind the paper (and the ROADMAP north star) is a
*fixed* sparse matrix multiplied against a stream of dense operands.  The
one-shot kernels re-derive everything per call — segment starts, panel
column remaps, scratch buffers, the output array.  A
:class:`KernelSession` hoists all of it:

* per-matrix metadata (non-empty rows, segment starts, per-panel local
  column ids) is computed once at construction;
* scratch comes from a private :class:`~repro.util.workspace.WorkspacePool`,
  so after the first call the steady state allocates nothing;
* the row-wise multiplies run through a **compiled kernel backend**
  (:mod:`repro.kernels.backends`): at construction the session resolves
  the requested backend (its own ``backend=`` argument, or the plan's
  ``backend`` field for plan targets) and compiles one artifact per
  pinned :class:`~repro.kernels.state.CsrState`, specialized to that
  matrix's structure.  Compiled artifacts are cached process-wide, so a
  warm session constructed against an already-seen fingerprint skips
  compilation entirely;
* the reference strategy itself (the ``numpy`` backend) multiplies
  *transposed and K-chunked*: the dense operand is staged as ``X.T``
  (one contiguous ``K x N`` copy) and processed in chunks of ``chunk_k``
  columns, so the gather, scale and segment-sum all stream along the
  contiguous axis and the active chunk stays cache resident.  This is
  the CPU analogue of the GPU kernel's coalesced-access + shared-memory
  staging, and measures ~3x faster than the one-shot
  :func:`~repro.kernels.spmm` at K=512 on the bench-gate workload.

Despite the different loop structure, results are **bitwise identical**
to the one-shot kernels (``numpy``/``codegen`` backends) or within 1 ULP
(``numba``): per output element the same products are accumulated
left-to-right in the same order, and float32 operands are widened by an
exact cast before the same float64 multiply.  The equivalence is
asserted in the oracle tests, the cross-backend differential matrix and,
for plans, by :meth:`repro.reorder.ExecutionPlan.validate`.

Degradation is never fatal: if the requested backend is unavailable or
its compile fails (including the injected ``backend.compile`` chaos
fault), the session falls back to the uncompiled numpy reference path —
``kernels.backend_fallback`` counts it, one
:class:`~repro.errors.DegradedExecution` warning fires, and
:attr:`KernelSession.backend_provenance` records the step.

A session accepts three target types:

* :class:`~repro.sparse.CSRMatrix` — matches :func:`repro.kernels.spmm`;
* :class:`~repro.aspt.TiledMatrix` — matches
  :func:`repro.kernels.spmm_tiled`;
* :class:`~repro.reorder.ExecutionPlan` — matches
  :meth:`~repro.reorder.ExecutionPlan.spmm` (multiplies in original
  coordinates through the reordered execution plan).

Sessions are thread-safe: the pool is locked, per-call scratch is leased
per call, and the default output buffer is thread-local.  ``run`` returns
that thread-local buffer (valid until the same thread's next ``run``);
pass ``out=`` or copy the result to keep it.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np

from repro.aspt.tiles import TiledMatrix
from repro.errors import BackendUnavailable, DegradedExecution, WorkspaceExhausted
from repro.kernels.aspt_spmm import _panel_dense_spmm, panel_plan
from repro.kernels.state import DEFAULT_CHUNK_K, CsrState
from repro.observability.metrics import METRICS
from repro.observability.tracing import span
from repro.resilience.faults import fault_point
from repro.sparse.csr import CSRMatrix
from repro.util.log import get_logger
from repro.util.validation import check_dense, check_out
from repro.util.workspace import DirectWorkspace, Workspace, WorkspacePool

__all__ = ["KernelSession"]

_log = get_logger("kernels")

# Backwards-compatible aliases: both classes used to be defined here.
_DirectWorkspace = DirectWorkspace
_CsrSteadyState = CsrState


class KernelSession:
    """Amortised repeated SpMM against one pinned target.

    Parameters
    ----------
    target:
        A :class:`~repro.sparse.CSRMatrix`, an ASpT
        :class:`~repro.aspt.TiledMatrix` or a
        :class:`~repro.reorder.ExecutionPlan`.
    chunk_k:
        Width of the K-chunks the multiply streams through (default 64);
        baked into the compiled artifacts' specialization key.
    pool:
        Workspace pool to lease scratch from; by default the session owns
        a private pool sized to its own working set.
    backend:
        Compiled kernel backend name (``"numpy"``, ``"codegen"``,
        ``"numba"``).  ``None`` means "no preference": plan targets use
        the plan's ``backend`` field, everything else the ``numpy``
        reference.  Unknown names raise
        :class:`~repro.errors.ConfigError`; known-but-unavailable
        backends (and compile failures) degrade to numpy with a
        :class:`~repro.errors.DegradedExecution` warning.

    Examples
    --------
    >>> from repro.datasets import hidden_clusters
    >>> from repro.kernels import KernelSession, spmm
    >>> import numpy as np
    >>> m = hidden_clusters(10, 4, 64, 6, seed=0)
    >>> session = KernelSession(m)
    >>> X = np.random.default_rng(0).normal(size=(m.n_cols, 8))
    >>> bool(np.array_equal(session.run(X), spmm(m, X)))
    True
    """

    def __init__(
        self,
        target,
        *,
        chunk_k: int = DEFAULT_CHUNK_K,
        pool: WorkspacePool | None = None,
        backend: str | None = None,
    ) -> None:
        if chunk_k < 1:
            raise ValueError(f"chunk_k must be >= 1, got {chunk_k}")
        self.chunk_k = int(chunk_k)
        self.pool = pool if pool is not None else WorkspacePool()
        # Per-session child of the global workspace.fallback instrument
        # (exposed read-only through the ``fallbacks`` property).
        self._fallbacks = METRICS.counter(
            "workspace.fallback", "session runs that bypassed the pool"
        ).child()
        self._warned_fallback = False
        self._local = threading.local()
        self._requested_backend = backend
        self._bind(target)

    def _bind(self, target) -> None:
        """Pin ``target``: derive per-matrix state and compile artifacts.

        Shared by construction and :meth:`refresh`; every target-derived
        attribute is (re)assigned here so a refresh leaves no stale state
        behind.
        """
        self._plan = None
        self._tiled = None
        self._steady = None
        self._sparse = None
        self._remainder = None
        if isinstance(target, CSRMatrix):
            self._kind = "csr"
            self._n_rows = target.n_rows
            self._n_cols = target.n_cols
            self._steady = CsrState(target)
            states = [self._steady]
        elif isinstance(target, TiledMatrix):
            self._kind = "tiled"
            self._init_tiled(target)
            states = [self._sparse] if self._sparse is not None else []
        elif hasattr(target, "tiled") and hasattr(target, "row_order"):
            # ExecutionPlan (duck-typed: repro.reorder imports this module's
            # package, so a class check would be a circular import).
            self._kind = "plan"
            self._plan = target
            self._init_tiled(target.tiled)
            self._remainder = (
                CsrState(target.remainder) if target.remainder.nnz else None
            )
            states = [s for s in (self._sparse, self._remainder) if s is not None]
        else:
            raise TypeError(
                "KernelSession target must be a CSRMatrix, TiledMatrix or "
                f"ExecutionPlan, got {type(target).__name__}"
            )
        self.target = target
        self._init_backend(self._requested_backend, states)

    def _init_tiled(self, tiled: TiledMatrix) -> None:
        self._tiled = tiled
        self._n_rows = tiled.original.n_rows
        self._n_cols = tiled.original.n_cols
        self._panels = panel_plan(
            tiled.dense_part, tiled.panel_dense_cols, tiled.spec.panel_height
        )
        self._sparse = (
            CsrState(tiled.sparse_part) if tiled.sparse_part.nnz else None
        )

    def _init_backend(self, backend: str | None, states: list[CsrState]) -> None:
        """Resolve the backend and compile one SpMM artifact per state.

        Unavailable backends degrade inside ``resolve_backend``; compile
        *failures* (e.g. the injected ``backend.compile`` fault) degrade
        here, all the way down to the uncompiled numpy reference path —
        a session never fails to construct over its backend.
        """
        from repro.kernels.backends import get_backend, resolve_backend, specialize

        requested = backend
        if requested is None and self._kind == "plan":
            requested = getattr(self._plan, "backend", None)
        backend_obj, provenance = resolve_backend(requested)
        provenance = list(provenance)
        try:
            mult = {}
            for state in states:
                spec = specialize(state, kernel="spmm", chunk_k=self.chunk_k)
                mult[id(state)] = backend_obj.artifact(spec).fn
        except BackendUnavailable as exc:
            METRICS.counter(
                "kernels.backend_fallback",
                "backend requests degraded to the numpy reference",
            ).inc()
            provenance.append(
                f"backend:{backend_obj.name}->numpy: compile failed: {exc}"
            )
            _log.warning(
                "backend %s compile failed (%s); session using numpy",
                backend_obj.name,
                exc,
            )
            warnings.warn(
                f"kernel backend {backend_obj.name!r} failed to compile "
                f"({exc}); session falling back to the numpy reference "
                "(results unchanged)",
                DegradedExecution,
                stacklevel=3,
            )
            backend_obj = get_backend("numpy")
            mult = {}  # empty: _multiply uses the uncompiled reference path
        self._backend_obj = backend_obj
        self._mult = mult
        self.backend_provenance = tuple(provenance)

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Rows of the pinned target (rows of every result)."""
        return self._n_rows

    @property
    def n_cols(self) -> int:
        """Columns of the pinned target (required rows of operands)."""
        return self._n_cols

    @property
    def backend(self) -> str:
        """Name of the backend actually executing (after any degradation)."""
        return self._backend_obj.name

    @property
    def fallbacks(self) -> int:
        """Calls completed through the direct-allocation fallback after
        workspace exhaustion (per-session view of ``workspace.fallback``)."""
        return self._fallbacks.value

    def stats(self) -> dict:
        """Workspace-pool counters (steady state: hits, no misses)."""
        return self.pool.stats()

    def close(self) -> None:
        """Drop the pooled scratch blocks (the session stays usable)."""
        self.pool.clear()

    def refresh(self, target) -> "KernelSession":
        """Re-pin the session onto a successor ``target`` in place.

        The streaming path: after :func:`repro.streaming.apply_delta`
        produces a patched plan, ``refresh`` re-derives every
        target-bound attribute (pinned states, panel remaps, compiled
        artifacts — warm compiles hit the process-wide artifact cache)
        while keeping the session identity, its workspace pool and its
        degradation counters.  Accepts the same target types as the
        constructor, plus a :class:`repro.streaming.PlanUpdate` (its
        ``plan`` is unwrapped).  The per-thread pinned output buffers are
        dropped because the matrix height may have changed.

        Not safe to interleave with concurrent :meth:`run` calls on the
        same session — callers that share a session across threads (the
        serving pool does) must serialise refresh against runs.
        """
        plan = getattr(target, "plan", None)
        if plan is not None and hasattr(plan, "row_order"):
            target = plan  # a PlanUpdate: pin the patched plan inside
        self._local = threading.local()
        self._bind(target)
        METRICS.counter(
            "streaming.sessions_refreshed",
            "kernel sessions re-pinned onto a streamed successor target",
        ).inc()
        return self

    # ------------------------------------------------------------------
    def _output(self, K: int, out: np.ndarray | None) -> np.ndarray:
        if out is not None:
            # Strict: an out= buffer the kernel cannot write in place
            # (wrong dtype, non-contiguous) is an error, never a silent
            # copy the caller would read zeros from.
            return check_out("out", out, rows=self._n_rows, cols=K)
        pinned = getattr(self._local, "out", None)
        if pinned is None or pinned.shape[1] != K:
            pinned = np.empty((self._n_rows, K), dtype=np.float64)
            self._local.out = pinned
        return pinned

    def _multiply(self, state: CsrState, X: np.ndarray, out: np.ndarray, ws) -> None:
        """One pinned-state SpMM through the session's compiled artifact."""
        fn = self._mult.get(id(state))
        if fn is not None:
            fn(state, X, out, ws)
        else:
            state.multiply(X, out, ws, self.chunk_k)

    def run(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``target @ X`` (for plans: in original coordinates).

        Without ``out=`` the result lands in a per-thread pinned buffer
        that the *next* ``run`` on the same thread overwrites — the
        steady state allocates nothing.  Pass ``out=`` (or copy) to keep
        a result across calls.

        When the pool cannot serve a lease
        (:class:`repro.errors.WorkspaceExhausted`), the multiply reruns
        with direct allocation — bitwise-identical result, one
        :class:`repro.errors.DegradedExecution` warning per session, and
        :attr:`fallbacks` counts the degraded calls.
        """
        if self._kind == "plan":
            # ExecutionPlan.spmm validates with the float64-casting form.
            X = check_dense("X", X, rows=self._n_cols)
        else:
            X = check_dense("X", X, rows=self._n_cols, dtype=None)
        K = X.shape[1]
        out = self._output(K, out)  # reprolint: disable=RD602 -- only caches the per-thread pinned buffer on self._local; a fired fault strands a reusable buffer, never a partial result
        try:
            with span("kernel.run", kind=self._kind, k=K):
                with self.pool.lease() as ws:
                    fault_point("session.run")
                    self._dispatch(X, out, ws)
        except WorkspaceExhausted as exc:
            # Safe to rerun from the top: every dispatch path fully
            # overwrites ``out``, so a partial first attempt leaves no
            # trace in the final result.
            self._fallbacks.inc()
            if not self._warned_fallback:
                self._warned_fallback = True
                warnings.warn(
                    f"workspace pool exhausted ({exc}); session falling "
                    "back to direct allocation (results unchanged)",
                    DegradedExecution,
                    stacklevel=2,
                )
            _log.warning("session fallback to direct allocation: %s", exc)
            with span("kernel.run.fallback", kind=self._kind, k=K):
                self._dispatch(X, out, DirectWorkspace())
        return out

    def _dispatch(self, X: np.ndarray, out: np.ndarray, ws) -> None:
        if self._kind == "csr":
            self._multiply(self._steady, X, out, ws)
        elif self._kind == "tiled":
            self._run_tiled(X, out, ws)
        else:
            self._run_plan(X, out, ws)

    def run_many(self, Xs) -> list[np.ndarray]:
        """Multiply a batch of operands; results are caller-owned arrays."""
        results = []
        for X in Xs:
            K = np.asarray(X).shape[1]
            results.append(self.run(X, out=np.empty((self._n_rows, K))))
        return results

    # ------------------------------------------------------------------
    def _run_tiled(self, X: np.ndarray, out: np.ndarray, ws: Workspace) -> None:
        """Bitwise-identical to :func:`repro.kernels.spmm_tiled`."""
        tiled = self._tiled
        out[:] = 0.0
        _panel_dense_spmm(
            tiled.dense_part,
            X,
            tiled.panel_dense_cols,
            tiled.spec.panel_height,
            out,
            workspace=ws,
            panels=self._panels,
        )
        if self._sparse is not None:
            remainder = ws.scratch((self._n_rows, X.shape[1]))
            self._multiply(self._sparse, X, remainder, ws)
            np.add(out, remainder, out=out)

    def _run_plan(self, X: np.ndarray, out: np.ndarray, ws: Workspace) -> None:
        """Bitwise-identical to :meth:`repro.reorder.ExecutionPlan.spmm`."""
        plan = self._plan
        tiled = self._tiled
        K = X.shape[1]
        # Accumulate in round-1 (reordered) row space.
        y_reordered = ws.scratch((self._n_rows, K))
        y_reordered[:] = 0.0
        _panel_dense_spmm(
            tiled.dense_part,
            X,
            tiled.panel_dense_cols,
            tiled.spec.panel_height,
            y_reordered,
            workspace=ws,
            panels=self._panels,
        )
        if self._remainder is not None:
            y_rem = ws.scratch((self._n_rows, K))
            self._multiply(self._remainder, X, y_rem, ws)
            y_reordered[plan.remainder_order] += y_rem
        # Scatter back: reordered row r is original row row_order[r].
        out[plan.row_order] = y_reordered
