"""Functionally correct SpMM and SDDMM kernels.

Two families:

* **Row-wise** kernels (:mod:`repro.kernels.spmm`, :mod:`repro.kernels.sddmm`)
  implementing the paper's Alg. 1 / Alg. 2 semantics, both as a readable
  reference loop and as a vectorised production path.
* **Tiled** kernels (:mod:`repro.kernels.aspt_spmm`,
  :mod:`repro.kernels.aspt_sddmm`) operating on a
  :class:`repro.aspt.TiledMatrix`, computing the dense tiles through an
  explicitly staged panel buffer (the functional analogue of the GPU
  shared-memory path) and the remainder row-wise.

All vectorised kernels accept ``workspace=`` (see
:mod:`repro.util.workspace`) so their large scratch buffers are pooled
instead of re-allocated per call, and
:class:`repro.kernels.KernelSession` pins a matrix (or tiled matrix, or
execution plan) for the repeated-multiply serving case — bitwise-identical
results at a fraction of the steady-state cost.

Every vectorised kernel (and :class:`~repro.kernels.KernelSession`)
additionally accepts ``backend=``, selecting a compiled kernel backend
from :mod:`repro.kernels.backends` — ``numpy`` (the reference, always),
``codegen`` (``exec``-compiled specialized source, always), ``numba``
(machine-code JIT when importable, graceful degradation otherwise).  All
backends are held to the reference's bit pattern (1 ULP for true JIT) by
the cross-backend differential test matrix.

These kernels compute *results*; the corresponding *performance* estimates
come from :mod:`repro.gpu`, which models the same access patterns on a
P100-like memory hierarchy.
"""

from repro.kernels.spmm import spmm, spmm_blocked, spmm_rowwise_reference
from repro.kernels.spmv import spmv, spmv_rowwise_reference
from repro.kernels.sddmm import sddmm, sddmm_rowwise_reference
from repro.kernels.aspt_spmm import spmm_tiled
from repro.kernels.aspt_sddmm import sddmm_tiled
from repro.kernels.state import DEFAULT_CHUNK_K, CsrState
from repro.kernels.session import KernelSession
from repro.kernels.validate import assert_spmm_correct, assert_sddmm_correct
from repro.kernels.backends import (
    CompiledKernel,
    KernelBackend,
    SpecializationSpec,
    available_backends,
    backend_names,
    get_backend,
    resolve_backend,
    specialize,
)

__all__ = [
    "KernelSession",
    "CsrState",
    "DEFAULT_CHUNK_K",
    "spmm",
    "spmm_blocked",
    "spmm_rowwise_reference",
    "spmv",
    "spmv_rowwise_reference",
    "sddmm",
    "sddmm_rowwise_reference",
    "spmm_tiled",
    "sddmm_tiled",
    "assert_spmm_correct",
    "assert_sddmm_correct",
    "SpecializationSpec",
    "CompiledKernel",
    "KernelBackend",
    "specialize",
    "backend_names",
    "available_backends",
    "get_backend",
    "resolve_backend",
]
