"""SDDMM over an ASpT :class:`~repro.aspt.TiledMatrix`.

Same two-phase structure as :mod:`repro.kernels.aspt_spmm`: the dense-tile
entries read their ``X`` rows through a per-panel gathered buffer (shared
memory analogue), the remainder goes through the row-wise kernel, and the
two partial value arrays are scattered back into the original non-zero
positions so the result has exactly the original pattern.
"""

from __future__ import annotations

import numpy as np

from repro.aspt.tiles import TiledMatrix
from repro.contracts import checked, invokes
from repro.kernels.sddmm import sddmm
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_dense
from repro.util.workspace import as_workspace

__all__ = ["sddmm_tiled"]


def _nnz_positions_in_original(original: CSRMatrix, part: CSRMatrix) -> np.ndarray:
    """For each stored entry of ``part``, its index in ``original``'s arrays.

    Both matrices are canonical CSR over the same shape and ``part``'s
    entries are a subset of ``original``'s, so a per-row ``searchsorted``
    on the column arrays locates every entry; vectorised via global search
    on (row, col) composite keys.
    """
    n = original.n_cols
    orig_keys = original.row_ids() * np.int64(n) + original.colidx
    part_keys = part.row_ids() * np.int64(n) + part.colidx
    pos = np.searchsorted(orig_keys, part_keys)
    return pos.astype(np.int64)


@checked(invokes("validate_structure", "tiled"))
def sddmm_tiled(
    tiled: TiledMatrix, X: np.ndarray, Y: np.ndarray, *, workspace=None
) -> CSRMatrix:
    """Two-phase ASpT SDDMM.

    Parameters
    ----------
    tiled:
        Output of :func:`repro.aspt.tile_matrix`.
    X:
        Dense operand of shape ``(n_cols, K)``.  Floating dtypes are
        preserved (no up-cast copy).
    Y:
        Dense operand of shape ``(n_rows, K)``.
    workspace:
        Optional :class:`~repro.util.workspace.WorkspacePool` /
        :class:`~repro.util.workspace.Workspace`; panel gather buffers
        are leased from it (bitwise-identical results).

    Returns
    -------
    CSRMatrix
        Same pattern as ``tiled.original`` with SDDMM values.
    """
    original = tiled.original
    X = check_dense("X", X, rows=original.n_cols, dtype=None)
    Y = check_dense("Y", Y, rows=original.n_rows, cols=X.shape[1], dtype=None)
    K = X.shape[1]
    # The value arrays escape into the returned matrix — never leased.
    out_values = np.zeros(original.nnz, dtype=np.float64)
    ws, owned = as_workspace(workspace)
    try:
        # Dense tiles: per-panel staged buffer.
        dense = tiled.dense_part
        if dense.nnz:
            rowptr = dense.rowptr
            dense_vals = np.zeros(dense.nnz, dtype=np.float64)
            ph = tiled.spec.panel_height
            row_ids = dense.row_ids()
            for p, cols in enumerate(tiled.panel_dense_cols):
                if cols.size == 0:
                    continue
                lo = p * ph
                hi = min(lo + ph, dense.n_rows)
                p0, p1 = rowptr[lo], rowptr[hi]
                if p0 == p1:
                    continue
                local = np.searchsorted(cols, dense.colidx[p0:p1])
                rows = row_ids[p0:p1]
                if ws is None:
                    buffer = X[cols]
                    dots = np.einsum("pk,pk->p", Y[rows], buffer[local])
                else:
                    buffer = ws.scratch((cols.size, K), dtype=X.dtype)
                    np.take(X, cols, axis=0, out=buffer)
                    x_gathered = ws.scratch((local.size, K), dtype=X.dtype)
                    np.take(buffer, local, axis=0, out=x_gathered)
                    y_gathered = ws.scratch((rows.size, K), dtype=Y.dtype)
                    np.take(Y, rows, axis=0, out=y_gathered)
                    dots = np.einsum("pk,pk->p", y_gathered, x_gathered)
                dense_vals[p0:p1] = dots * dense.values[p0:p1]
            out_values[_nnz_positions_in_original(original, dense)] = dense_vals

        # Sparse remainder: row-wise kernel.
        sparse = tiled.sparse_part
        if sparse.nnz:
            sparse_result = sddmm(sparse, X, Y, workspace=ws)
            out_values[_nnz_positions_in_original(original, sparse)] = (
                sparse_result.values
            )
    finally:
        if owned:
            ws.release()

    return original.with_values(out_values)
