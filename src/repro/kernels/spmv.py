"""SpMV: sparse matrix–vector multiplication.

SpMV is not one of the paper's target kernels, but it anchors the paper's
central *argument*: vertex reordering improves SpMV — where the dense
operand is a vector and consecutive accesses to it enjoy spatial locality
within cache lines — yet does not help SpMM, where each "element" is a
whole K-wide row and only temporal locality matters.  This module provides
the functional kernel; :meth:`repro.gpu.executor.GPUExecutor.spmv_cost`
provides the matching performance model, and
``benchmarks/bench_spmv_vs_spmm_reordering.py`` reproduces the argument.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import checked, validates
from repro.sparse.csr import CSRMatrix
from repro.util.arrayops import segment_sum

__all__ = ["spmv", "spmv_rowwise_reference"]


@checked(validates("csr"))
def spmv_rowwise_reference(csr: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Scalar-loop SpMV (the K=1 specialisation of the paper's Alg. 1)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size != csr.n_cols:
        raise ValueError(f"x must be 1-D of length {csr.n_cols}, got shape {x.shape}")
    y = np.zeros(csr.n_rows, dtype=np.float64)
    for i in range(csr.n_rows):
        acc = 0.0
        for j in range(csr.rowptr[i], csr.rowptr[i + 1]):
            acc += csr.values[j] * x[csr.colidx[j]]
        y[i] = acc
    return y


@checked(validates("csr"))
def spmv(csr: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Vectorised SpMV: gather, multiply, segment-sum."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size != csr.n_cols:
        raise ValueError(f"x must be 1-D of length {csr.n_cols}, got shape {x.shape}")
    if csr.nnz == 0:
        return np.zeros(csr.n_rows, dtype=np.float64)
    products = csr.values * x[csr.colidx]
    return segment_sum(products, csr.rowptr)
