"""SpMV: sparse matrix–vector multiplication.

SpMV is not one of the paper's target kernels, but it anchors the paper's
central *argument*: vertex reordering improves SpMV — where the dense
operand is a vector and consecutive accesses to it enjoy spatial locality
within cache lines — yet does not help SpMM, where each "element" is a
whole K-wide row and only temporal locality matters.  This module provides
the functional kernel; :meth:`repro.gpu.executor.GPUExecutor.spmv_cost`
provides the matching performance model, and
``benchmarks/bench_spmv_vs_spmm_reordering.py`` reproduces the argument.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import checked, validates
from repro.sparse.csr import CSRMatrix
from repro.util.arrayops import segment_sum
from repro.util.workspace import as_workspace

__all__ = ["spmv", "spmv_rowwise_reference"]


@checked(validates("csr"))
def spmv_rowwise_reference(csr: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """Scalar-loop SpMV (the K=1 specialisation of the paper's Alg. 1)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size != csr.n_cols:
        raise ValueError(f"x must be 1-D of length {csr.n_cols}, got shape {x.shape}")
    y = np.zeros(csr.n_rows, dtype=np.float64)
    for i in range(csr.n_rows):
        acc = 0.0
        for j in range(csr.rowptr[i], csr.rowptr[i + 1]):
            acc += csr.values[j] * x[csr.colidx[j]]
        y[i] = acc
    return y


@checked(validates("csr"))
def spmv(
    csr: CSRMatrix, x: np.ndarray, *, workspace=None, backend: str | None = None
) -> np.ndarray:
    """Vectorised SpMV: gather, multiply, segment-sum.

    ``workspace`` optionally leases the ``nnz``-long products scratch from
    a :class:`~repro.util.workspace.WorkspacePool` /
    :class:`~repro.util.workspace.Workspace` instead of allocating it;
    the gather and multiply then run through ``out=`` forms with the same
    operand order, so the result is bitwise identical.  ``backend``
    optionally dispatches to a compiled backend
    (:mod:`repro.kernels.backends`), degrading back to this reference
    path when the backend is unavailable.
    """
    if backend is not None and backend != "numpy":
        from repro.kernels.backends import resolve_backend

        resolved, _ = resolve_backend(backend)
        if resolved.name != "numpy":
            return resolved.spmv(csr, x, workspace=workspace)
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.size != csr.n_cols:
        raise ValueError(f"x must be 1-D of length {csr.n_cols}, got shape {x.shape}")
    if csr.nnz == 0:
        return np.zeros(csr.n_rows, dtype=np.float64)
    ws, owned = as_workspace(workspace)
    try:
        if ws is None:
            products = csr.values * x[csr.colidx]
        else:
            products = ws.scratch(csr.nnz)
            np.take(x, csr.colidx, out=products)
            np.multiply(csr.values, products, out=products)
        return segment_sum(products, csr.rowptr)
    finally:
        if owned:
            ws.release()
