"""Zero-dependency observability layer: structured tracing + metrics.

Two complementary views of what the library is doing:

* **Tracing** (:mod:`repro.observability.tracing`) — *where time goes*.
  Nestable :func:`span` context managers record a tree of timed stages
  (minhash → LSH → clustering → tiling → kernels) exportable as Chrome
  ``trace_event`` JSON for ``chrome://tracing``/Perfetto, or as a text
  flamegraph (:func:`trace_summary`).  Off by default; the disabled path
  is one global check (bench-gated at ≤2% kernel overhead).
* **Metrics** (:mod:`repro.observability.metrics`) — *what happened, how
  often*.  A process-global :class:`MetricsRegistry` of named counters,
  gauges and histograms that the plan store, workspace pool, resilience
  layer, GPU cost model and clustering all report into, while keeping
  their historical per-object counters as compatibility views.

Entry points: ``repro trace <matrix>`` on the command line,
``run_experiment(trace=...)`` for sweeps, ``with tracing() as t:`` for
any code region.  See ``docs/OBSERVABILITY.md`` for the instrument
catalogue and export walkthrough.
"""

from repro.observability.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.report import format_metrics, trace_summary
from repro.observability.tracing import (
    Span,
    Tracer,
    active_tracer,
    install_tracer,
    span,
    tracing,
    uninstall_tracer,
)

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_tracer",
    "format_metrics",
    "install_tracer",
    "span",
    "trace_summary",
    "tracing",
    "uninstall_tracer",
]
