"""Structured tracing: nestable spans, span trees, Chrome trace export.

A :class:`Tracer` records *spans* — named, attributed intervals measured
with an injectable monotonic clock — into a per-thread tree.  The tree
exports as plain nested dicts (:meth:`Tracer.to_dicts`) or as Chrome
``trace_event`` JSON (:meth:`Tracer.chrome_trace`) loadable in
``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_.

Tracing is **off by default** and gated exactly like
:mod:`repro.contracts` and :mod:`repro.resilience.faults`: production
code calls the module-level :func:`span`, which is a single global
``None`` check when no tracer is installed (the bench gate asserts the
disabled overhead on a kernel call stays under 2%).  Install a tracer
for a region with::

    from repro.observability import Tracer, tracing

    with tracing() as tracer:
        plan = build_plan(csr)
    print(tracer.chrome_trace())

or process-wide by exporting ``REPRO_TRACE=1`` before import (mirrors
``REPRO_CONTRACTS``), or via ``repro trace <matrix>`` on the command
line.

Determinism contract: spans never influence the traced computation —
the differential tests assert traced runs are bitwise identical to
untraced runs on every degradation-ladder rung.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

__all__ = [
    "ENV_VAR",
    "Span",
    "Tracer",
    "span",
    "tracing",
    "install_tracer",
    "uninstall_tracer",
    "active_tracer",
]

#: Environment variable that installs a process-global tracer at import
#: time when set to anything but ``""``/``"0"`` (mirrors REPRO_CONTRACTS).
ENV_VAR = "REPRO_TRACE"


class Span:
    """One named, attributed interval in a :class:`Tracer`'s tree.

    Created by :meth:`Tracer.span` (or the module-level :func:`span`) and
    used as a context manager; entering starts the clock and attaches the
    span to the current thread's innermost open span, exiting stops it.
    If the block raises, the exception type name is recorded in
    ``error`` and the exception propagates unchanged.
    """

    __slots__ = ("name", "attrs", "t_start", "t_end", "children", "tid", "error", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.t_start: float | None = None
        self.t_end: float | None = None
        self.children: list["Span"] = []
        self.tid = 0
        self.error: str | None = None
        self._tracer = tracer

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.error = exc_type.__name__
        self._tracer._exit(self)

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on an open span."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        """Elapsed clock seconds (0.0 while the span is still open)."""
        if self.t_start is None or self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        """Nested plain-dict view of this span and its children."""
        out = {
            "name": self.name,
            "start_s": self.t_start,
            "duration_s": self.duration,
            "tid": self.tid,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.error is not None:
            out["error"] = self.error
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:
        return f"Span({self.name!r}, duration={self.duration:.6f}s, children={len(self.children)})"


class _NullSpan:
    """Shared do-nothing span returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs) -> None:
        """No-op attribute setter (matches :meth:`Span.set`)."""


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans into per-thread trees with an injectable clock.

    Parameters
    ----------
    clock:
        Zero-argument monotonic clock returning seconds.  Defaults to
        ``time.perf_counter``; tests inject a ``FakeClock`` so golden
        traces are deterministic.
    pid:
        Process id stamped on Chrome trace events.  Defaults to the real
        pid; fix it (e.g. ``pid=1``) for reproducible exports.

    Timestamps are recorded relative to the tracer's construction time,
    so exports start near zero regardless of the clock's epoch.  Use as a
    context manager to install/uninstall process-wide (mirrors
    :class:`~repro.resilience.faults.FaultInjector`).
    """

    def __init__(self, *, clock=time.perf_counter, pid: int | None = None) -> None:
        self.clock = clock
        self.pid = int(pid) if pid is not None else os.getpid()
        self.roots: list[Span] = []
        self._epoch = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: dict[int, int] = {}

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> Span:
        """A new span context manager; nest freely inside other spans."""
        return Span(self, name, attrs)

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = self._tids[ident] = len(self._tids) + 1
            return tid

    def _enter(self, span_: Span) -> None:
        stack = self._stack()
        span_.tid = self._tid()
        span_.t_start = self.clock() - self._epoch
        if stack:
            stack[-1].children.append(span_)
        else:
            with self._lock:
                self.roots.append(span_)
        stack.append(span_)

    def _exit(self, span_: Span) -> None:
        span_.t_end = self.clock() - self._epoch
        stack = self._stack()
        if stack and stack[-1] is span_:
            stack.pop()
        elif span_ in stack:
            # Mis-nested exit (exceptions unwound out of order): pop
            # through to this span so the stack stays consistent.
            while stack and stack[-1] is not span_:
                stack.pop()
            if stack:
                stack.pop()

    # ------------------------------------------------------------------
    def to_dicts(self) -> list:
        """Every root span as a nested plain dict (JSON-ready)."""
        with self._lock:
            roots = list(self.roots)
        return [root.to_dict() for root in roots]

    def _walk(self):
        with self._lock:
            pending = list(self.roots)
        while pending:
            span_ = pending.pop(0)
            yield span_
            pending[0:0] = span_.children

    def chrome_trace(self) -> dict:
        """The span tree as a Chrome ``trace_event`` document.

        Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` with
        one complete (``"ph": "X"``) event per closed span; timestamps
        and durations are microseconds relative to tracer construction.
        Load the JSON in ``chrome://tracing`` or Perfetto.
        """
        events = []
        for span_ in self._walk():
            if span_.t_start is None or span_.t_end is None:
                continue
            event = {
                "name": span_.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(span_.t_start * 1e6, 3),
                "dur": round(span_.duration * 1e6, 3),
                "pid": self.pid,
                "tid": span_.tid,
            }
            args = dict(span_.attrs)
            if span_.error is not None:
                args["error"] = span_.error
            if args:
                event["args"] = args
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        """Serialise :meth:`chrome_trace` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1, default=str)

    # ------------------------------------------------------------------
    def install(self) -> "Tracer":
        """Make this the process-wide active tracer."""
        global _ACTIVE
        with _ACTIVE_LOCK:
            if _ACTIVE is not None and _ACTIVE is not self:
                raise RuntimeError("another Tracer is already active")
            _ACTIVE = self
        return self

    def uninstall(self) -> None:
        """Deactivate tracing (idempotent)."""
        global _ACTIVE
        with _ACTIVE_LOCK:
            if _ACTIVE is self:
                _ACTIVE = None

    def __enter__(self) -> "Tracer":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()


#: The active tracer (``None`` = tracing disabled, the production
#: default).  A single global keeps the disabled-path cost at one load
#: and one identity comparison, same as the fault-injection layer.
_ACTIVE: Tracer | None = None
_ACTIVE_LOCK = threading.Lock()


def active_tracer() -> Tracer | None:
    """The currently installed tracer, or ``None``."""
    return _ACTIVE


def install_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` process-wide (raises if another is active)."""
    return tracer.install()


def uninstall_tracer(tracer: Tracer | None = None) -> None:
    """Uninstall ``tracer`` (or whatever is active when ``None``)."""
    global _ACTIVE
    if tracer is not None:
        tracer.uninstall()
        return
    with _ACTIVE_LOCK:
        _ACTIVE = None


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Context manager installing ``tracer`` (a fresh one when ``None``).

    Yields the tracer so callers can export after the block::

        with tracing() as tracer:
            build_plan(csr)
        tracer.write_chrome_trace("plan.trace.json")
    """
    tracer = tracer if tracer is not None else Tracer()
    tracer.install()
    try:
        yield tracer
    finally:
        tracer.uninstall()


def span(name: str, **attrs):
    """Open a span on the active tracer; a shared no-op when tracing is off.

    This is the instrumentation entry point used across the library.  The
    disabled path is one module-global check returning a singleton, so
    warm paths (kernel sessions, clustering loops) may call it freely.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


if os.environ.get(ENV_VAR, "") not in ("", "0"):
    install_tracer(Tracer())
