"""Process-global metrics registry: counters, gauges, histograms.

The paper's argument is a data-movement accounting story, so the repo's
moving parts (plan cache, workspace pool, resilience ladder, GPU cost
model, clustering) each grew ad-hoc counters.  This module replaces them
with one :class:`MetricsRegistry` of *named instruments* so a single
snapshot answers "what did this process do" — while per-object counters
(a pool's own hit count, one store's miss count) survive as *children*
that feed the global aggregate.

Design notes
------------
* Zero dependencies; plain ``threading.Lock`` per instrument.
* :class:`Counter` is monotonic — negative increments raise.  A counter
  created via :meth:`Counter.child` increments itself *and* its parent,
  which is how :class:`~repro.util.workspace.WorkspacePool` keeps its
  per-pool ``stats()`` while ``workspace.hit``/``workspace.miss`` roll up
  globally.
* :class:`Histogram` records count / sum / min / max plus bucketed counts
  against fixed upper bounds, so ``sum``/``count`` consistency is a
  testable invariant (see ``tests/property/test_trace_invariants.py``).
* ``METRICS`` is the process-global registry.  ``registry.counter(name)``
  is get-or-create: modules may declare the same instrument independently
  and receive the same object.

Instrument catalogue (see ``docs/OBSERVABILITY.md``):

=============================== ==========================================
``planstore.hit/miss/put/evict`` cache-tier traffic (memory + disk tiers)
``planstore.quarantine``         corrupt plan files moved aside
``workspace.hit/miss/evict``     scratch-pool reuse
``workspace.fallback``           session runs that bypassed the pool
``resilience.fault_fired``       injected faults that actually fired
``resilience.retry``             transient-IO retry attempts
``resilience.degradation_rung``  plan builds settled below the full rung
``kernels.backend_compile``      compiled-kernel artifacts built (cache misses)
``kernels.backend_fallback``     backend requests degraded to the numpy reference
``gpu.global_txns``              modelled DRAM transactions
``gpu.l2_hits``                  modelled L2 hits
``gpu.shm_bytes``                bytes staged through shared memory
``clustering.pairs_scored``      similarity evaluations during clustering
``clustering.heap_requeues``     stale heap entries re-scored
``retry.sleep_s``                histogram of seconds slept between retries
``serve.requests/errors``        protocol requests handled / answered error
``serve.admitted``               requests past admission control
``serve.rejected_overload``      rejections at the in-flight bound
``serve.rejected_quota``         rejections by a tenant token bucket
``serve.in_flight``              gauge of admitted requests in flight
``serve.pool_hit/miss/evict``    warm-session pool traffic
``serve.pool_size/pool_pinned``  gauges of resident / serving sessions
``serve.shed_degraded``          requests served below the full rung
``serve.rung``                   gauge of the last-planned ladder rung
``serve.breaker_trip``           compile circuit-breaker open transitions
``serve.coalesced``              requests riding a coalesced batch
``serve.latency_s``              histogram of admitted spmm latency
=============================== ==========================================
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
]

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Counter:
    """Monotonic counter; optionally a *child* that rolls up to a parent.

    >>> c = Counter("demo")
    >>> c.inc(); c.inc(2); c.value
    3
    >>> child = c.child()
    >>> child.inc(5)
    >>> (child.value, c.value)
    (5, 8)
    """

    __slots__ = ("name", "description", "_value", "_parent", "_lock")

    def __init__(self, name: str, description: str = "", *, parent: "Counter | None" = None) -> None:
        self.name = name
        self.description = description
        self._value = 0
        self._parent = parent
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative: counters are monotonic)."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc({n}))")
        with self._lock:
            self._value += n
        if self._parent is not None:
            self._parent.inc(n)

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value

    def child(self) -> "Counter":
        """A per-object counter whose increments also roll up to this one."""
        return Counter(self.name, self.description, parent=self)

    def reset(self) -> None:
        """Zero this counter only (children and parents are untouched)."""
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that can go up and down (e.g. bytes currently held).

    >>> g = Gauge("demo"); g.set(10); g.add(-3); g.value
    7
    """

    __slots__ = ("name", "description", "_value", "_lock")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        """Shift the current value by ``delta`` (may be negative)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Reset to zero."""
        with self._lock:
            self._value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Count/sum/min/max plus bucketed counts against fixed bounds.

    Observations land in the first bucket whose upper bound is >= the
    value; values above every bound land in the overflow bucket (``inf``).
    ``sum(buckets.values()) == count`` always holds.

    >>> h = Histogram("demo", bounds=(1.0, 10.0))
    >>> h.observe(0.5); h.observe(5.0); h.observe(50.0)
    >>> snap = h.snapshot()
    >>> (snap["count"], snap["sum"])
    (3, 55.5)
    """

    __slots__ = ("name", "description", "bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, description: str = "", *, bounds: tuple = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.description = description
        self.bounds = tuple(sorted(float(b) for b in bounds))
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of observations."""
        with self._lock:
            return self._sum

    def snapshot(self) -> dict:
        """Plain-dict view: count, sum, min, max and per-bucket counts."""
        with self._lock:
            buckets = {}
            for bound, n in zip(self.bounds, self._counts):
                buckets[str(bound)] = n
            buckets["inf"] = self._counts[-1]
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": buckets,
            }

    def reset(self) -> None:
        """Drop every observation."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Instruments are keyed by name; re-requesting a name returns the same
    object, and requesting an existing name as a different instrument
    type raises ``TypeError``.  One process-global instance lives at
    :data:`METRICS`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _get_or_create(self, name, kind, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"instrument {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """Get-or-create the :class:`Counter` called ``name``."""
        return self._get_or_create(name, Counter, lambda: Counter(name, description))

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get-or-create the :class:`Gauge` called ``name``."""
        return self._get_or_create(name, Gauge, lambda: Gauge(name, description))

    def histogram(self, name: str, description: str = "", *, bounds: tuple = DEFAULT_BUCKETS) -> Histogram:
        """Get-or-create the :class:`Histogram` called ``name``."""
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, description, bounds=bounds)
        )

    def instruments(self) -> dict:
        """Name -> instrument mapping (a shallow copy)."""
        with self._lock:
            return dict(self._instruments)

    def snapshot(self) -> dict:
        """Name -> value mapping: ints for counters, floats for gauges, dicts for histograms."""
        out = {}
        for name, instrument in sorted(self.instruments().items()):
            if isinstance(instrument, Histogram):
                out[name] = instrument.snapshot()
            else:
                out[name] = instrument.value
        return out

    def reset(self) -> None:
        """Zero every registered instrument (registrations are kept).

        Per-object child counters are unaffected; only the global
        aggregates restart.  Intended for tests and between sweep runs.
        """
        for instrument in self.instruments().values():
            instrument.reset()


#: The process-global registry every repro subsystem reports into.
METRICS = MetricsRegistry()
