"""Text rendering of a trace: a flamegraph-ish per-stage summary.

``repro trace`` prints this after writing the Chrome JSON so the stage
breakdown is readable without opening Perfetto: one line per span,
indented by depth, with duration, share of the root span, and a crude
bar proportional to that share.
"""

from __future__ import annotations

__all__ = ["trace_summary", "format_metrics"]

_BAR_WIDTH = 30


def _render(span_dict: dict, root_duration: float, depth: int, lines: list) -> None:
    duration = span_dict.get("duration_s") or 0.0
    share = duration / root_duration if root_duration > 0 else 0.0
    bar = "#" * max(1, round(share * _BAR_WIDTH)) if duration > 0 else ""
    name = "  " * depth + span_dict["name"]
    error = span_dict.get("error")
    suffix = f"  [error: {error}]" if error else ""
    lines.append(f"{name:<34} {duration * 1e3:>10.3f} ms {share:>6.1%}  {bar}{suffix}")
    for child in span_dict.get("children", ()):
        _render(child, root_duration, depth + 1, lines)


def trace_summary(tracer) -> str:
    """Render a tracer's span trees as an indented text flamegraph.

    One line per span: name (indented by nesting depth), wall-clock
    milliseconds, percentage of its root span, and a proportional bar.
    Accepts a :class:`~repro.observability.Tracer` (or any object with a
    compatible ``to_dicts()``).
    """
    lines: list[str] = []
    roots = tracer.to_dicts()
    if not roots:
        return "(no spans recorded)"
    header = f"{'span':<34} {'duration':>13} {'share':>6}"
    lines.append(header)
    lines.append("-" * len(header))
    for root in roots:
        root_duration = root.get("duration_s") or 0.0
        _render(root, root_duration, 0, lines)
    return "\n".join(lines)


def format_metrics(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as aligned text lines.

    Histogram entries render as ``count/sum``; counters and gauges as
    their value.  Zero-valued instruments are skipped so the report only
    shows what actually happened.
    """
    lines = []
    for name, value in sorted(snapshot.items()):
        if isinstance(value, dict):
            if not value.get("count"):
                continue
            rendered = f"count={value['count']} sum={value['sum']:.6g}"
        else:
            if not value:
                continue
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
        lines.append(f"{name:<34} {rendered}")
    return "\n".join(lines) if lines else "(no activity recorded)"
