"""Pinned perf micro-suite and regression gate.

Two suites, chosen to cover the two hot paths this library optimises:

``kernels``
    Steady-state SpMM — the same matrix multiplied repeatedly at K=512 —
    one-shot vs :class:`~repro.kernels.KernelSession`, for both the flat
    CSR kernel and the ASpT tiled kernel.
``preproc``
    The reorder preprocessing pipeline: MinHash signatures, the
    clustering loop over LSH candidates (the stage the batch-scored
    rewrite targets) and an end-to-end :func:`~repro.reorder.build_plan`.

Each suite produces a ``BENCH_<name>.json`` document::

    {"name": ..., "quick": ..., "workload": {...},
     "metrics":  {"<metric>": {"median_ms", "p95_ms", "alloc_peak_bytes"}},
     "speedups": {"<ratio>": ...},        # gated (within-run ratios)
     "reference": {...}}                  # informational, never gated

``metrics`` are wall-clock timings (lower is better; allocation peaks are
measured with :mod:`tracemalloc` on a separate, untimed call) and
``speedups`` are dimensionless ratios measured within the same run
(higher is better) — ratios stay comparable across machines, which is
what makes the gate usable in CI.  The gate re-runs a suite and fails
when a metric median exceeds the committed baseline by more than the
tolerance, or a speedup falls below it by more than the tolerance.

Determinism note: workloads, seeds and operand shapes are pinned, so two
runs on one machine differ only by scheduler noise; the default 25%
tolerance absorbs that comfortably for the >10 ms metrics gated here.
"""

from __future__ import annotations

import json
import statistics
import time
import tracemalloc
from pathlib import Path

import numpy as np

__all__ = [
    "DEFAULT_TOLERANCE",
    "SUITES",
    "baseline_path",
    "compare_results",
    "format_report",
    "run_gate",
    "run_suite",
]

#: Default allowed relative drift before the gate fails.
DEFAULT_TOLERANCE = 0.25


# ----------------------------------------------------------------------
# measurement helpers
def _timed(fn, repeats: int, warmup: int = 2, clock=time.perf_counter) -> dict:
    """Median / p95 wall-clock of ``fn()`` over ``repeats`` samples."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = clock()
        fn()
        samples.append((clock() - t0) * 1e3)
    samples.sort()
    p95_index = max(0, int(np.ceil(0.95 * len(samples))) - 1)
    return {
        "median_ms": round(statistics.median(samples), 4),
        "p95_ms": round(samples[p95_index], 4),
        "repeats": repeats,
    }


def _alloc_peak_bytes(fn) -> int:
    """Peak bytes allocated during one (untimed) ``fn()`` call."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def _metric(fn, repeats: int) -> dict:
    out = _timed(fn, repeats)
    out["alloc_peak_bytes"] = _alloc_peak_bytes(fn)
    return out


# ----------------------------------------------------------------------
# suites
def _suite_kernels(quick: bool, backend: str = "numpy") -> dict:
    from repro.aspt import tile_matrix
    from repro.datasets import hidden_clusters
    from repro.kernels import KernelSession, spmm, spmm_tiled

    repeats = 5 if quick else 9
    k = 512
    matrix = hidden_clusters(200, 8, 4096, 20, noise=0.1, seed=0)
    X = np.random.default_rng(0).normal(size=(matrix.n_cols, k))
    tiled = tile_matrix(matrix, 16, 2)

    session = KernelSession(matrix)
    tiled_session = KernelSession(tiled)
    # Warm the pinned scratch before any measurement so the steady state
    # is what gets timed (the first call pays the pool misses).
    session.run(X)
    tiled_session.run(X)

    metrics = {
        "spmm_oneshot": _metric(lambda: spmm(matrix, X), repeats),
        "spmm_session": _metric(lambda: session.run(X), repeats),
        "spmm_tiled_oneshot": _metric(lambda: spmm_tiled(tiled, X), repeats),
        "spmm_tiled_session": _metric(lambda: tiled_session.run(X), repeats),
    }
    # Traced variant of the session cell: the same workload under an
    # installed tracer.  Its drift is gated like every other metric, so a
    # regression in the *enabled* tracing path is caught here while the
    # disabled-path budget is asserted by benchmarks/bench_observability.
    from repro.observability import Tracer, tracing

    with tracing(Tracer()):
        tiled_session.run(X)  # warm under the tracer
        metrics["spmm_tiled_session_traced"] = _metric(
            lambda: tiled_session.run(X), repeats
        )
    speedups = {
        "spmm_session_vs_oneshot": round(
            metrics["spmm_oneshot"]["median_ms"]
            / metrics["spmm_session"]["median_ms"],
            3,
        ),
        "spmm_tiled_session_vs_oneshot": round(
            metrics["spmm_tiled_oneshot"]["median_ms"]
            / metrics["spmm_tiled_session"]["median_ms"],
            3,
        ),
    }
    workload = {
        "matrix": "hidden_clusters(200, 8, 4096, 20, noise=0.1, seed=0)",
        "n_rows": matrix.n_rows,
        "nnz": matrix.nnz,
        "k": k,
        "panel": "tile_matrix(matrix, 16, 2)",
        "backend": backend,
    }
    # Backend dimension: with ``--backend <name>`` the suite additionally
    # measures the compiled backend's one-shot and steady-state cells and
    # the within-run cross-backend speedups.  The numpy cells above keep
    # their names, so a backend run's document still gates every numpy
    # cell of the committed baseline (adding cells never regresses the
    # gate retroactively — `compare_results` skips one-sided metrics).
    # If the requested backend degrades on this machine, the cells are
    # *omitted* rather than silently measuring numpy twice.
    if backend != "numpy":
        from repro.kernels.backends import resolve_backend

        resolved, provenance = resolve_backend(backend, warn=False)
        if resolved.name != backend:
            workload["backend_degraded"] = list(provenance)
        else:
            backend_session = KernelSession(matrix, backend=backend)
            backend_session.run(X)  # warm scratch + compiled artifact
            metrics[f"spmm_oneshot@{backend}"] = _metric(
                lambda: spmm(matrix, X, backend=backend), repeats
            )
            metrics[f"spmm_session@{backend}"] = _metric(
                lambda: backend_session.run(X), repeats
            )
            speedups[f"spmm_oneshot_{backend}_vs_numpy"] = round(
                metrics["spmm_oneshot"]["median_ms"]
                / metrics[f"spmm_oneshot@{backend}"]["median_ms"],
                3,
            )
            speedups[f"spmm_session_{backend}_vs_numpy"] = round(
                metrics["spmm_session"]["median_ms"]
                / metrics[f"spmm_session@{backend}"]["median_ms"],
                3,
            )
    return {
        "name": "kernels",
        "quick": quick,
        "workload": workload,
        "metrics": metrics,
        "speedups": speedups,
    }


def _suite_preproc(quick: bool, backend: str = "numpy") -> dict:
    # ``backend`` is accepted for a uniform runner signature but ignored:
    # preprocessing is pure pipeline work, no kernel backend is involved.
    del backend
    from repro.clustering import cluster_rows
    from repro.datasets import bipartite_ratings
    from repro.reorder import ReorderConfig, build_plan
    from repro.similarity import LSHIndex, minhash_signatures

    from repro.streaming import DeltaBatch, LshState, apply_delta

    repeats = 3 if quick else 7
    matrix = bipartite_ratings(
        2048, 2048, 20, n_taste_groups=64, concentration=0.95, seed=7
    )
    index = LSHIndex()
    pairs, sims = index.candidate_pairs(matrix)

    metrics = {
        "minhash": _metric(
            lambda: minhash_signatures(matrix, index.siglen, seed=index.seed),
            repeats,
        ),
        "cluster": _metric(
            lambda: cluster_rows(matrix, pairs, sims, threshold_size=256),
            repeats,
        ),
        "build_plan": _metric(
            lambda: build_plan(matrix, ReorderConfig()), max(2, repeats - 3)
        ),
    }
    # Streaming cells: one value-only set-delta (overwrite existing
    # entries, ~2% of the rows dirty) absorbed by the incremental patch
    # vs a full from-scratch rebuild of the mutated matrix.  The ISSUE-10
    # acceptance bar (patch measurably faster at <= 5% dirt) lives in the
    # gated ``plan_patch_vs_rebuild`` speedup below.
    config = ReorderConfig()
    plan0 = build_plan(matrix, config)
    state0 = (
        LshState.build(matrix, config) if plan0.stats.round1_applied else None
    )
    rng = np.random.default_rng(11)
    n_dirty = max(1, matrix.nnz // 1000)
    idx = np.sort(rng.choice(matrix.nnz, size=n_dirty, replace=False))
    delta = DeltaBatch(
        rows=matrix.row_ids()[idx],
        cols=matrix.colidx[idx],
        values=rng.normal(size=n_dirty),
        mode="set",
    )
    mutated = delta.apply_to(matrix)
    plan_repeats = max(2, repeats - 3)
    metrics["plan_patch"] = _metric(
        lambda: apply_delta(plan0, delta, config, state=state0), plan_repeats
    )
    metrics["plan_rebuild"] = _metric(
        lambda: build_plan(mutated, config), plan_repeats
    )
    stage_ms = round(
        metrics["minhash"]["median_ms"] + metrics["cluster"]["median_ms"], 4
    )
    metrics["stage"] = {
        "median_ms": stage_ms,
        "p95_ms": round(
            metrics["minhash"]["p95_ms"] + metrics["cluster"]["p95_ms"], 4
        ),
        "repeats": repeats,
        "alloc_peak_bytes": max(
            metrics["minhash"]["alloc_peak_bytes"],
            metrics["cluster"]["alloc_peak_bytes"],
        ),
    }
    # Reference medians measured on the pre-rewrite implementations (same
    # machine, same workload, commit 5539229) — kept so the trajectory
    # file records the speedup the batch-scored rewrite bought.  This is
    # an *absolute* cross-machine reference, so it lives under
    # ``reference`` (informational), not ``speedups`` (gated): a slower
    # CI runner must not fail the gate for taking longer than the
    # machine the reference was measured on.
    pre_pr = {"minhash": 26.7, "cluster": 175.8, "stage": 202.4}
    return {
        "name": "preproc",
        "quick": quick,
        "workload": {
            "matrix": "bipartite_ratings(2048, 2048, 20, n_taste_groups=64, "
            "concentration=0.95, seed=7)",
            "n_rows": matrix.n_rows,
            "nnz": matrix.nnz,
            "lsh": "LSHIndex() defaults",
            "n_candidate_pairs": int(pairs.shape[0]),
            "delta": f"set-delta, {n_dirty} existing entries overwritten "
            "(~0.1% nnz), seed 11",
        },
        "metrics": metrics,
        "speedups": {
            "plan_patch_vs_rebuild": round(
                metrics["plan_rebuild"]["median_ms"]
                / metrics["plan_patch"]["median_ms"],
                3,
            ),
        },
        "reference": {
            "pre_pr_median_ms": pre_pr,
            "stage_vs_pre_pr": round(pre_pr["stage"] / stage_ms, 3),
        },
    }


#: Registered suites: name -> runner(quick, backend) -> result document.
SUITES = {"kernels": _suite_kernels, "preproc": _suite_preproc}


def run_suite(name: str, *, quick: bool = False, backend: str = "numpy") -> dict:
    """Run one registered suite and return its result document.

    ``backend`` selects the compiled kernel backend dimension
    (:mod:`repro.kernels.backends`); suites without kernel cells ignore
    it.
    """
    try:
        suite = SUITES[name]
    except KeyError:
        raise ValueError(
            f"unknown bench suite {name!r}; expected one of {sorted(SUITES)}"
        ) from None
    return suite(quick, backend)


# ----------------------------------------------------------------------
# gating
def baseline_path(name: str, directory) -> Path:
    """Path of the committed baseline document for suite ``name``."""
    return Path(directory) / f"BENCH_{name}.json"


def compare_results(
    baseline: dict, current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[dict]:
    """Compare a fresh suite run against its baseline document.

    Returns one row per shared metric/speedup with the relative drift and
    a ``regressed`` flag: a timing regresses when its median grows past
    ``baseline * (1 + tolerance)``, a speedup when it falls below
    ``baseline * (1 - tolerance)``.  Metrics present on only one side are
    skipped — adding a metric must not fail the gate retroactively.
    """
    rows = []
    base_metrics = baseline.get("metrics", {})
    for key, cur in current.get("metrics", {}).items():
        base = base_metrics.get(key)
        if base is None:
            continue
        ratio = cur["median_ms"] / base["median_ms"] if base["median_ms"] else 1.0
        rows.append(
            {
                "kind": "metric",
                "name": key,
                "baseline": base["median_ms"],
                "current": cur["median_ms"],
                "ratio": round(ratio, 3),
                "regressed": ratio > 1.0 + tolerance,
            }
        )
    base_speedups = baseline.get("speedups", {})
    for key, cur_value in current.get("speedups", {}).items():
        base_value = base_speedups.get(key)
        if base_value is None:
            continue
        ratio = cur_value / base_value if base_value else 1.0
        rows.append(
            {
                "kind": "speedup",
                "name": key,
                "baseline": base_value,
                "current": cur_value,
                "ratio": round(ratio, 3),
                "regressed": ratio < 1.0 - tolerance,
            }
        )
    return rows


def format_report(name: str, rows: list[dict], tolerance: float) -> str:
    """Human-readable comparison table for one suite."""
    lines = [f"suite {name} (tolerance {tolerance:.0%}):"]
    for row in rows:
        unit = "ms" if row["kind"] == "metric" else "x"
        verdict = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"  {row['name']:<32} {row['baseline']:>10.3f}{unit} -> "
            f"{row['current']:>10.3f}{unit}  ({row['ratio']:.3f})  {verdict}"
        )
    if not rows:
        lines.append("  (no shared metrics to compare)")
    return "\n".join(lines)


def run_gate(
    names=None,
    *,
    quick: bool = False,
    tolerance: float = DEFAULT_TOLERANCE,
    baseline_dir=".",
    out_dir=None,
    update_baseline: bool = False,
    backend: str = "numpy",
) -> tuple[int, str]:
    """Run suites, write fresh ``BENCH_*.json`` files, gate on baselines.

    Parameters
    ----------
    names:
        Suites to run (default: all registered).
    quick:
        Fewer repetitions per metric — noisier medians, same workloads.
    tolerance:
        Allowed relative drift (see :func:`compare_results`).
    baseline_dir:
        Directory holding the committed ``BENCH_<name>.json`` baselines.
    out_dir:
        Where fresh result documents are written (defaults to
        ``baseline_dir`` when updating the baseline, otherwise nowhere —
        pass a directory to keep artifacts, e.g. for CI upload).
    update_baseline:
        Overwrite the baselines with the fresh numbers instead of gating.
    backend:
        Compiled kernel backend dimension, threaded to every suite (see
        :func:`run_suite`).

    Returns
    -------
    tuple[int, str]
        Process exit code (1 on any regression, 0 otherwise) and the
        formatted report text.
    """
    names = list(names) if names else sorted(SUITES)
    chunks = []
    failed = False
    for name in names:
        result = run_suite(name, quick=quick, backend=backend)
        target = None
        if update_baseline:
            target = baseline_path(name, out_dir or baseline_dir)
        elif out_dir is not None:
            target = baseline_path(name, out_dir)
        if target is not None:
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(json.dumps(result, indent=1) + "\n", encoding="utf-8")
            chunks.append(f"wrote {target}")
        if update_baseline:
            continue
        base_file = baseline_path(name, baseline_dir)
        if not base_file.exists():
            chunks.append(
                f"suite {name}: no baseline at {base_file} — run with "
                "--update-baseline to create it"
            )
            failed = True
            continue
        baseline = json.loads(base_file.read_text(encoding="utf-8"))
        rows = compare_results(baseline, result, tolerance)
        chunks.append(format_report(name, rows, tolerance))
        if any(row["regressed"] for row in rows):
            failed = True
    return (1 if failed else 0), "\n".join(chunks)
