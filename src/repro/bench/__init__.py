"""Perf-regression gating for the library's own hot paths.

:mod:`repro.bench.gate` runs a pinned micro-suite (steady-state kernels,
end-to-end reorder preprocessing), writes ``BENCH_<name>.json`` trajectory
files and compares fresh numbers against the committed baselines — see
``docs/PERFORMANCE.md`` for how to run and read it.
"""

from repro.bench.gate import SUITES, compare_results, run_gate, run_suite

__all__ = ["SUITES", "compare_results", "run_gate", "run_suite"]
