"""Dependency-free SVG renderers for the paper figures.

The experiment harness emits raw data series; this package turns them into
publication-ready SVG files without any plotting library.  The visual
system follows a validated reference palette and fixed mark specification
(2 px lines, >= 8 px markers with a 2 px surface ring, hairline gridlines,
legend for two or more series, clean-number ticks, one axis per chart);
categorical colors are assigned to *entities* (kernel variants) in a fixed
order so the same variant wears the same hue in every figure.

Entry points: :func:`svg_scatter`, :func:`svg_lines`, :func:`svg_bars`,
plus ``repro figure N --svg out.svg`` on the CLI.
"""

from repro.viz.figures import figure_svg
from repro.viz.svg import (
    PALETTE,
    PALETTE_DARK,
    SvgCanvas,
    get_palette,
    nice_ticks,
    svg_bars,
    svg_lines,
    svg_scatter,
)

__all__ = [
    "figure_svg",
    "PALETTE",
    "PALETTE_DARK",
    "get_palette",
    "SvgCanvas",
    "nice_ticks",
    "svg_bars",
    "svg_lines",
    "svg_scatter",
]
