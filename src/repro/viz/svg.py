"""SVG chart primitives and the three chart forms the figures need.

Visual contract (fixed; see the package docstring):

* **Palette** — the validated reference categorical palette, slots assigned
  to entities in fixed order (never cycled past slot 8; callers with more
  series must fold into "other").  Marks carry the series color; all text
  wears text tokens (primary/secondary), never a series hue.
* **Marks** — lines 2 px with round joins; markers r >= 4 with a 2 px
  surface-colored ring; bars <= 24 px with a 2 px surface gap.
* **Axes** — one y-axis, hairline solid gridlines one step off the
  surface, clean-number ticks (:func:`nice_ticks`).
* **Identity** — a legend whenever two or more series are drawn; scatter
  classes additionally differ in marker *shape* so identity survives
  grayscale and CVD.
* **Hover** — every mark ships a native SVG ``<title>`` tooltip.
* **Relief rule** — three palette slots (aqua/yellow/magenta) sit below
  3:1 contrast on the light surface; every figure therefore ships with a
  sibling table view (the ``text`` field of the same figure dict, and the
  ``--json`` export) plus end markers and tooltips, so no value is gated
  behind those hues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from xml.sax.saxutils import escape

import numpy as np

__all__ = ["PALETTE", "PALETTE_DARK", "get_palette", "SvgCanvas", "nice_ticks", "svg_scatter", "svg_lines", "svg_bars"]

#: Validated reference palette (light mode).  Categorical slots are in the
#: CVD-optimised fixed order; ``surface``/``grid``/text tokens complete the
#: system.  Swap these values to rebrand; the chart code reads roles only.
PALETTE = {
    "series": [
        "#2a78d6",  # 1 blue
        "#1baf7a",  # 2 aqua
        "#eda100",  # 3 yellow
        "#008300",  # 4 green
        "#4a3aa7",  # 5 violet
        "#e34948",  # 6 red
        "#e87ba4",  # 7 magenta
        "#eb6834",  # 8 orange
    ],
    "surface": "#fcfcfb",
    "grid": "#e9e7e2",
    "text_primary": "#0b0b0b",
    "text_secondary": "#52514e",
}

#: Dark-mode palette: the same eight hues *re-stepped for the dark
#: surface* (selected, per the method — never an automatic flip of the
#: light values).
PALETTE_DARK = {
    "series": [
        "#3987e5",  # 1 blue
        "#199e70",  # 2 aqua
        "#c98500",  # 3 yellow
        "#008300",  # 4 green
        "#9085e9",  # 5 violet
        "#e66767",  # 6 red
        "#d55181",  # 7 magenta
        "#d95926",  # 8 orange
    ],
    "surface": "#1a1a19",
    "grid": "#32312f",
    "text_primary": "#ffffff",
    "text_secondary": "#c3c2b7",
}


def get_palette(mode: str = "light") -> dict:
    """Role palette for ``mode`` ("light" or "dark")."""
    if mode == "light":
        return PALETTE
    if mode == "dark":
        return PALETTE_DARK
    raise ValueError(f"mode must be 'light' or 'dark', got {mode!r}")

_FONT = "font-family='Helvetica,Arial,sans-serif'"


def nice_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    """Clean-number tick positions covering ``[lo, hi]``.

    Classic 1/2/5 ladder: the step is the member of
    ``{1, 2, 5} * 10^k`` whose count lands nearest ``target``.
    """
    if not math.isfinite(lo) or not math.isfinite(hi):
        return [0.0]
    if hi < lo:
        lo, hi = hi, lo
    if hi == lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(target, 1)
    if raw_step <= 0.0:
        # Subnormal ranges underflow the division to exactly 0.0; treat the
        # interval as degenerate rather than feeding log10(0).
        return [lo, hi]
    power = 10.0 ** math.floor(math.log10(raw_step))
    step = min((m * power for m in (1.0, 2.0, 5.0, 10.0)),
               key=lambda s: abs((hi - lo) / s - target))
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 1e-9:
        if t >= lo - step * 1e-9:
            ticks.append(round(t, 10))
        nxt = t + step
        if nxt == t:
            # step is below ulp(t): float addition can no longer advance
            # (huge magnitude, tiny span) and the loop would never end.
            break
        t = nxt
    return ticks or [lo]


def _fmt(v: float) -> str:
    """Tick label formatting: thousands commas, trim trailing zeros."""
    if abs(v) >= 1000 and float(v).is_integer():
        return f"{int(v):,}"
    if float(v).is_integer():
        return str(int(v))
    return f"{v:.4g}"


@dataclass
class SvgCanvas:
    """Minimal SVG document builder (primitives only, no layout logic)."""

    width: int
    height: int
    elements: list = field(default_factory=list)
    palette: dict = field(default_factory=lambda: PALETTE)

    def rect(self, x, y, w, h, fill, rx=0.0, title=None) -> None:
        """Axis-aligned rectangle (bars, swatches, background)."""
        t = f"<title>{escape(title)}</title>" if title else ""
        self.elements.append(
            f"<rect x='{x:.2f}' y='{y:.2f}' width='{w:.2f}' height='{h:.2f}'"
            f" rx='{rx:.2f}' fill='{fill}'>{t}</rect>"
            if t else
            f"<rect x='{x:.2f}' y='{y:.2f}' width='{w:.2f}' height='{h:.2f}'"
            f" rx='{rx:.2f}' fill='{fill}'/>"
        )

    def line(self, x1, y1, x2, y2, stroke, width=1.0) -> None:
        """Straight segment (gridlines, leader lines)."""
        self.elements.append(
            f"<line x1='{x1:.2f}' y1='{y1:.2f}' x2='{x2:.2f}' y2='{y2:.2f}'"
            f" stroke='{stroke}' stroke-width='{width}'/>"
        )

    def polyline(self, points, stroke, width=2.0) -> None:
        """Open path with round joins (the 2 px series line)."""
        pts = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self.elements.append(
            f"<polyline points='{pts}' fill='none' stroke='{stroke}'"
            f" stroke-width='{width}' stroke-linejoin='round'"
            f" stroke-linecap='round'/>"
        )

    def circle(self, cx, cy, r, fill, ring=None, title=None) -> None:
        """Marker dot; ``ring`` draws the 2 px surface ring."""
        stroke = f" stroke='{ring}' stroke-width='2'" if ring else ""
        t = f"<title>{escape(title)}</title>" if title else ""
        body = f"<circle cx='{cx:.2f}' cy='{cy:.2f}' r='{r:.2f}' fill='{fill}'{stroke}>"
        self.elements.append(f"{body}{t}</circle>" if t else body[:-1] + "/>")

    def diamond(self, cx, cy, r, fill, ring=None, title=None) -> None:
        """Diamond marker (secondary shape encoding for scatter classes)."""
        pts = f"{cx:.2f},{cy - r:.2f} {cx + r:.2f},{cy:.2f} {cx:.2f},{cy + r:.2f} {cx - r:.2f},{cy:.2f}"
        stroke = f" stroke='{ring}' stroke-width='2'" if ring else ""
        t = f"<title>{escape(title)}</title>" if title else ""
        body = f"<polygon points='{pts}' fill='{fill}'{stroke}>"
        self.elements.append(f"{body}{t}</polygon>" if t else body[:-1] + "/>")

    def text(self, x, y, content, size=11, fill=None, anchor="start", weight="normal") -> None:
        """Text in a text token (never a series hue)."""
        fill = fill or self.palette["text_secondary"]
        self.elements.append(
            f"<text x='{x:.2f}' y='{y:.2f}' font-size='{size}' {_FONT}"
            f" fill='{fill}' text-anchor='{anchor}'"
            f" font-weight='{weight}'>{escape(str(content))}</text>"
        )

    def to_string(self) -> str:
        """Serialise the document."""
        body = "\n".join(self.elements)
        return (
            f"<svg xmlns='http://www.w3.org/2000/svg' width='{self.width}'"
            f" height='{self.height}' viewBox='0 0 {self.width} {self.height}'>\n"
            f"<rect width='{self.width}' height='{self.height}'"
            f" fill='{self.palette['surface']}'/>\n{body}\n</svg>\n"
        )

    def save(self, path) -> None:
        """Write the document to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_string())


@dataclass
class _Frame:
    """Plot frame: margins, scales, axes and gridlines."""

    canvas: SvgCanvas
    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float
    left: int = 64
    right: int = 16
    top: int = 40
    bottom: int = 44

    def sx(self, x: float) -> float:
        """Data x -> pixel x."""
        span = (self.x_hi - self.x_lo) or 1.0
        return self.left + (x - self.x_lo) / span * (self.canvas.width - self.left - self.right)

    def sy(self, y: float) -> float:
        """Data y -> pixel y (inverted)."""
        span = (self.y_hi - self.y_lo) or 1.0
        return self.canvas.height - self.bottom - (y - self.y_lo) / span * (
            self.canvas.height - self.top - self.bottom
        )

    def draw_axes(self, title: str, x_label: str, y_label: str) -> None:
        """Title, hairline gridlines at clean ticks, tick labels."""
        c = self.canvas
        pal = c.palette
        c.text(self.left, 20, title, size=13, fill=pal["text_primary"], weight="bold")
        for t in nice_ticks(self.y_lo, self.y_hi):
            y = self.sy(t)
            c.line(self.left, y, c.width - self.right, y, pal["grid"], 1.0)
            c.text(self.left - 6, y + 3.5, _fmt(t), size=10, anchor="end")
        for t in nice_ticks(self.x_lo, self.x_hi):
            x = self.sx(t)
            c.text(x, c.height - self.bottom + 16, _fmt(t), size=10, anchor="middle")
        c.line(self.left, self.sy(self.y_lo), c.width - self.right,
               self.sy(self.y_lo), pal["grid"], 1.0)
        c.text((self.left + c.width - self.right) / 2, c.height - 8, x_label,
               size=11, anchor="middle")
        c.text(12, self.top - 10, y_label, size=11)

    def legend(self, entries: list[tuple[str, str]]) -> None:
        """Swatch + label row at the top right (for >= 2 series)."""
        c = self.canvas
        x = c.width - self.right
        for name, color in reversed(entries):
            w = 7 * len(name) + 22
            x -= w
            c.rect(x, 12, 10, 10, color, rx=2)
            c.text(x + 14, 21, name, size=10)


def svg_scatter(
    x: np.ndarray,
    y: np.ndarray,
    classes: list[str],
    *,
    title: str,
    x_label: str,
    y_label: str,
    width: int = 640,
    height: int = 420,
    mode: str = "light",
) -> str:
    """Scatter with categorical classes (color + marker shape + legend).

    ``classes[i]`` names point ``i``'s class; the first-seen class order
    assigns palette slots and alternating circle/diamond shapes.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    pal = get_palette(mode)
    canvas = SvgCanvas(width, height, palette=pal)
    if x.size == 0:
        canvas.text(width / 2, height / 2, "(no data)", anchor="middle")
        return canvas.to_string()
    pad = lambda lo, hi: ((lo - (hi - lo or 1.0) * 0.06), (hi + (hi - lo or 1.0) * 0.06))
    x_lo, x_hi = pad(float(x.min()), float(x.max()))
    y_lo, y_hi = pad(float(y.min()), float(y.max()))
    frame = _Frame(canvas, x_lo, x_hi, y_lo, y_hi)
    frame.draw_axes(title, x_label, y_label)

    order: list[str] = []
    for cls in classes:
        if cls not in order:
            order.append(cls)
    colors = {cls: pal["series"][i % 8] for i, cls in enumerate(order)}
    shapes = {cls: ("circle" if i % 2 == 0 else "diamond") for i, cls in enumerate(order)}
    for i in range(x.size):
        cls = classes[i]
        draw = canvas.circle if shapes[cls] == "circle" else canvas.diamond
        draw(
            frame.sx(x[i]), frame.sy(y[i]), 4.5, colors[cls],
            ring=pal["surface"],
            title=f"{cls}: ({x[i]:.3g}, {y[i]:.3g})",
        )
    if len(order) >= 2:
        frame.legend([(cls, colors[cls]) for cls in order])
    return canvas.to_string()


def svg_lines(
    series: dict[str, np.ndarray],
    *,
    title: str,
    x_label: str,
    y_label: str,
    width: int = 720,
    height: int = 420,
    log_y: bool = False,
    mode: str = "light",
) -> str:
    """Overlaid line series (2 px lines, end markers, legend, one y-axis).

    Series colors follow insertion order of ``series`` — callers assign
    entities to slots consistently across figures.
    """
    pal = get_palette(mode)
    canvas = SvgCanvas(width, height, palette=pal)
    series = {k: np.asarray(v, dtype=np.float64) for k, v in series.items()}
    series = {k: v for k, v in series.items() if v.size}
    if not series:
        canvas.text(width / 2, height / 2, "(no data)", anchor="middle")
        return canvas.to_string()
    plot = {
        k: (np.log10(np.maximum(v, 1e-300)) if log_y else v)
        for k, v in series.items()
    }
    all_y = np.concatenate(list(plot.values()))
    n = max(v.size for v in plot.values())
    frame = _Frame(canvas, 0.0, float(max(n - 1, 1)), float(all_y.min()), float(all_y.max()))
    frame.draw_axes(title + (" (log10 y)" if log_y else ""), x_label, y_label)

    entries = []
    for idx, (name, v) in enumerate(plot.items()):
        color = pal["series"][idx % 8]
        pts = [(frame.sx(i), frame.sy(float(v[i]))) for i in range(v.size)]
        canvas.polyline(pts, color, 2.0)
        end_x, end_y = pts[-1]
        raw = series[name][-1]
        canvas.circle(end_x, end_y, 4.0, color, ring=pal["surface"],
                      title=f"{name}: {raw:.4g}")
        entries.append((name, color))
    if len(entries) >= 2:
        frame.legend(entries)
    return canvas.to_string()


def svg_bars(
    labels: list[str],
    groups: dict[str, np.ndarray],
    *,
    title: str,
    y_label: str,
    width: int = 720,
    height: int = 420,
    mode: str = "light",
) -> str:
    """Grouped columns (<= 24 px, 4 px rounded caps, 2 px surface gaps).

    ``labels`` name the x categories; each entry of ``groups`` is one
    series of per-category values.
    """
    pal = get_palette(mode)
    canvas = SvgCanvas(width, height, palette=pal)
    groups = {k: np.asarray(v, dtype=np.float64) for k, v in groups.items()}
    if not labels or not groups:
        canvas.text(width / 2, height / 2, "(no data)", anchor="middle")
        return canvas.to_string()
    all_v = np.concatenate(list(groups.values()))
    frame = _Frame(canvas, 0.0, float(len(labels)), 0.0, float(all_v.max() or 1.0),
                   bottom=64)
    # Axes without numeric x ticks (categorical axis).
    c = canvas
    c.text(frame.left, 20, title, size=13, fill=pal["text_primary"], weight="bold")
    for t in nice_ticks(0.0, float(all_v.max() or 1.0)):
        yy = frame.sy(t)
        c.line(frame.left, yy, width - frame.right, yy, pal["grid"], 1.0)
        c.text(frame.left - 6, yy + 3.5, _fmt(t), size=10, anchor="end")
    c.text(12, frame.top - 10, y_label, size=11)

    n_groups = len(groups)
    slot_w = (width - frame.left - frame.right) / len(labels)
    bar_w = min(24.0, (slot_w - 8.0 - 2.0 * (n_groups - 1)) / n_groups)
    base_y = frame.sy(0.0)
    for li, label in enumerate(labels):
        x0 = frame.left + li * slot_w + (slot_w - (bar_w * n_groups + 2.0 * (n_groups - 1))) / 2
        for gi, (gname, values) in enumerate(groups.items()):
            v = float(values[li]) if li < values.size else 0.0
            top_y = frame.sy(v)
            h = max(base_y - top_y, 0.0)
            canvas.rect(
                x0 + gi * (bar_w + 2.0), top_y, bar_w, h,
                pal["series"][gi % 8], rx=min(4.0, bar_w / 2),
                title=f"{gname} — {label}: {v:.4g}",
            )
        c.text(frame.left + (li + 0.5) * slot_w, height - frame.bottom + 16,
               label if len(label) <= 14 else label[:13] + "…",
               size=9, anchor="middle")
    if n_groups >= 2:
        frame.legend([(g, pal["series"][i % 8]) for i, g in enumerate(groups)])
    return canvas.to_string()
