"""Map the experiment figure dicts onto the SVG chart forms.

Each ``repro.experiments.figures.figN_*`` result carries raw series; this
module picks the right chart form per figure (bars for band histograms,
scatter for the effectiveness plane, lines for throughput curves) and keeps
entity->color assignments consistent across figures (cuSPARSE always slot
1, ASpT-NR slot 2, ASpT-RR slot 3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.viz.svg import svg_bars, svg_lines, svg_scatter

__all__ = ["figure_svg"]


def _fig8(data: dict, mode: str) -> str:
    labels = list(data["bands_nr"].keys())
    return svg_bars(
        labels,
        {
            "ASpT-NR": np.array(list(data["bands_nr"].values())),
            "ASpT-RR": np.array(list(data["bands_rr"].values())),
        },
        title=f"Fig 8 — SpMM speedup over cuSPARSE (K={data['k']})",
        y_label="% of matrices",
        mode=mode,
    )


def _fig9(data: dict, mode: str) -> str:
    speedup = np.asarray(data["speedup"], dtype=np.float64)
    classes = ["speedup" if s >= 1.0 else "slowdown" for s in speedup]
    return svg_scatter(
        np.asarray(data["delta_dense_ratio"]),
        np.asarray(data["delta_avg_sim"]),
        classes,
        title=f"Fig 9 — effectiveness plane (K={data['k']})",
        x_label="Δ dense-tile ratio",
        y_label="Δ avg consecutive similarity",
        mode=mode,
    )


def _fig10(data: dict, mode: str) -> str:
    series = {
        {"cusparse": "cuSPARSE", "nr(aspt)": "ASpT-NR", "rr(aspt)": "ASpT-RR"}.get(k, k):
        np.asarray(v) for k, v in data["series"].items()
    }
    return svg_lines(
        series,
        title=f"Fig 10 — SpMM throughput, sorted by ASpT-NR (K={data['k']})",
        x_label="matrix (sorted)",
        y_label="GFLOP/s",
        mode=mode,
    )


def _fig11(data: dict, mode: str) -> str:
    series = {
        {"nr(aspt)": "ASpT-NR", "rr(aspt)": "ASpT-RR"}.get(k, k): np.asarray(v)
        for k, v in data["series"].items()
    }
    return svg_lines(
        series,
        title=f"Fig 11 — SDDMM throughput, sorted by ASpT-NR (K={data['k']})",
        x_label="matrix (sorted)",
        y_label="GFLOP/s",
        mode=mode,
    )


def _fig12(data: dict, mode: str) -> str:
    return svg_lines(
        {"preprocessing": np.asarray(data["times_s"])},
        title="Fig 12 — preprocessing time per matrix (sorted)",
        x_label="matrix (sorted)",
        y_label="seconds",
        log_y=True,
        mode=mode,
    )


_RENDERERS = {8: _fig8, 9: _fig9, 10: _fig10, 11: _fig11, 12: _fig12}


def figure_svg(number: int, data: dict, *, mode: str = "light") -> str:
    """Render figure ``number``'s data dict as an SVG document string.

    ``mode`` selects the light or dark palette (both validated instances;
    dark is its own stepped set, not a flipped light palette).
    """
    try:
        renderer = _RENDERERS[number]
    except KeyError:
        raise ValidationError(
            f"no SVG renderer for figure {number}; available: {sorted(_RENDERERS)}"
        ) from None
    return renderer(data, mode)
