"""Hierarchical-clustering substrate for row reordering (paper Alg. 3).

:mod:`repro.clustering.union_find` is the cluster forest with the paper's
path-halving optimisation; :mod:`repro.clustering.heap` the indexed binary
max-heap holding candidate-pair similarities; :mod:`repro.clustering.hierarchical`
the clustering loop itself; and :mod:`repro.clustering.ordering` turns a
finished forest into a row permutation.
"""

from repro.clustering.heap import MaxHeap
from repro.clustering.hierarchical import ClusteringResult, cluster_rows
from repro.clustering.ordering import clusters_from_forest, order_from_clusters
from repro.clustering.union_find import UnionFind

__all__ = [
    "MaxHeap",
    "ClusteringResult",
    "cluster_rows",
    "clusters_from_forest",
    "order_from_clusters",
    "UnionFind",
]
