"""Binary max-heap of (similarity, i, j) entries.

The clustering loop needs exactly three operations — push, pop-max,
emptiness — with a **deterministic total order**: similarity descending,
ties broken by ``(i, j)`` ascending, so heap behaviour (and therefore the
whole reordering) is reproducible run to run.

Implementation note: an earlier revision carried a hand-rolled
sift-up/sift-down array heap; profiling a paper-scale matrix showed its
Python-level sift loops dominating preprocessing (~15 s of a 45 s run), so
the internals now ride on :mod:`heapq`'s C-accelerated primitives over
``(-sim, i, j)`` tuples — tuple comparison implements exactly the
documented ordering.  The public API and ordering contract are unchanged
and fully property-tested (``tests/property/test_core_properties.py``).
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["MaxHeap"]


class MaxHeap:
    """Max-heap of ``(similarity, i, j)`` triples.

    Examples
    --------
    >>> h = MaxHeap()
    >>> h.push(0.5, 1, 2)
    >>> h.push(0.9, 0, 4)
    >>> h.pop()
    (0.9, 0, 4)
    >>> len(h)
    1
    """

    __slots__ = ("_items",)

    def __init__(self, capacity: int = 16):
        # ``capacity`` is accepted for API compatibility; the underlying
        # list grows automatically.
        self._items: list[tuple[float, int, int]] = []

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, sims: np.ndarray, left: np.ndarray, right: np.ndarray) -> "MaxHeap":
        """Bulk-build (Floyd heapify, O(n)) from parallel arrays."""
        sims = np.asarray(sims, dtype=np.float64)
        left = np.asarray(left, dtype=np.int64)
        right = np.asarray(right, dtype=np.int64)
        if not (sims.size == left.size == right.size):
            raise ValueError("from_arrays requires equal-length arrays")
        h = cls()
        h._items = list(zip((-sims).tolist(), left.tolist(), right.tolist()))
        heapq.heapify(h._items)
        return h

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def push(self, sim: float, i: int, j: int) -> None:
        """Insert an entry."""
        heapq.heappush(self._items, (-float(sim), int(i), int(j)))

    def peek(self) -> tuple[float, int, int]:
        """The maximum entry without removing it."""
        if not self._items:
            raise IndexError("peek from an empty heap")
        neg_sim, i, j = self._items[0]
        return -neg_sim, i, j

    def pop(self) -> tuple[float, int, int]:
        """Remove and return the maximum entry."""
        if not self._items:
            raise IndexError("pop from an empty heap")
        neg_sim, i, j = heapq.heappop(self._items)
        return -neg_sim, i, j
