"""Turning a finished cluster forest into a row ordering.

The paper's Alg. 3 epilogue (lines 30–34) buckets rows by their cluster's
representative and concatenates the buckets.  We fix the iteration order —
clusters by their smallest member row, members ascending — which both
matches the paper's worked example (Fig. 6 yields ``[0, 2, 4, 1, 3, 5]``)
and makes the pipeline deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.union_find import UnionFind

__all__ = ["clusters_from_forest", "order_from_clusters"]


def clusters_from_forest(forest: UnionFind) -> dict[int, np.ndarray]:
    """Group elements by representative.

    Returns a dict mapping root id -> sorted ``int64`` array of members,
    with the dict itself ordered by each cluster's smallest member (which,
    given sorted members, is simply ``members[0]``).
    """
    n = len(forest)
    if n == 0:
        return {}
    roots = np.fromiter((forest.root(i) for i in range(n)), dtype=np.int64, count=n)
    order = np.argsort(roots, kind="stable")  # stable => members stay ascending
    sorted_roots = roots[order]
    boundaries = np.flatnonzero(sorted_roots[1:] != sorted_roots[:-1]) + 1
    starts = np.concatenate([[0], boundaries]).astype(np.int64)
    ends = np.concatenate([boundaries, [n]]).astype(np.int64)
    clusters = {
        int(sorted_roots[s]): order[s:e] for s, e in zip(starts, ends)
    }
    # Re-key by ascending first member so iteration order is canonical.
    return dict(sorted(clusters.items(), key=lambda kv: int(kv[1][0])))


def order_from_clusters(clusters: dict[int, np.ndarray], n: int) -> np.ndarray:
    """Concatenate cluster member lists into a permutation of ``range(n)``."""
    if not clusters:
        return np.arange(n, dtype=np.int64)
    order = np.concatenate(list(clusters.values())).astype(np.int64)
    if order.size != n:
        raise ValueError(
            f"clusters cover {order.size} rows but the matrix has {n}"
        )
    return order
