"""Hierarchical clustering of rows over LSH candidate pairs — paper Alg. 3.

The algorithm maintains a union–find forest whose roots are the
*representing rows* of the clusters, and a max-heap of candidate pairs keyed
by exact Jaccard similarity:

1. Pop the most similar pair ``(i, j)``.
2. If both are representing rows, merge the smaller cluster into the larger
   (ties keep the smaller row index as representative).  A cluster whose
   size reaches ``threshold_size`` is *retired* (the paper's ``deleted``
   flag): its rows will be emitted but it takes no further merges —
   bounding cluster size to roughly the ASpT row-panel working set.
3. Otherwise chase both ids to their representatives and, if they belong to
   different live clusters and the pair is new, push the representatives'
   similarity back onto the heap.
4. Stop when the heap is empty or no live cluster remains; emit rows
   cluster-by-cluster (clusters ordered by their smallest original row id,
   rows ascending within a cluster), matching the paper's Fig. 6 example
   which returns ``[0, 2, 4, 1, 3, 5]``.

Complexity (paper §3.2): ``O(E log N + (N + E) log E + N)`` for ``N`` rows
and ``E`` candidate pairs — near ``O(N log N)`` when ``E = O(N)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.heap import MaxHeap
from repro.clustering.ordering import clusters_from_forest, order_from_clusters
from repro.clustering.union_find import UnionFind
from repro.errors import ValidationError
from repro.similarity.jaccard import jaccard_rows
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_positive

__all__ = ["ClusteringResult", "cluster_rows"]


def _score(csr: CSRMatrix, i: int, j: int, measure: str) -> float:
    """Similarity of one row pair under ``measure`` (fast path for Jaccard)."""
    if measure == "jaccard":
        return jaccard_rows(csr, i, j)
    from repro.similarity.measures import similarity_for_pairs

    return float(similarity_for_pairs(csr, np.array([[i, j]]), measure)[0])


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of one clustering pass.

    Attributes
    ----------
    order:
        Row permutation (new position -> original row id).
    cluster_of:
        For each original row, the representative row of its final cluster.
    n_clusters:
        Number of final clusters (singletons included).
    n_merges:
        Merges performed (``n_rows - n_clusters``).
    n_retired:
        Clusters retired by the ``threshold_size`` rule.
    n_requeued:
        Pairs re-inserted after representative chasing (Alg. 3 line 28).
    """

    order: np.ndarray
    cluster_of: np.ndarray
    n_clusters: int
    n_merges: int
    n_retired: int
    n_requeued: int

    @property
    def is_identity(self) -> bool:
        """True when clustering did not move any row."""
        return bool(np.array_equal(self.order, np.arange(self.order.size)))


def cluster_rows(
    csr: CSRMatrix,
    pairs: np.ndarray,
    sims: np.ndarray,
    *,
    threshold_size: int = 256,
    measure: str = "jaccard",
) -> ClusteringResult:
    """Run Alg. 3's clustering loop on precomputed candidate pairs.

    Parameters
    ----------
    csr:
        The matrix whose rows are clustered (needed to score re-queued
        representative pairs with exact Jaccard).
    pairs:
        ``(E, 2)`` int64 candidate pairs (from :class:`repro.similarity.LSHIndex`).
    sims:
        Exact Jaccard similarity of each candidate pair.
    threshold_size:
        Retire clusters when they reach this size (paper default 256).
    measure:
        Similarity used to re-score re-queued representative pairs
        (``"jaccard"`` per the paper; see :data:`repro.similarity.MEASURES`).

    Returns
    -------
    ClusteringResult
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    sims = np.asarray(sims, dtype=np.float64)
    if pairs.ndim != 2 or (pairs.size and pairs.shape[1] != 2):
        raise ValidationError(f"pairs must have shape (E, 2), got {pairs.shape}")
    if sims.size != pairs.shape[0]:
        raise ValidationError("pairs and sims must have equal length")
    threshold_size = check_positive("threshold_size", threshold_size)

    n = csr.n_rows
    forest = UnionFind(n)
    deleted = np.zeros(n, dtype=bool)
    live_clusters = n

    heap = MaxHeap.from_arrays(sims, pairs[:, 0], pairs[:, 1])
    # Seen-pair set for the Alg. 3 line-27 dedup.  Keys encode (lo, hi).
    seen: set[int] = set()
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    seen.update((lo * np.int64(n) + hi).tolist())

    n_merges = 0
    n_retired = 0
    n_requeued = 0

    while heap and live_clusters > 0:
        _, i, j = heap.pop()
        if forest.is_root(i) and forest.is_root(j):
            if deleted[i] or deleted[j] or i == j:
                continue
            # Merge the smaller cluster into the larger; on ties keep the
            # smaller row index as representative.
            si, sj = forest.size[i], forest.size[j]
            if si < sj or (si == sj and j < i):
                child, root = i, j
            else:
                child, root = j, i
            new_size = forest.merge_roots(child, root)
            live_clusters -= 1
            n_merges += 1
            if new_size >= threshold_size:
                deleted[root] = True
                n_retired += 1
                live_clusters -= 1
        else:
            ri, rj = forest.root(i), forest.root(j)
            if deleted[ri] or deleted[rj] or ri == rj:
                continue
            a, b = (ri, rj) if ri < rj else (rj, ri)
            key = a * n + b
            if key not in seen:
                seen.add(key)
                heap.push(_score(csr, a, b, measure), a, b)
                n_requeued += 1

    clusters = clusters_from_forest(forest)
    order = order_from_clusters(clusters, n)
    cluster_of = np.empty(n, dtype=np.int64)
    for root, members in clusters.items():
        cluster_of[members] = root
    return ClusteringResult(
        order=order,
        cluster_of=cluster_of,
        n_clusters=len(clusters),
        n_merges=n_merges,
        n_retired=n_retired,
        n_requeued=n_requeued,
    )
