"""Hierarchical clustering of rows over LSH candidate pairs — paper Alg. 3.

The algorithm maintains a union–find forest whose roots are the
*representing rows* of the clusters, and a max-heap of candidate pairs keyed
by exact Jaccard similarity:

1. Pop the most similar pair ``(i, j)``.
2. If both are representing rows, merge the smaller cluster into the larger
   (ties keep the smaller row index as representative).  A cluster whose
   size reaches ``threshold_size`` is *retired* (the paper's ``deleted``
   flag): its rows will be emitted but it takes no further merges —
   bounding cluster size to roughly the ASpT row-panel working set.
3. Otherwise chase both ids to their representatives and, if they belong to
   different live clusters and the pair is new, push the representatives'
   similarity back onto the heap.
4. Stop when the heap is empty or no live cluster remains; emit rows
   cluster-by-cluster (clusters ordered by their smallest original row id,
   rows ascending within a cluster), matching the paper's Fig. 6 example
   which returns ``[0, 2, 4, 1, 3, 5]``.

Complexity (paper §3.2): ``O(E log N + (N + E) log E + N)`` for ``N`` rows
and ``E`` candidate pairs — near ``O(N log N)`` when ``E = O(N)``.

Implementation notes (hot path).  All candidate similarities arrive
pre-scored in one vectorised :func:`~repro.similarity.similarity_for_pairs`
pass (:meth:`repro.similarity.LSHIndex.candidate_pairs`).  The requeued
representative pairs of step 3 — the only scoring left inside the loop —
are *batch-scored*: instead of one Python-level similarity call per pair,
requeue requests accumulate in a pending list and are scored with a single
NumPy call when the loop is about to need one of them.  The flush point is
exact, not heuristic: each pending pair carries a cheap upper bound on its
similarity (``measure`` evaluated with the intersection replaced by the
smaller support size — e.g. ``min(|A|,|B|) / max(|A|,|B|)`` for Jaccard),
and the batch is scored the moment the heap's top similarity falls to or
below the largest pending bound (or the heap empties).  Until then every
pending pair provably orders after the heap top (IEEE rounding is
monotone, and ties are impossible below a *strict* bound), so the pop
sequence — including tie-breaking — is identical to scoring eagerly.
When a flush drains a single pair (common on matrices with uniform row
lengths, where the upper bound is vacuous and every requeue flushes
immediately), the batch call's fixed cost is skipped and the pair is
scored with a scalar set-intersection path computing the *same*
correctly-rounded IEEE value as :func:`similarity_for_pairs` — double
division and ``sqrt`` of exactly representable integers are deterministic,
so the two paths are bitwise interchangeable.  The
loop itself consumes the (static) initial candidates from one presorted
stream — only requeued pairs live on a real heap, merged with the stream
by key — and keeps union–find state in Python lists (same path-halving
updates as :class:`~repro.clustering.UnionFind`, which profiling showed
dominating preprocessing through per-call indirection);
the forest is rebuilt as a :class:`~repro.clustering.UnionFind` afterwards
for the ordering helpers.  Outputs are identical — asserted against the
Fig. 6 oracle and the property suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from math import sqrt

import numpy as np

from repro.clustering.ordering import clusters_from_forest, order_from_clusters
from repro.clustering.union_find import UnionFind
from repro.errors import ValidationError
from repro.observability.metrics import METRICS
from repro.resilience.faults import fault_point
from repro.similarity.measures import similarity_for_pairs
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_positive

__all__ = ["ClusteringResult", "cluster_rows"]


def _upper_bound_fn(measure: str, row_lengths: list):
    """Per-pair similarity upper bound (intersection -> ``min(|A|, |B|)``).

    Every measure in :data:`repro.similarity.MEASURES` is monotone in the
    intersection size, so substituting its maximum possible value bounds
    the similarity from above; IEEE division is monotone, so the bound
    holds for the computed floats too, which is what the batch-flush
    ordering proof needs.
    """
    if measure == "jaccard":

        def bound(i: int, j: int) -> float:
            la, lb = row_lengths[i], row_lengths[j]
            mn, mx = (la, lb) if la <= lb else (lb, la)
            return mn / mx if mx else 0.0

    elif measure == "cosine":

        def bound(i: int, j: int) -> float:
            la, lb = row_lengths[i], row_lengths[j]
            mn = la if la <= lb else lb
            return mn / sqrt(la * lb) if mn else 0.0

    elif measure == "overlap":

        def bound(i: int, j: int) -> float:
            return 1.0 if row_lengths[i] and row_lengths[j] else 0.0

    else:  # dice

        def bound(i: int, j: int) -> float:
            la, lb = row_lengths[i], row_lengths[j]
            mn = la if la <= lb else lb
            return 2.0 * mn / (la + lb) if mn else 0.0

    return bound


def _scalar_score(measure: str, inter: int, la: int, lb: int) -> float:
    """Scalar similarity, bitwise-equal to :func:`similarity_for_pairs`.

    All operands are exact small integers, so the float64 conversions,
    products and divisions below are the same correctly-rounded IEEE
    operations the vectorised path performs.
    """
    if measure == "jaccard":
        denom = la + lb - inter
        return inter / denom if denom else 0.0
    if measure == "cosine":
        # Match the batch path exactly: float64 product, then sqrt.
        denom = sqrt(float(la) * float(lb))
        return inter / denom if denom else 0.0
    if measure == "overlap":
        denom = la if la <= lb else lb
        return inter / denom if denom else 0.0
    # dice
    denom = la + lb
    return (2.0 * inter) / denom if denom else 0.0


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of one clustering pass.

    Attributes
    ----------
    order:
        Row permutation (new position -> original row id).
    cluster_of:
        For each original row, the representative row of its final cluster.
    n_clusters:
        Number of final clusters (singletons included).
    n_merges:
        Merges performed (``n_rows - n_clusters``).
    n_retired:
        Clusters retired by the ``threshold_size`` rule.
    n_requeued:
        Pairs re-inserted after representative chasing (Alg. 3 line 28).
    """

    order: np.ndarray
    cluster_of: np.ndarray
    n_clusters: int
    n_merges: int
    n_retired: int
    n_requeued: int

    @property
    def is_identity(self) -> bool:
        """True when clustering did not move any row."""
        return bool(np.array_equal(self.order, np.arange(self.order.size)))


def cluster_rows(
    csr: CSRMatrix,
    pairs: np.ndarray,
    sims: np.ndarray,
    *,
    threshold_size: int = 256,
    measure: str = "jaccard",
    deadline=None,
) -> ClusteringResult:
    """Run Alg. 3's clustering loop on precomputed candidate pairs.

    Parameters
    ----------
    csr:
        The matrix whose rows are clustered (needed to score re-queued
        representative pairs with exact Jaccard).
    pairs:
        ``(E, 2)`` int64 candidate pairs (from :class:`repro.similarity.LSHIndex`).
    sims:
        Exact Jaccard similarity of each candidate pair.
    threshold_size:
        Retire clusters when they reach this size (paper default 256).
    measure:
        Similarity used to re-score re-queued representative pairs
        (``"jaccard"`` per the paper; see :data:`repro.similarity.MEASURES`).
    deadline:
        Optional :class:`repro.resilience.Deadline`; the merge loop polls
        it every 4096 iterations and aborts with
        :class:`repro.errors.TimeoutExceeded` when the budget is spent
        (cooperative cancellation — no partial state escapes, the caller
        simply drops the run).

    Returns
    -------
    ClusteringResult
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    sims = np.asarray(sims, dtype=np.float64)
    if pairs.ndim != 2 or (pairs.size and pairs.shape[1] != 2):
        raise ValidationError(f"pairs must have shape (E, 2), got {pairs.shape}")
    if sims.size != pairs.shape[0]:
        raise ValidationError("pairs and sims must have equal length")
    threshold_size = check_positive("threshold_size", threshold_size)
    fault_point("clustering.cluster")
    if measure not in ("jaccard", "cosine", "overlap", "dice"):
        # Fail before the loop with the standard message.
        similarity_for_pairs(csr, np.empty((0, 2), dtype=np.int64), measure)

    n = csr.n_rows
    parent = list(range(n))
    size = [1] * n
    deleted = bytearray(n)
    live_clusters = n

    # The initial candidates are static, so instead of a heap they are
    # sorted once (ascending ``(-sim, i, j)`` — the exact heap key) and
    # consumed as a stream.  Only *requeued* pairs, which arrive while the
    # loop runs, need a real heap — and there are few of them (Alg. 3
    # requeues once per survived representative collision), so its pops
    # stay cheap.  Every key is distinct (the seen-set dedups pairs and
    # the key embeds the pair), hence the min-merge of stream and requeue
    # heap pops in exactly the order one big heap would.
    order0 = np.lexsort((pairs[:, 1], pairs[:, 0], -sims))
    stream_s = (-sims)[order0].tolist()
    stream_i = pairs[order0, 0].tolist()
    stream_j = pairs[order0, 1].tolist()
    spos, send = 0, len(stream_s)
    rq: list[tuple[float, int, int]] = []  # heap of requeued (-sim, i, j)
    # Seen-pair set for the Alg. 3 line-27 dedup.  Keys encode (lo, hi).
    seen: set[int] = set()
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    seen.update((lo * np.int64(n) + hi).tolist())

    lens = csr.row_lengths().tolist()
    bound = _upper_bound_fn(measure, lens)
    pending: list[tuple[int, int]] = []
    pending_bound = -1.0  # max upper bound over pending pairs

    # Lazily built column supports for the single-pair scoring path.  Only
    # requeued representatives land here, so the cache stays small.
    colidx = csr.colidx
    rowptr = csr.rowptr
    row_sets: dict[int, frozenset] = {}

    n_merges = 0
    n_retired = 0
    n_requeued = 0
    n_scored = 0
    iters = 0

    while live_clusters > 0 and (spos < send or rq or pending):
        # Poll the deadline between complete merge steps, amortised so the
        # common deadline-free path pays one compare per iteration.
        iters += 1
        if deadline is not None and not iters & 4095:
            deadline.check("cluster")
        if pending:
            if spos < send:
                top_neg = stream_s[spos]
                if rq and rq[0][0] < top_neg:
                    top_neg = rq[0][0]
            elif rq:
                top_neg = rq[0][0]
            else:
                top_neg = None
            if top_neg is None or pending_bound >= -top_neg:
                if len(pending) == 1:
                    # Degenerate batch: score the lone pair with C-level
                    # set intersection instead of paying the batch call's
                    # fixed cost (same IEEE value — see _scalar_score).
                    a, b = pending[0]
                    sa = row_sets.get(a)
                    if sa is None:
                        sa = frozenset(colidx[rowptr[a] : rowptr[a + 1]].tolist())
                        row_sets[a] = sa
                    sb = row_sets.get(b)
                    if sb is None:
                        sb = frozenset(colidx[rowptr[b] : rowptr[b + 1]].tolist())
                        row_sets[b] = sb
                    s = _scalar_score(measure, len(sa & sb), lens[a], lens[b])
                    heappush(rq, (-s, a, b))
                    n_scored += 1
                else:
                    # Batch-score the drained requeue requests with one
                    # NumPy call and fold them into the requeue heap
                    # before the order can need them.
                    scores = similarity_for_pairs(
                        csr, np.array(pending, dtype=np.int64), measure
                    )
                    for (a, b), s in zip(pending, scores.tolist()):
                        heappush(rq, (-s, a, b))
                    n_scored += len(pending)
                pending.clear()
                pending_bound = -1.0
                continue
        # Pop the smaller of (stream head, requeue-heap top) — with all
        # keys distinct this merges into the single-heap pop sequence.
        if spos < send and (
            not rq or rq[0] >= (stream_s[spos], stream_i[spos], stream_j[spos])
        ):
            i = stream_i[spos]
            j = stream_j[spos]
            spos += 1
        else:
            _, i, j = heappop(rq)
        if parent[i] == i and parent[j] == j:
            if deleted[i] or deleted[j] or i == j:
                continue
            # Merge the smaller cluster into the larger; on ties keep the
            # smaller row index as representative.
            si, sj = size[i], size[j]
            if si < sj or (si == sj and j < i):
                child, root = i, j
            else:
                child, root = j, i
            parent[child] = root
            new_size = si + sj
            size[root] = new_size
            live_clusters -= 1
            n_merges += 1
            if new_size >= threshold_size:
                deleted[root] = 1
                n_retired += 1
                live_clusters -= 1
        else:
            # Path-halving root chase (UnionFind.root, inlined).
            ri = i
            while parent[ri] != ri:
                parent[ri] = parent[parent[ri]]
                ri = parent[ri]
            rj = j
            while parent[rj] != rj:
                parent[rj] = parent[parent[rj]]
                rj = parent[rj]
            if deleted[ri] or deleted[rj] or ri == rj:
                continue
            a, b = (ri, rj) if ri < rj else (rj, ri)
            key = a * n + b
            if key not in seen:
                seen.add(key)
                pending.append((a, b))
                ub = bound(a, b)
                if ub > pending_bound:
                    pending_bound = ub
                n_requeued += 1

    # One registry update per call (not per merge) keeps the loop lock-free.
    METRICS.counter(
        "clustering.pairs_scored", "similarity evaluations during clustering"
    ).inc(n_scored)
    METRICS.counter(
        "clustering.heap_requeues", "requeued representative collisions re-scored"
    ).inc(n_requeued)

    forest = UnionFind(n)
    forest.parent[:] = parent
    forest.size[:] = size
    forest.n_sets = n - n_merges
    clusters = clusters_from_forest(forest)
    order = order_from_clusters(clusters, n)
    cluster_of = np.empty(n, dtype=np.int64)
    for root, members in clusters.items():
        cluster_of[members] = root
    return ClusteringResult(
        order=order,
        cluster_of=cluster_of,
        n_clusters=len(clusters),
        n_merges=n_merges,
        n_retired=n_retired,
        n_requeued=n_requeued,
    )
