"""Union–find (disjoint-set forest) with path halving.

This mirrors the data structure of the paper's Alg. 3: ``cluster_id`` is the
parent array, ``root`` performs the path-halving loop of lines 7–10, and
merges always attach one *root* beneath another — the caller (the
hierarchical clustering) decides the direction using the cluster sizes, so
:meth:`UnionFind.merge_roots` takes the direction explicitly rather than
implementing union-by-size internally.

One deliberate deviation from the paper's pseudocode: Alg. 3 never updates
``cluster_sz`` after a merge, which would make the size threshold dead code
and the "merge smaller into larger" rule meaningless.  This is an obvious
pseudocode slip (the accompanying complexity analysis *assumes*
merge-smaller-into-larger, which requires maintained sizes), so we maintain
``size[root]`` on every merge.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_nonnegative

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint-set forest over elements ``0 .. n-1``.

    Attributes
    ----------
    parent:
        ``parent[i]`` is the parent of ``i``; roots satisfy
        ``parent[i] == i`` (the paper's ``cluster_id``).
    size:
        ``size[r]`` is the number of elements in the set rooted at ``r``
        (meaningful only at roots).
    n_sets:
        Current number of disjoint sets.
    """

    def __init__(self, n: int):
        n = check_nonnegative("n", n)
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.n_sets = n

    def __len__(self) -> int:
        return int(self.parent.size)

    def is_root(self, i: int) -> bool:
        """True when ``i`` is the representative of its set."""
        return self.parent[i] == i

    def root(self, i: int) -> int:
        """Find the representative of ``i``'s set, halving the path.

        Path halving (``parent[i] = parent[parent[i]]`` inside the loop) is
        exactly the optimisation on line 9 of the paper's Alg. 3: it links
        every other node on the search path to its grandparent, keeping
        trees shallow so later queries are ``O(log n)`` amortised.
        """
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return int(i)

    def merge_roots(self, child: int, new_root: int) -> int:
        """Attach root ``child`` beneath root ``new_root``.

        Both arguments must currently be roots of distinct sets; the caller
        chooses the direction (the clustering merges the smaller cluster
        into the larger one, ties keeping the smaller row index as root,
        per the paper's representing-row rule).

        Returns the new root's updated size.
        """
        if self.parent[child] != child or self.parent[new_root] != new_root:
            raise ValueError("merge_roots arguments must both be roots")
        if child == new_root:
            raise ValueError("cannot merge a set with itself")
        self.parent[child] = new_root
        self.size[new_root] += self.size[child]
        self.n_sets -= 1
        return int(self.size[new_root])

    def union_by_size(self, i: int, j: int) -> int:
        """Convenience union: merge the sets of ``i`` and ``j``.

        Implements the paper's direction rule (smaller cluster under
        larger; on ties the smaller root index survives).  Returns the
        surviving root, or the common root if ``i`` and ``j`` were already
        together.
        """
        ri, rj = self.root(i), self.root(j)
        if ri == rj:
            return ri
        si, sj = self.size[ri], self.size[rj]
        if si < sj or (si == sj and rj < ri):
            ri, rj = rj, ri  # ri survives
        self.merge_roots(rj, ri)
        return ri

    def members(self) -> dict[int, list[int]]:
        """Map of root -> sorted member list (diagnostic/test helper)."""
        out: dict[int, list[int]] = {}
        for i in range(len(self)):
            out.setdefault(self.root(i), []).append(i)
        return out
