"""Lightweight logging setup.

A thin wrapper over :mod:`logging` so the experiment runner can emit
progress lines without configuring the root logger (which would interfere
with applications embedding this library).
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "enable_console_logging"]

_LOGGER_NAME = "repro"


def get_logger(child: str | None = None) -> logging.Logger:
    """Return the library logger, or a named child of it."""
    name = _LOGGER_NAME if child is None else f"{_LOGGER_NAME}.{child}"
    return logging.getLogger(name)


def enable_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the library logger (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger
