"""Deterministic random-number handling.

Everything in this library that draws randomness accepts a ``seed`` argument
that may be ``None``, an integer, or an existing :class:`numpy.random.Generator`
and normalises it through :func:`as_generator`.  Experiments additionally use
:func:`spawn_generators` to derive independent per-matrix streams so that
corpus generation is reproducible regardless of evaluation order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_generator", "spawn_generators"]


def as_generator(seed=None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh nondeterministic generator; an integer yields a
    deterministic one; an existing generator is passed through untouched so
    that callers can thread a single stream through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed, n: int) -> Sequence[np.random.Generator]:
    """Derive ``n`` statistically independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, which guarantees
    independence without requiring the caller to invent per-task seeds.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's own bit stream.
        seed = int(seed.integers(0, 2**63 - 1))
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
