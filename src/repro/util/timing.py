"""Wall-clock timing helpers.

The paper reports preprocessing time separately from (GPU) kernel time.  In
this reproduction preprocessing is measured as real wall-clock on the host
(it genuinely runs here), while kernel time comes from the performance model.
:class:`Timer` is the single primitive used for the former.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Timer", "timed"]


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Can be used either as a context manager (accumulates across ``with``
    blocks) or via explicit :meth:`start`/:meth:`stop` calls.

    Examples
    --------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list = field(default_factory=list)
    #: Injectable monotonic clock (never called at class scope, so tests
    #: can substitute a fake); a plain function reference, not a method.
    clock: object = time.perf_counter
    _t0: float | None = None

    def start(self) -> "Timer":
        """Begin a lap; raises if already running."""
        if self._t0 is not None:
            raise RuntimeError("Timer already running")
        self._t0 = self.clock()
        return self

    def stop(self) -> float:
        """End the current lap and return its duration."""
        if self._t0 is None:
            raise RuntimeError("Timer not running")
        lap = self.clock() - self._t0
        self._t0 = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def reset(self) -> None:
        """Zero the accumulated time and lap history."""
        self.elapsed = 0.0
        self.laps.clear()
        self._t0 = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


@contextmanager
def timed(sink: dict, key: str, clock=time.perf_counter):
    """Time a block and store the elapsed seconds into ``sink[key]``.

    Accumulates when the key already exists, mirroring :class:`Timer`.
    The ``clock`` is injectable (a monotonic no-arg callable) so tests
    can drive it deterministically.
    """
    t0 = clock()
    try:
        yield
    finally:
        sink[key] = sink.get(key, 0.0) + (clock() - t0)
