"""Size-class scratch-buffer pool for the zero-allocation kernel paths.

The paper's whole argument is data-movement reduction, and the serving
story (ROADMAP north star) multiplies the *same* matrix thousands of times.
Allocating the ``O(nnz * K)`` products scratch on every call churns the
allocator and the page cache for no benefit: the buffer shapes repeat
call after call.  :class:`WorkspacePool` keeps freed blocks in per
``(dtype, size-class)`` freelists so steady-state kernel calls allocate
nothing, and :class:`Workspace` scopes a set of leased blocks to one
kernel invocation (or to a long-lived :class:`~repro.kernels.KernelSession`).

Design notes
------------
* Size classes are next-power-of-two element counts: a request for
  ``n`` elements is served by a block of ``2**ceil(log2(n))`` elements,
  so buffers whose sizes wobble slightly (per-block nnz, per-panel
  column counts) still hit the same freelist.  Worst-case internal
  fragmentation is 2x, bounded and predictable.
* The pool is thread-safe (one lock around the freelists) and bounded:
  blocks returned past ``max_bytes`` of held memory are dropped
  (counted as evictions) instead of retained.
* ``hits`` / ``misses`` / ``evictions`` counters make reuse observable —
  the perf-regression gate asserts steady-state calls stop allocating.

Correctness contract: pooled kernel paths gather/multiply/reduce into
leased buffers with the *same operand order* as the allocating paths, so
results are bitwise identical (asserted by the oracle tests).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import WorkspaceExhausted
from repro.observability.metrics import METRICS
from repro.resilience.faults import fault_point

__all__ = ["DirectWorkspace", "Workspace", "WorkspacePool", "as_workspace"]


def _size_class(n_elements: int) -> int:
    """Smallest power of two >= ``n_elements`` (class 1 for empty buffers)."""
    if n_elements <= 1:
        return 1
    return 1 << (int(n_elements) - 1).bit_length()


class WorkspacePool:
    """Thread-safe, bounded pool of reusable scratch blocks.

    Parameters
    ----------
    max_bytes:
        Upper bound on the total bytes of *idle* blocks retained in the
        freelists.  Blocks released beyond the bound are dropped (an
        *eviction*).  Leased blocks are not counted — the bound caps the
        pool's parked memory, not the caller's working set.
    max_lease_bytes:
        Optional hard cap on the size of any *single* leased block;
        requests above it raise :class:`repro.errors.WorkspaceExhausted`
        instead of allocating.  ``None`` (the default) disables the cap.
        Callers that can degrade — :class:`repro.kernels.KernelSession`
        falls back to direct allocation — use this to bound the pool's
        peak footprint under memory pressure.

    Examples
    --------
    >>> pool = WorkspacePool()
    >>> with pool.lease() as ws:
    ...     scratch = ws.scratch((4, 8))
    >>> pool.stats()["misses"]
    1
    >>> with pool.lease() as ws:          # same size class: no allocation
    ...     scratch = ws.scratch((4, 8))
    >>> pool.stats()["hits"]
    1
    """

    def __init__(
        self,
        max_bytes: int = 256 * 1024 * 1024,
        *,
        max_lease_bytes: int | None = None,
    ) -> None:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        if max_lease_bytes is not None and max_lease_bytes < 0:
            raise ValueError(
                f"max_lease_bytes must be non-negative, got {max_lease_bytes}"
            )
        self.max_bytes = int(max_bytes)
        self.max_lease_bytes = (
            int(max_lease_bytes) if max_lease_bytes is not None else None
        )
        self._lock = threading.Lock()
        self._free: dict[tuple[str, int], list[np.ndarray]] = {}
        self._held_bytes = 0
        # Per-pool counters that also roll up into the process-global
        # workspace.* instruments (see repro.observability.metrics).
        self._hits = METRICS.counter("workspace.hit", "scratch leases served from a freelist").child()
        self._misses = METRICS.counter("workspace.miss", "scratch leases that had to allocate").child()
        self._evictions = METRICS.counter("workspace.evict", "returned blocks dropped over max_bytes").child()

    # ------------------------------------------------------------------
    def lease(self) -> "Workspace":
        """A fresh :class:`Workspace` scoped to this pool.

        Use as a context manager so every leased block returns to the
        freelists when the kernel call finishes.
        """
        return Workspace(self)

    def take(self, shape, dtype=np.float64) -> np.ndarray:
        """Lease one C-contiguous array of ``shape``/``dtype``.

        The returned array is a view of a pooled block; hand it back with
        :meth:`give` (or lease through a :class:`Workspace`, which tracks
        and returns blocks for you).  Contents are uninitialised.

        Raises :class:`repro.errors.WorkspaceExhausted` when the request
        exceeds ``max_lease_bytes`` (or when the ``workspace.take`` fault
        site injects exhaustion).
        """
        fault_point("workspace.take")
        dtype = np.dtype(dtype)
        shape = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        n = 1
        for s in shape:
            if s < 0:
                raise ValueError(f"negative dimension in shape {shape}")
            n *= s
        cls = _size_class(n)
        if (
            self.max_lease_bytes is not None
            and cls * dtype.itemsize > self.max_lease_bytes
        ):
            raise WorkspaceExhausted(
                f"scratch request of {cls * dtype.itemsize} bytes (shape "
                f"{shape}, dtype {dtype.name}) exceeds the pool's "
                f"max_lease_bytes={self.max_lease_bytes}"
            )
        key = (dtype.str, cls)
        with self._lock:
            freelist = self._free.get(key)
            if freelist:
                block = freelist.pop()
                self._held_bytes -= block.nbytes
                self._hits.inc()
            else:
                block = None
                self._misses.inc()
        if block is None:
            block = np.empty(cls, dtype=dtype)
        return block[:n].reshape(shape)

    def give(self, array: np.ndarray) -> None:
        """Return a block leased with :meth:`take` to the freelists."""
        block = array
        while block.base is not None:
            block = block.base
        if not isinstance(block, np.ndarray) or block.ndim != 1:
            raise ValueError("give() expects an array leased from this pool")
        key = (block.dtype.str, block.size)
        with self._lock:
            if self._held_bytes + block.nbytes > self.max_bytes:
                self._evictions.inc()
                return
            self._free.setdefault(key, []).append(block)
            self._held_bytes += block.nbytes

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every idle block (leased blocks are unaffected)."""
        with self._lock:
            self._free.clear()
            self._held_bytes = 0

    @property
    def held_bytes(self) -> int:
        """Bytes currently parked in the freelists."""
        with self._lock:
            return self._held_bytes

    @property
    def hits(self) -> int:
        """Leases served from a freelist (per-pool view of ``workspace.hit``)."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """Leases that had to allocate (per-pool view of ``workspace.miss``)."""
        return self._misses.value

    @property
    def evictions(self) -> int:
        """Returned blocks dropped over ``max_bytes`` (per-pool view)."""
        return self._evictions.value

    def stats(self) -> dict:
        """Counter snapshot: hits, misses, evictions, held_bytes."""
        with self._lock:
            return {
                "hits": self._hits.value,
                "misses": self._misses.value,
                "evictions": self._evictions.value,
                "held_bytes": self._held_bytes,
            }


class Workspace:
    """A scoped set of scratch arrays leased from a :class:`WorkspacePool`.

    Kernels take ``workspace=`` and call :meth:`scratch` for every
    temporary; on :meth:`release` (or context-manager exit) all blocks
    go back to the pool.  A workspace may be long-lived — a
    :class:`~repro.kernels.KernelSession` holds one per call so repeated
    multiplies recycle the same blocks.

    Scratch arrays are only valid until release; they must never escape
    into a returned value (kernel outputs are caller-owned arrays).
    """

    __slots__ = ("pool", "_leased")

    def __init__(self, pool: WorkspacePool) -> None:
        self.pool = pool
        self._leased: list[np.ndarray] = []

    def scratch(self, shape, dtype=np.float64) -> np.ndarray:
        """Lease one uninitialised C-contiguous scratch array."""
        array = self.pool.take(shape, dtype)
        self._leased.append(array)
        return array

    def release(self) -> None:
        """Return every leased block to the pool."""
        leased, self._leased = self._leased, []
        for array in leased:
            self.pool.give(array)

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class DirectWorkspace:
    """Workspace-shaped allocator with no pooling (plain ``np.empty``).

    Stands in for a :class:`Workspace` wherever code is written against
    the ``scratch``/``release`` surface but no pool is in play: the
    :class:`~repro.kernels.KernelSession` exhaustion fallback, and
    compiled-backend kernels invoked one-shot without a ``workspace=``.
    Results are bitwise identical either way — pooled and direct paths
    run the same operations on same-shaped buffers.
    """

    __slots__ = ()

    def scratch(self, shape, dtype=np.float64) -> np.ndarray:
        """Allocate one uninitialised C-contiguous array."""
        return np.empty(shape, dtype=dtype)

    def release(self) -> None:
        """No-op (nothing is pooled)."""
        return None

    def __enter__(self) -> "DirectWorkspace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


def as_workspace(workspace) -> tuple[Workspace | None, bool]:
    """Normalise a kernel ``workspace=`` argument.

    Kernels accept ``None`` (allocate normally), a :class:`WorkspacePool`
    (lease a fresh workspace for this one call) or a :class:`Workspace`
    (caller manages the lease — used by long-lived sessions).  Returns
    ``(workspace_or_none, owned)`` where ``owned`` tells the kernel it
    must release the workspace when it finishes.
    """
    if workspace is None:
        return None, False
    if isinstance(workspace, WorkspacePool):
        return workspace.lease(), True
    if isinstance(workspace, Workspace):
        return workspace, False
    raise TypeError(
        "workspace must be a WorkspacePool, a Workspace or None, got "
        f"{type(workspace).__name__}"
    )
