"""Vectorised array primitives shared by the sparse and GPU subsystems.

These are the NumPy idioms the rest of the library is built on: converting
between per-segment counts and CSR-style offset arrays, expanding offsets
back into per-element segment ids, and segment reductions via
``ufunc.reduceat``.  Keeping them in one place means the tricky empty-segment
corner cases are handled (and tested) exactly once.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "counts_to_offsets",
    "lengths_from_offsets",
    "offsets_to_row_ids",
    "segment_sum",
    "segment_min",
    "segment_max",
    "rank_of_permutation",
]


def counts_to_offsets(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum: per-segment counts -> CSR offsets.

    ``offsets`` has length ``len(counts) + 1`` with ``offsets[0] == 0`` and
    ``offsets[-1] == counts.sum()``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    offsets = np.empty(counts.size + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(counts, out=offsets[1:])
    return offsets


def lengths_from_offsets(offsets: np.ndarray) -> np.ndarray:
    """Inverse of :func:`counts_to_offsets`."""
    offsets = np.asarray(offsets, dtype=np.int64)
    return np.diff(offsets)


def offsets_to_row_ids(offsets: np.ndarray) -> np.ndarray:
    """Expand CSR offsets into a per-element segment-id array.

    For ``offsets = [0, 2, 2, 5]`` returns ``[0, 0, 2, 2, 2]``.  This is the
    standard CSR->COO row expansion and is fully vectorised (no Python loop),
    which matters because it sits on the hot path of every kernel trace.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n = int(offsets[-1]) if offsets.size else 0
    nseg = offsets.size - 1
    out = np.zeros(n, dtype=np.int64)
    if n == 0 or nseg == 0:
        return out
    starts = offsets[:-1]
    # Mark segment starts; empty segments contribute multiple marks at the
    # same position, handled by np.add.at accumulation.
    marks = np.zeros(n + 1, dtype=np.int64)
    np.add.at(marks, starts, 1)
    out = np.cumsum(marks[:-1]) - 1
    return out.astype(np.int64, copy=False)


def _reduceat(ufunc, values: np.ndarray, offsets: np.ndarray, empty_fill):
    """Shared implementation for the segment reductions.

    ``ufunc.reduceat`` has a famous wart: for an empty segment it returns the
    *element at the start index* instead of the identity.  We post-fix empty
    segments with ``empty_fill``.
    """
    values = np.asarray(values)
    offsets = np.asarray(offsets, dtype=np.int64)
    nseg = offsets.size - 1
    if nseg == 0:
        return np.empty(0, dtype=values.dtype)
    lengths = np.diff(offsets)
    out = np.full(nseg, empty_fill, dtype=values.dtype)
    nonempty = lengths > 0
    if values.size and nonempty.any():
        starts = offsets[:-1][nonempty]
        out[nonempty] = ufunc.reduceat(values, starts)
        # reduceat reduces from each start to the next start *in the index
        # list*, so consecutive non-empty starts already delimit segments;
        # the final segment runs to the end of `values`, which is correct
        # because offsets[-1] == len(values) is a documented precondition.
    return out


def segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sum for CSR-style ``offsets`` (empty segments -> 0)."""
    values = np.asarray(values)
    zero = values.dtype.type(0)
    return _reduceat(np.add, values, offsets, zero)


def segment_min(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment minimum (empty segments -> dtype max)."""
    values = np.asarray(values)
    if np.issubdtype(values.dtype, np.integer):
        fill = np.iinfo(values.dtype).max
    else:
        fill = np.inf
    return _reduceat(np.minimum, values, offsets, fill)


def segment_max(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment maximum (empty segments -> dtype min)."""
    values = np.asarray(values)
    if np.issubdtype(values.dtype, np.integer):
        fill = np.iinfo(values.dtype).min
    else:
        fill = -np.inf
    return _reduceat(np.maximum, values, offsets, fill)


def rank_of_permutation(perm: np.ndarray) -> np.ndarray:
    """Return the inverse permutation (``rank[perm[i]] == i``).

    For a row ordering ``perm`` (new position -> old row), the inverse maps
    an old row id to its new position, which is what column relabelling and
    scatter operations need.
    """
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv
