"""Shared low-level helpers used across the library.

The utilities here are deliberately tiny and dependency-free (NumPy only):
argument validation (:mod:`repro.util.validation`), deterministic RNG
handling (:mod:`repro.util.rng`), wall-clock timing (:mod:`repro.util.timing`),
lightweight logging (:mod:`repro.util.log`), vectorised array primitives
(:mod:`repro.util.arrayops`) and the reusable scratch-buffer pool backing
the zero-allocation kernel paths (:mod:`repro.util.workspace`).
"""

from repro.util.arrayops import (
    counts_to_offsets,
    lengths_from_offsets,
    offsets_to_row_ids,
    rank_of_permutation,
    segment_max,
    segment_min,
    segment_sum,
)
from repro.util.hashing import digest_arrays, stable_digest
from repro.util.rng import as_generator, spawn_generators
from repro.util.timing import Timer, timed
from repro.util.workspace import Workspace, WorkspacePool
from repro.util.validation import (
    check_dense,
    check_in_range,
    check_integer_array,
    check_nonnegative,
    check_permutation,
    check_positive,
)

__all__ = [
    "counts_to_offsets",
    "lengths_from_offsets",
    "offsets_to_row_ids",
    "rank_of_permutation",
    "segment_max",
    "segment_min",
    "segment_sum",
    "digest_arrays",
    "stable_digest",
    "as_generator",
    "spawn_generators",
    "Timer",
    "timed",
    "Workspace",
    "WorkspacePool",
    "check_dense",
    "check_in_range",
    "check_integer_array",
    "check_nonnegative",
    "check_permutation",
    "check_positive",
]
