"""Argument-validation helpers.

All public entry points of the library validate their inputs with these
helpers so that error messages are uniform and informative.  They raise
:class:`repro.errors.ValidationError` (a ``ValueError`` subclass) on bad
input and return the validated (possibly converted) value on success, which
lets callers write ``n = check_positive("n", n)``.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.errors import ShapeError, ValidationError

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_integer_array",
    "check_dense",
    "check_out",
    "check_permutation",
]


def check_positive(name: str, value, *, integer: bool = True):
    """Validate that ``value`` is a (strictly) positive scalar.

    Parameters
    ----------
    name:
        Parameter name used in the error message.
    value:
        The value to validate.
    integer:
        When true (default) the value must also be an integral number and is
        returned as a built-in ``int``.
    """
    if integer:
        if not isinstance(value, numbers.Integral):
            raise ValidationError(f"{name} must be an integer, got {value!r}")
        value = int(value)
    else:
        if not isinstance(value, numbers.Real):
            raise ValidationError(f"{name} must be a real number, got {value!r}")
        value = float(value)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value, *, integer: bool = True):
    """Validate that ``value`` is a scalar >= 0 (see :func:`check_positive`)."""
    if integer:
        if not isinstance(value, numbers.Integral):
            raise ValidationError(f"{name} must be an integer, got {value!r}")
        value = int(value)
    else:
        if not isinstance(value, numbers.Real):
            raise ValidationError(f"{name} must be a real number, got {value!r}")
        value = float(value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(name: str, value, low, high, *, inclusive: bool = True) -> float:
    """Validate ``low <= value <= high`` (or strict when ``inclusive=False``)."""
    if not isinstance(value, numbers.Real):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValidationError(
            f"{name} must satisfy {low} {op} {name} {op} {high}, got {value!r}"
        )
    return value


def check_integer_array(name: str, arr, *, min_value=None, max_value=None) -> np.ndarray:
    """Validate and convert ``arr`` to a 1-D ``int64`` NumPy array.

    Optionally enforces elementwise bounds.  Float inputs are rejected (a
    silent truncation of column indices would be a data-corruption bug, not a
    convenience).
    """
    arr = np.asarray(arr)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise ValidationError(f"{name} must have an integer dtype, got {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.size:
        if min_value is not None and arr.min() < min_value:
            raise ValidationError(
                f"{name} has entries < {min_value} (min is {arr.min()})"
            )
        if max_value is not None and arr.max() > max_value:
            raise ValidationError(
                f"{name} has entries > {max_value} (max is {arr.max()})"
            )
    return arr


def check_dense(name: str, mat, *, rows=None, cols=None, dtype=np.float64) -> np.ndarray:
    """Validate a 2-D dense operand, optionally pinning its shape.

    Returns a C-contiguous array of ``dtype`` (copying only when necessary;
    views are preserved whenever the input already satisfies the contract,
    per the "use views, not copies" guideline).

    ``dtype=None`` selects the *dtype-preserving* mode: a floating input
    keeps its precision (``float32`` stays ``float32`` — no silent
    up-cast that would double a ``K=512`` operand's memory), while
    non-floating inputs are still promoted to ``float64``.
    """
    mat = np.asarray(mat)
    if mat.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {mat.shape}")
    if rows is not None and mat.shape[0] != rows:
        raise ShapeError(f"{name} must have {rows} rows, got {mat.shape[0]}")
    if cols is not None and mat.shape[1] != cols:
        raise ShapeError(f"{name} must have {cols} columns, got {mat.shape[1]}")
    if dtype is None:
        if not np.issubdtype(mat.dtype, np.floating):
            mat = mat.astype(np.float64)
        return np.ascontiguousarray(mat)
    return np.ascontiguousarray(mat, dtype=dtype)


def check_out(name: str, mat, *, rows: int, cols: int) -> np.ndarray:
    """Validate a caller-supplied output buffer **without ever copying it**.

    :func:`check_dense` coerces with a copy when the input is the wrong
    dtype or non-contiguous — correct for *operands*, silently wrong for
    *outputs*: the kernel would fill the coerced copy and the caller's
    buffer would never see the result.  Output buffers therefore get the
    strict contract: a C-contiguous ``float64`` ndarray of exactly
    ``(rows, cols)``, or a :class:`repro.errors.ValidationError` telling
    the caller why their buffer cannot be written in place.
    """
    if not isinstance(mat, np.ndarray):
        raise ValidationError(
            f"{name} must be a numpy.ndarray (a preallocated output buffer), "
            f"got {type(mat).__name__}"
        )
    if mat.shape != (rows, cols):
        raise ShapeError(
            f"{name} must have shape {(rows, cols)}, got {mat.shape}"
        )
    if mat.dtype != np.float64:
        raise ValidationError(
            f"{name} must be float64 to be written in place, got {mat.dtype} "
            "(a dtype-coerced copy would silently discard the results)"
        )
    if not mat.flags.c_contiguous:
        raise ValidationError(
            f"{name} must be C-contiguous to be written in place "
            "(a contiguous copy would silently discard the results)"
        )
    if not mat.flags.writeable:
        raise ValidationError(f"{name} is read-only and cannot be written in place")
    return mat


def check_permutation(name: str, perm, n: int) -> np.ndarray:
    """Validate that ``perm`` is a permutation of ``range(n)``.

    Accepts read-only inputs (e.g. memory-mapped plan files): the result is
    a fresh or shared ``int64`` array, never an in-place mutation of the
    input.  ``n = 0`` is legal and requires an empty ``perm`` — a non-empty
    one is rejected with a length error rather than a confusing bounds
    message.
    """
    n = check_nonnegative("n", n)
    arr = np.asarray(perm)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size != n:
        raise ValidationError(f"{name} must have length {n}, got {arr.size}")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    perm = check_integer_array(name, arr, min_value=0, max_value=n - 1)
    seen = np.zeros(n, dtype=bool)
    seen[perm] = True
    if not seen.all():
        missing = int(np.flatnonzero(~seen)[0])
        raise ValidationError(f"{name} is not a permutation: index {missing} missing")
    return perm
