"""Stable content hashing for cache keys.

The plan store (:mod:`repro.planstore`) keys cached preprocessing results
by the *content* of a matrix's sparsity pattern, so the digest here must be
reproducible across processes, machines and Python hash seeds.  BLAKE2b is
used because it is in the standard library, fast on large buffers and
keyed digests make domain separation trivial.

Only raw bytes enter the hash: integer arrays are normalised to
little-endian ``int64`` before digesting, so the digest never depends on
the host byte order or on whatever dtype the caller happened to hold.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stable_digest", "digest_arrays"]

#: Digest size in bytes (32 hex chars — plenty for cache-key collision
#: resistance while keeping file names short).
_DIGEST_SIZE = 16


def stable_digest(*parts: bytes) -> str:
    """Hex BLAKE2b digest of the concatenation of byte strings.

    Each part is length-prefixed before hashing so ``(b"ab", b"c")`` and
    ``(b"a", b"bc")`` produce different digests.
    """
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for part in parts:
        h.update(len(part).to_bytes(8, "little"))
        h.update(part)
    return h.hexdigest()


def digest_arrays(*arrays: np.ndarray) -> str:
    """Hex digest of integer arrays, independent of dtype and endianness.

    Every array is converted to contiguous little-endian ``int64`` first;
    use this for index structures (``rowptr``/``colidx``), not for floats.
    """
    parts = []
    for arr in arrays:
        norm = np.ascontiguousarray(arr, dtype=np.int64)
        parts.append(norm.astype("<i8", copy=False).tobytes())
    return stable_digest(*parts)
