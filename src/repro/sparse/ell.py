"""ELLPACK (ELL) sparse format.

The related-work alternatives the paper discusses (FastSpMM's ELLPACK-R,
MAGMA's SELL-P) build on ELL: every row is padded to the same width so the
column-index and value arrays become dense ``(n_rows, width)`` matrices —
perfectly regular accesses at the price of padding.  ELL complements the
evaluation: it shows why format-based regularisation alone cannot deliver
the row-reordering win (padding explodes on skewed row lengths, and ELL has
exactly the same dense-operand reuse problem as CSR).

Padding entries carry column id ``-1`` and value ``0.0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_dense

__all__ = ["ELLMatrix"]

_PAD = np.int64(-1)


@dataclass(frozen=True)
class ELLMatrix:
    """A sparse matrix in ELLPACK layout.

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)``.
    colidx:
        ``(n_rows, width)`` int64; padding slots hold ``-1`` and must sit
        *after* the row's real entries (each row left-packed, sorted).
    values:
        ``(n_rows, width)`` float64; padding slots hold 0.0.
    """

    shape: tuple[int, int]
    colidx: np.ndarray
    values: np.ndarray

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, csr: CSRMatrix, *, max_width: int | None = None) -> "ELLMatrix":
        """Convert canonical CSR to ELL.

        Raises :class:`FormatError` when the longest row exceeds
        ``max_width`` (the classic ELL failure mode on power-law inputs —
        surfacing it is the point).
        """
        lengths = csr.row_lengths()
        width = int(lengths.max()) if lengths.size else 0
        if max_width is not None and width > max_width:
            raise FormatError(
                f"row of length {width} exceeds max_width={max_width}; "
                "ELL padding would explode (use CSR/ASpT instead)"
            )
        m = csr.n_rows
        colidx = np.full((m, max(width, 1)), _PAD, dtype=np.int64)
        values = np.zeros((m, max(width, 1)), dtype=np.float64)
        if csr.nnz:
            rows = csr.row_ids()
            # Position of each nnz within its row.
            slots = np.arange(csr.nnz, dtype=np.int64) - csr.rowptr[:-1][rows]
            colidx[rows, slots] = csr.colidx
            values[rows, slots] = csr.values
        return cls((m, csr.n_cols), colidx, values)

    def validate(self) -> None:
        """Check layout invariants."""
        m, n = self.shape
        if self.colidx.shape != self.values.shape or self.colidx.ndim != 2:
            raise FormatError("colidx and values must be equal-shape 2-D arrays")
        if self.colidx.shape[0] != m:
            raise FormatError(f"expected {m} rows, got {self.colidx.shape[0]}")
        real = self.colidx >= 0
        if real.any() and int(self.colidx[real].max()) >= n:
            raise FormatError(f"column index out of range for {n} columns")
        # Left-packing: once a row hits padding it stays padding.
        padded_then_real = (~real[:, :-1]) & real[:, 1:]
        if padded_then_real.any():
            raise FormatError("rows must be left-packed (padding only at the end)")

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Entries stored per row (including padding)."""
        return int(self.colidx.shape[1])

    @property
    def nnz(self) -> int:
        """Real (non-padding) stored entries."""
        return int((self.colidx >= 0).sum())

    @property
    def padding_ratio(self) -> float:
        """Fraction of storage wasted on padding."""
        total = self.colidx.size
        return 1.0 - self.nnz / total if total else 0.0

    # ------------------------------------------------------------------
    def to_csr(self) -> CSRMatrix:
        """Convert back to canonical CSR (drops padding)."""
        real = self.colidx >= 0
        rows, slots = np.nonzero(real)
        counts = np.bincount(rows, minlength=self.shape[0])
        rowptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=rowptr[1:])
        return CSRMatrix.from_arrays(
            self.shape, rowptr, self.colidx[rows, slots], self.values[rows, slots]
        )

    def to_dense(self) -> np.ndarray:
        """Materialise as dense float64."""
        out = np.zeros(self.shape, dtype=np.float64)
        real = self.colidx >= 0
        rows, slots = np.nonzero(real)
        out[rows, self.colidx[rows, slots]] = self.values[rows, slots]
        return out

    def spmm(self, X: np.ndarray) -> np.ndarray:
        """ELL SpMM: one fully regular gather per slot column.

        ``Y[i] = sum_s values[i, s] * X[colidx[i, s]]`` with padding slots
        contributing zero (their value is 0 and their gather index is
        clamped to 0).
        """
        X = check_dense("X", X, rows=self.shape[1])
        safe_cols = np.maximum(self.colidx, 0)
        # (m, width, k) contraction, slot by slot to bound scratch memory.
        out = np.zeros((self.shape[0], X.shape[1]), dtype=np.float64)
        for s in range(self.width):
            out += self.values[:, s : s + 1] * X[safe_cols[:, s]]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ELLMatrix(shape={self.shape}, width={self.width}, "
            f"padding={self.padding_ratio:.1%})"
        )
