"""Compressed Sparse Column (CSC) container.

CSC is used by the column-density analysis in the ASpT tiler and by the
vertex-reordering baselines (which need fast column access).  Invariants
mirror :class:`repro.sparse.CSRMatrix` with rows and columns swapped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.util.arrayops import lengths_from_offsets, offsets_to_row_ids

__all__ = ["CSCMatrix"]


@dataclass(frozen=True)
class CSCMatrix:
    """A sparse matrix in canonical CSC form.

    ``rowidx[colptr[j]:colptr[j+1]]`` holds the row indices of column ``j``,
    sorted ascending with no duplicates.
    """

    shape: tuple[int, int]
    colptr: np.ndarray
    rowidx: np.ndarray
    values: np.ndarray

    @classmethod
    def from_arrays(cls, shape, colptr, rowidx, values=None) -> "CSCMatrix":
        """Build a CSC matrix via the (already canonicalising) CSR constructor
        on the transposed interpretation."""
        from repro.sparse.csr import CSRMatrix

        m, n = int(shape[0]), int(shape[1])
        # A CSC matrix of shape (m, n) is structurally a CSR matrix of the
        # transpose, shape (n, m): reuse CSR's canonicalisation then rewrap.
        as_csr_t = CSRMatrix.from_arrays((n, m), colptr, rowidx, values)
        return cls((m, n), as_csr_t.rowptr, as_csr_t.colidx, as_csr_t.values)

    @classmethod
    def empty(cls, shape) -> "CSCMatrix":
        """An all-zero matrix of the given shape."""
        m, n = int(shape[0]), int(shape[1])
        return cls(
            (m, n),
            np.zeros(n + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    def validate(self) -> None:
        """Check invariants, raising :class:`FormatError` on violation."""
        m, n = self.shape
        if self.colptr.size != n + 1 or self.colptr[0] != 0:
            raise FormatError("colptr must have length n_cols+1 and start at 0")
        if np.any(np.diff(self.colptr) < 0):
            raise FormatError("colptr must be non-decreasing")
        if self.colptr[-1] != self.rowidx.size or self.rowidx.size != self.values.size:
            raise FormatError("colptr/rowidx/values size mismatch")
        if self.rowidx.size and (self.rowidx.min() < 0 or self.rowidx.max() >= m):
            raise FormatError(f"row index out of range for {m} rows")

    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.rowidx.size)

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of the row indices and values of column ``j``."""
        if not 0 <= j < self.shape[1]:
            raise IndexError(f"column {j} out of range for {self.shape[1]} columns")
        lo, hi = self.colptr[j], self.colptr[j + 1]
        return self.rowidx[lo:hi], self.values[lo:hi]

    def col_lengths(self) -> np.ndarray:
        """Number of non-zeros in each column."""
        return lengths_from_offsets(self.colptr)

    def col_ids(self) -> np.ndarray:
        """Per-non-zero column index."""
        return offsets_to_row_ids(self.colptr)

    def to_csr(self):
        """Convert to canonical CSR."""
        from repro.sparse.conversions import csc_to_csr

        return csc_to_csr(self)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ``float64`` array."""
        out = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            out[self.rowidx, self.col_ids()] = self.values
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
