"""Coordinate (COO) sparse matrix container.

COO is the construction format: generators and the MatrixMarket reader emit
COO, which is then converted once to CSR for all computation.  The container
is an immutable-by-convention triple of parallel arrays ``(rows, cols,
values)`` plus a ``shape``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.util.validation import check_integer_array

__all__ = ["COOMatrix"]


@dataclass(frozen=True)
class COOMatrix:
    """A sparse matrix in coordinate format.

    Attributes
    ----------
    shape:
        ``(n_rows, n_cols)``.
    rows, cols:
        ``int64`` arrays of length ``nnz`` with the coordinates of each
        stored entry.
    values:
        ``float64`` array of length ``nnz``.

    Duplicates are permitted in COO (they are summed on conversion to CSR);
    use :meth:`sum_duplicates` to canonicalise in place of that behaviour.
    """

    shape: tuple[int, int]
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, shape, rows, cols, values=None) -> "COOMatrix":
        """Build and validate a COO matrix from raw arrays.

        ``values=None`` fills ones (pattern matrices — the common case for
        graph adjacency inputs).
        """
        m, n = int(shape[0]), int(shape[1])
        if m < 0 or n < 0:
            raise FormatError(f"shape must be non-negative, got {(m, n)}")
        rows = check_integer_array("rows", rows)
        cols = check_integer_array("cols", cols)
        if rows.size != cols.size:
            raise FormatError(
                f"rows and cols must have equal length, got {rows.size} != {cols.size}"
            )
        if values is None:
            values = np.ones(rows.size, dtype=np.float64)
        else:
            values = np.asarray(values, dtype=np.float64)
            if values.ndim != 1 or values.size != rows.size:
                raise FormatError(
                    f"values must be 1-D of length {rows.size}, got shape {values.shape}"
                )
        out = cls((m, n), rows, cols, values)
        out.validate()
        return out

    @classmethod
    def empty(cls, shape) -> "COOMatrix":
        """An all-zero matrix of the given shape."""
        z = np.empty(0, dtype=np.int64)
        return cls.from_arrays(shape, z, z.copy(), np.empty(0, dtype=np.float64))

    # ------------------------------------------------------------------
    # invariants / basic accessors
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the format invariants, raising :class:`FormatError` on violation."""
        m, n = self.shape
        if self.rows.size != self.cols.size or self.rows.size != self.values.size:
            raise FormatError("rows/cols/values length mismatch")
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= m:
                raise FormatError(f"row index out of range for {m} rows")
            if self.cols.min() < 0 or self.cols.max() >= n:
                raise FormatError(f"column index out of range for {n} columns")

    @property
    def nnz(self) -> int:
        """Number of stored entries (including explicit zeros/duplicates)."""
        return int(self.rows.size)

    def copy(self) -> "COOMatrix":
        """Deep copy (fresh arrays)."""
        return COOMatrix(
            self.shape, self.rows.copy(), self.cols.copy(), self.values.copy()
        )

    # ------------------------------------------------------------------
    # canonicalisation
    # ------------------------------------------------------------------
    def sum_duplicates(self) -> "COOMatrix":
        """Return an equivalent COO with duplicate coordinates summed.

        Output entries are sorted by (row, col) — i.e. canonical order.
        """
        if self.nnz == 0:
            return self.copy()
        # Encode (row, col) into a single sortable key.  shape[1] can be 0
        # only when nnz == 0, handled above.
        key = self.rows * np.int64(self.shape[1]) + self.cols
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        vals_sorted = self.values[order]
        uniq_mask = np.empty(key_sorted.size, dtype=bool)
        uniq_mask[0] = True
        np.not_equal(key_sorted[1:], key_sorted[:-1], out=uniq_mask[1:])
        starts = np.flatnonzero(uniq_mask)
        summed = np.add.reduceat(vals_sorted, starts)
        key_uniq = key_sorted[starts]
        rows = key_uniq // self.shape[1]
        cols = key_uniq % self.shape[1]
        return COOMatrix(self.shape, rows, cols, summed)

    # ------------------------------------------------------------------
    # conversion helpers (thin wrappers; full logic in conversions.py)
    # ------------------------------------------------------------------
    def to_csr(self):
        """Convert to :class:`repro.sparse.CSRMatrix` (duplicates summed)."""
        from repro.sparse.conversions import coo_to_csr

        return coo_to_csr(self)

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ``float64`` array (duplicates summed)."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.rows, self.cols), self.values)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
