"""Structural statistics of sparse matrices.

These feed three places: the dataset corpus metadata (matrix selection
criteria mirror the paper's "at least 10K rows / 10K columns / 100K nnz"),
the §4 reordering heuristics, and the experiment reports.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.contracts import checked, validates
from repro.sparse.csr import CSRMatrix

__all__ = [
    "nnz_per_row",
    "column_counts",
    "density",
    "bandwidth",
    "row_support",
    "structural_summary",
    "StructuralSummary",
]


@checked(validates("csr"))
def nnz_per_row(csr: CSRMatrix) -> np.ndarray:
    """Non-zeros per row."""
    return csr.row_lengths()


@checked(validates("csr"))
def column_counts(csr: CSRMatrix) -> np.ndarray:
    """Non-zeros per column (length ``n_cols``)."""
    if csr.nnz == 0:
        return np.zeros(csr.n_cols, dtype=np.int64)
    return np.bincount(csr.colidx, minlength=csr.n_cols).astype(np.int64)


@checked(validates("csr"))
def density(csr: CSRMatrix) -> float:
    """Fraction of stored entries: ``nnz / (n_rows * n_cols)``."""
    cells = csr.n_rows * csr.n_cols
    return csr.nnz / cells if cells else 0.0


@checked(validates("csr"))
def bandwidth(csr: CSRMatrix) -> int:
    """Maximum ``|i - j|`` over stored entries (0 for empty matrices).

    Used to characterise banded matrices (the class where vertex-style
    orderings like RCM do well but row-reordering has nothing to add).
    """
    if csr.nnz == 0:
        return 0
    return int(np.abs(csr.row_ids() - csr.colidx).max())


@checked(validates("csr"))
def row_support(csr: CSRMatrix, i: int) -> np.ndarray:
    """The support set (sorted column indices) of row ``i`` — the set
    :math:`S_i` of the paper's Jaccard definition."""
    return csr.row_cols(i)


@dataclass(frozen=True)
class StructuralSummary:
    """A compact structural fingerprint of a sparse matrix."""

    n_rows: int
    n_cols: int
    nnz: int
    density: float
    bandwidth: int
    row_nnz_min: int
    row_nnz_max: int
    row_nnz_mean: float
    row_nnz_std: float
    col_nnz_max: int
    empty_rows: int

    def as_dict(self) -> dict:
        """Plain-dict form for JSON serialisation."""
        return asdict(self)


@checked(validates("csr"))
def structural_summary(csr: CSRMatrix) -> StructuralSummary:
    """Compute a :class:`StructuralSummary` in one pass."""
    lengths = csr.row_lengths()
    ccounts = column_counts(csr)
    return StructuralSummary(
        n_rows=csr.n_rows,
        n_cols=csr.n_cols,
        nnz=csr.nnz,
        density=density(csr),
        bandwidth=bandwidth(csr),
        row_nnz_min=int(lengths.min()) if lengths.size else 0,
        row_nnz_max=int(lengths.max()) if lengths.size else 0,
        row_nnz_mean=float(lengths.mean()) if lengths.size else 0.0,
        row_nnz_std=float(lengths.std()) if lengths.size else 0.0,
        col_nnz_max=int(ccounts.max()) if ccounts.size else 0,
        empty_rows=int(np.count_nonzero(lengths == 0)),
    )
