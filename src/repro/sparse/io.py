"""MatrixMarket I/O.

The paper's corpus comes from SuiteSparse and the Network Repository, both
of which distribute matrices in MatrixMarket (``.mtx``) coordinate format.
This module implements a reader/writer for the subset of the format those
collections use — ``matrix coordinate {real,integer,pattern}
{general,symmetric,skew-symmetric}`` — so that real matrices can be dropped
into the experiment harness when available.

Error surface: every failure reading a *path* maps to a
:class:`repro.errors.ReproError` subtype with the path in the message —
filesystem problems become :class:`repro.errors.ReproIOError` (exit code
``EXIT_IO``) after bounded retries of transient errors, undecodable bytes
become :class:`repro.errors.FormatError` (``EXIT_DATA``) — so a sweep
over a corpus directory never dies on a raw ``OSError`` traceback.  The
path-based read also hosts the ``io.read`` fault-injection site.
"""

from __future__ import annotations

import io
import os

import numpy as np

from repro.contracts import checked, validates
from repro.errors import FormatError, ReproIOError
from repro.resilience.faults import fault_point
from repro.resilience.retry import retry_io
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_SUPPORTED_FIELDS = {"real", "integer", "pattern"}
_SUPPORTED_SYMMETRY = {"general", "symmetric", "skew-symmetric"}


def _open_text(path_or_file, mode: str):
    """Return (file_object, should_close)."""
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(os.fspath(path_or_file), mode, encoding="utf-8"), True


def read_matrix_market(path_or_file) -> CSRMatrix:
    """Read a MatrixMarket coordinate file into canonical CSR.

    Symmetric and skew-symmetric inputs are expanded to full storage (the
    convention used by SpMM benchmarks).  Pattern matrices get unit values.

    Raises
    ------
    FormatError
        On a malformed header, unsupported field/symmetry, wrong entry
        counts, out-of-range indices — or, for path inputs, bytes that do
        not decode as text.
    ReproIOError
        When a path cannot be read (after bounded retries of transient
        OS errors); the message carries the path.
    """
    if hasattr(path_or_file, "read"):
        return _parse_matrix_market(path_or_file)
    path = os.fspath(path_or_file)
    fault_point("io.read")

    def _attempt() -> CSRMatrix:
        with open(path, encoding="utf-8") as fh:
            return _parse_matrix_market(fh)

    try:
        return retry_io(_attempt, label=f"read {path}")
    except UnicodeDecodeError as exc:
        raise FormatError(
            f"{path}: not a UTF-8 MatrixMarket text file ({exc})"
        ) from exc
    except ReproIOError:
        raise  # already path-annotated (e.g. the injected io.read fault)
    except OSError as exc:
        raise ReproIOError(f"cannot read MatrixMarket file {path}: {exc}") from exc


def _parse_matrix_market(fh) -> CSRMatrix:
    """Parse an open MatrixMarket text stream (see ``read_matrix_market``).

    The caller owns the handle: path opens are scoped by
    ``read_matrix_market`` itself, file-object inputs stay open.
    """
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise FormatError("missing %%MatrixMarket header")
    parts = header.strip().split()
    if len(parts) < 5:
        raise FormatError(f"malformed header: {header.strip()!r}")
    _, obj, fmt, field, symmetry = parts[:5]
    obj, fmt = obj.lower(), fmt.lower()
    field, symmetry = field.lower(), symmetry.lower()
    if obj != "matrix" or fmt != "coordinate":
        raise FormatError(
            f"only 'matrix coordinate' files are supported, got {obj} {fmt}"
        )
    if field not in _SUPPORTED_FIELDS:
        raise FormatError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRY:
        raise FormatError(f"unsupported symmetry {symmetry!r}")

    # Skip comment lines.
    line = fh.readline()
    while line and line.lstrip().startswith("%"):
        line = fh.readline()
    if not line:
        raise FormatError("missing size line")
    size_parts = line.split()
    if len(size_parts) != 3:
        raise FormatError(f"malformed size line: {line.strip()!r}")
    m, n, declared_nnz = (int(p) for p in size_parts)

    body = fh.read()

    if declared_nnz == 0:
        return CSRMatrix.empty((m, n))

    pattern = field == "pattern"
    cols_per_entry = 2 if pattern else 3
    data = np.loadtxt(
        io.StringIO(body), dtype=np.float64, comments="%", ndmin=2
    )
    if data.size == 0:
        raise FormatError(f"expected {declared_nnz} entries, found 0")
    if data.shape[1] < cols_per_entry:
        raise FormatError(
            f"entries have {data.shape[1]} fields, expected >= {cols_per_entry}"
        )
    if data.shape[0] != declared_nnz:
        raise FormatError(
            f"expected {declared_nnz} entries, found {data.shape[0]}"
        )
    rows = data[:, 0].astype(np.int64) - 1  # MatrixMarket is 1-based
    cols = data[:, 1].astype(np.int64) - 1
    if rows.size and (rows.min() < 0 or rows.max() >= m or cols.min() < 0 or cols.max() >= n):
        raise FormatError("entry index out of declared range")
    values = (
        np.ones(rows.size, dtype=np.float64)
        if pattern
        else data[:, 2].astype(np.float64)
    )

    if symmetry in ("symmetric", "skew-symmetric"):
        off_diag = rows != cols
        mirror_sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows = np.concatenate([rows, cols[off_diag]])
        cols_full = np.concatenate([cols, data[:, 0][off_diag].astype(np.int64) - 1])
        values = np.concatenate([values, mirror_sign * values[off_diag]])
        cols = cols_full

    coo = COOMatrix.from_arrays((m, n), rows, cols, values)
    return coo.to_csr()


@checked(validates("csr"))
def write_matrix_market(path_or_file, csr: CSRMatrix, comment: str = "") -> None:
    """Write canonical CSR as a general real coordinate MatrixMarket file."""
    fh, should_close = _open_text(path_or_file, "w")
    try:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{csr.n_rows} {csr.n_cols} {csr.nnz}\n")
        rows = csr.row_ids() + 1
        cols = csr.colidx + 1
        for r, c, v in zip(rows.tolist(), cols.tolist(), csr.values.tolist()):
            fh.write(f"{r} {c} {v!r}\n")
    finally:
        if should_close:
            fh.close()
