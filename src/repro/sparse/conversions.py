"""Conversions between sparse formats (and dense).

All conversions are fully vectorised: the COO->CSR path is a stable lexsort
followed by a duplicate-collapsing ``reduceat``, and CSR<->CSC is a
transpose-style counting sort.  Everything returns *canonical* containers
(rows/columns sorted, duplicates summed).
"""

from __future__ import annotations

import numpy as np

from repro.contracts import checked, validates
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.util.arrayops import offsets_to_row_ids
from repro.util.validation import check_dense

__all__ = [
    "coo_to_csr",
    "csr_to_coo",
    "csr_to_csc",
    "csc_to_csr",
    "dense_to_csr",
]


@checked(validates("coo"))
def coo_to_csr(coo: COOMatrix) -> CSRMatrix:
    """Convert COO to canonical CSR, summing duplicate coordinates."""
    m, n = coo.shape
    if coo.nnz == 0:
        return CSRMatrix.empty((m, n))
    order = np.lexsort((coo.cols, coo.rows))
    r = coo.rows[order]
    c = coo.cols[order]
    v = coo.values[order]
    keep = np.empty(c.size, dtype=bool)
    keep[0] = True
    keep[1:] = (c[1:] != c[:-1]) | (r[1:] != r[:-1])
    starts = np.flatnonzero(keep)
    v = np.add.reduceat(v, starts)
    c = c[starts]
    r = r[starts]
    counts = np.bincount(r, minlength=m)
    rowptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=rowptr[1:])
    return CSRMatrix((m, n), rowptr, c, v)


@checked(validates("csr"))
def csr_to_coo(csr: CSRMatrix) -> COOMatrix:
    """Expand CSR into COO (entries remain in canonical row-major order)."""
    return COOMatrix(
        csr.shape, csr.row_ids(), csr.colidx.copy(), csr.values.copy()
    )


@checked(validates("csr"))
def csr_to_csc(csr: CSRMatrix) -> CSCMatrix:
    """CSR -> CSC via a stable counting sort on column index.

    Stability of the sort preserves ascending row order within each column,
    so the result is canonical without a second pass.
    """
    m, n = csr.shape
    if csr.nnz == 0:
        return CSCMatrix.empty((m, n))
    row_ids = csr.row_ids()
    order = np.argsort(csr.colidx, kind="stable")
    rowidx = row_ids[order]
    values = csr.values[order]
    counts = np.bincount(csr.colidx, minlength=n)
    colptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=colptr[1:])
    return CSCMatrix((m, n), colptr, rowidx, values)


@checked(validates("csc"))
def csc_to_csr(csc: CSCMatrix) -> CSRMatrix:
    """CSC -> CSR via the mirror-image stable counting sort."""
    m, n = csc.shape
    if csc.nnz == 0:
        return CSRMatrix.empty((m, n))
    col_ids = offsets_to_row_ids(csc.colptr)
    order = np.argsort(csc.rowidx, kind="stable")
    colidx = col_ids[order]
    values = csc.values[order]
    counts = np.bincount(csc.rowidx, minlength=m)
    rowptr = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(counts, out=rowptr[1:])
    return CSRMatrix((m, n), rowptr, colidx, values)


@checked(lambda a: check_dense("dense", a["dense"], dtype=None))
def dense_to_csr(dense: np.ndarray) -> CSRMatrix:
    """Compress a dense array into canonical CSR (alias of
    :meth:`CSRMatrix.from_dense`, provided for API symmetry)."""
    return CSRMatrix.from_dense(dense)
