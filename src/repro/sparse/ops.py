"""Structural operations on CSR matrices.

The row-reordering pipeline is built on :func:`permute_csr_rows`; the ASpT
tiler additionally uses column permutation (per panel) and row/column
extraction to split a matrix into its dense-tile and sparse-remainder parts.
All operations return new canonical CSR matrices and never mutate inputs.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import checked, validates, validates_each
from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_integer_array, check_permutation

__all__ = [
    "permute_csr_rows",
    "permute_csr_columns",
    "transpose_csr",
    "extract_rows",
    "extract_columns",
    "vstack_csr",
    "hstack_csr",
]


@checked(validates("csr"))
def permute_csr_rows(csr: CSRMatrix, order: np.ndarray) -> CSRMatrix:
    """Reorder rows so that new row ``k`` is old row ``order[k]``.

    This is the core data transformation of the paper: a row permutation of
    the *sparse* matrix that leaves the dense operand's indexing untouched.
    Fully vectorised: gathers each old row's slice via repeated-range
    indexing rather than a Python loop.
    """
    order = check_permutation("order", order, csr.n_rows)
    lengths = csr.row_lengths()[order]
    new_rowptr = np.zeros(csr.n_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_rowptr[1:])
    # Gather indices: for each new row k, take the contiguous slice of old
    # row order[k].  Build the gather map without a loop:
    #   gather[p] = old_start[row_of_p] + (p - new_start[row_of_p])
    if csr.nnz:
        from repro.util.arrayops import offsets_to_row_ids

        new_row_of_p = offsets_to_row_ids(new_rowptr)
        old_starts = csr.rowptr[:-1][order]
        gather = old_starts[new_row_of_p] + (
            np.arange(csr.nnz, dtype=np.int64) - new_rowptr[:-1][new_row_of_p]
        )
        colidx = csr.colidx[gather]
        values = csr.values[gather]
    else:
        colidx = csr.colidx.copy()
        values = csr.values.copy()
    # Rows keep their internal sorted order, so the result is canonical.
    return CSRMatrix(csr.shape, new_rowptr, colidx, values)


@checked(validates("csr"))
def permute_csr_columns(csr: CSRMatrix, col_map: np.ndarray) -> CSRMatrix:
    """Relabel columns: new column of an entry is ``col_map[old_column]``.

    ``col_map`` must be a permutation of ``range(n_cols)``.  Rows are
    re-sorted to restore canonical form (column relabelling generally breaks
    the sorted-row invariant).
    """
    col_map = check_permutation("col_map", col_map, csr.n_cols)
    new_cols = col_map[csr.colidx] if csr.nnz else csr.colidx.copy()
    return CSRMatrix.from_arrays(csr.shape, csr.rowptr.copy(), new_cols, csr.values.copy())


@checked(validates("csr"))
def transpose_csr(csr: CSRMatrix) -> CSRMatrix:
    """Transpose via CSC reinterpretation (counting sort, no Python loop)."""
    from repro.sparse.conversions import csr_to_csc

    csc = csr_to_csc(csr)
    # A CSC matrix of shape (m, n) has exactly the CSR arrays of the
    # transpose, shape (n, m).
    return CSRMatrix((csr.n_cols, csr.n_rows), csc.colptr, csc.rowidx, csc.values)


@checked(validates("csr"))
def extract_rows(csr: CSRMatrix, rows: np.ndarray) -> CSRMatrix:
    """Sub-matrix containing the given rows (in the given order).

    Unlike :func:`permute_csr_rows`, ``rows`` may be any subset (possibly
    with repetitions) — the result has ``len(rows)`` rows and the same
    number of columns.
    """
    rows = check_integer_array("rows", rows, min_value=0, max_value=csr.n_rows - 1)
    lengths = csr.row_lengths()[rows]
    rowptr = np.zeros(rows.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=rowptr[1:])
    total = int(rowptr[-1])
    if total:
        from repro.util.arrayops import offsets_to_row_ids

        new_row_of_p = offsets_to_row_ids(rowptr)
        old_starts = csr.rowptr[:-1][rows]
        gather = old_starts[new_row_of_p] + (
            np.arange(total, dtype=np.int64) - rowptr[:-1][new_row_of_p]
        )
        colidx = csr.colidx[gather]
        values = csr.values[gather]
    else:
        colidx = np.empty(0, dtype=np.int64)
        values = np.empty(0, dtype=csr.values.dtype)
    return CSRMatrix((rows.size, csr.n_cols), rowptr, colidx, values)


@checked(validates("csr"))
def extract_columns(csr: CSRMatrix, cols: np.ndarray) -> CSRMatrix:
    """Sub-matrix containing the given columns, relabelled to ``0..len-1``.

    ``cols`` must not contain duplicates.  Entries outside ``cols`` are
    dropped.  Column order in the output follows the order of ``cols``.
    """
    cols = check_integer_array("cols", cols, min_value=0, max_value=csr.n_cols - 1)
    if np.unique(cols).size != cols.size:
        raise ShapeError("cols must not contain duplicates")
    col_map = np.full(csr.n_cols, -1, dtype=np.int64)
    col_map[cols] = np.arange(cols.size, dtype=np.int64)
    keep = col_map[csr.colidx] >= 0 if csr.nnz else np.empty(0, dtype=bool)
    row_ids = csr.row_ids()[keep]
    new_cols = col_map[csr.colidx[keep]]
    values = csr.values[keep]
    counts = np.bincount(row_ids, minlength=csr.n_rows)
    rowptr = np.zeros(csr.n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=rowptr[1:])
    return CSRMatrix.from_arrays((csr.n_rows, cols.size), rowptr, new_cols, values)


@checked(validates_each("mats"))
def vstack_csr(mats: list[CSRMatrix]) -> CSRMatrix:
    """Stack CSR matrices vertically (all must share ``n_cols``)."""
    if not mats:
        raise ShapeError("vstack_csr requires at least one matrix")
    n_cols = mats[0].n_cols
    for m in mats:
        if m.n_cols != n_cols:
            raise ShapeError("all matrices must have the same number of columns")
    rowptr_parts = [mats[0].rowptr]
    offset = mats[0].nnz
    for m in mats[1:]:
        rowptr_parts.append(m.rowptr[1:] + offset)
        offset += m.nnz
    rowptr = np.concatenate(rowptr_parts)
    colidx = np.concatenate([m.colidx for m in mats])
    values = np.concatenate([m.values for m in mats])
    n_rows = sum(m.n_rows for m in mats)
    return CSRMatrix((n_rows, n_cols), rowptr, colidx, values)


@checked(validates_each("mats"))
def hstack_csr(mats: list[CSRMatrix]) -> CSRMatrix:
    """Stack CSR matrices horizontally (all must share ``n_rows``)."""
    if not mats:
        raise ShapeError("hstack_csr requires at least one matrix")
    n_rows = mats[0].n_rows
    for m in mats:
        if m.n_rows != n_rows:
            raise ShapeError("all matrices must have the same number of rows")
    col_offsets = np.cumsum([0] + [m.n_cols for m in mats])
    rows = np.concatenate([m.row_ids() for m in mats])
    cols = np.concatenate(
        [m.colidx + off for m, off in zip(mats, col_offsets[:-1])]
    )
    values = np.concatenate([m.values for m in mats])
    from repro.sparse.coo import COOMatrix
    from repro.sparse.conversions import coo_to_csr

    total_cols = int(col_offsets[-1])
    return coo_to_csr(
        COOMatrix((n_rows, total_cols), rows.astype(np.int64), cols.astype(np.int64), values)
    )
