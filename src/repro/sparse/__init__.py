"""Sparse-matrix substrate.

From-scratch COO/CSR/CSC containers backed by NumPy arrays, plus structural
operations (permutation, transpose, slicing), structural statistics and
MatrixMarket I/O.  These containers are the currency of the whole library:
the reordering pipeline consumes and produces :class:`CSRMatrix`, the ASpT
tiler splits one into a :class:`repro.aspt.TiledMatrix`, and the kernels and
the GPU performance model read their arrays directly.

``scipy.sparse`` is intentionally **not** used anywhere in the library path;
it appears only in the test suite as an independent oracle.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.conversions import (
    coo_to_csr,
    csr_to_coo,
    csr_to_csc,
    csc_to_csr,
    dense_to_csr,
)
from repro.sparse.ops import (
    extract_columns,
    extract_rows,
    hstack_csr,
    permute_csr_columns,
    permute_csr_rows,
    transpose_csr,
    vstack_csr,
)
from repro.sparse.properties import (
    bandwidth,
    column_counts,
    density,
    nnz_per_row,
    row_support,
    structural_summary,
)
from repro.sparse.io import read_matrix_market, write_matrix_market

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "ELLMatrix",
    "CSCMatrix",
    "coo_to_csr",
    "csr_to_coo",
    "csr_to_csc",
    "csc_to_csr",
    "dense_to_csr",
    "extract_columns",
    "extract_rows",
    "hstack_csr",
    "permute_csr_columns",
    "permute_csr_rows",
    "transpose_csr",
    "vstack_csr",
    "bandwidth",
    "column_counts",
    "density",
    "nnz_per_row",
    "row_support",
    "structural_summary",
    "read_matrix_market",
    "write_matrix_market",
]
