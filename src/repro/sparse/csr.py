"""Compressed Sparse Row (CSR) container — the paper's Fig. 1 format.

The invariants maintained by every constructor in this module:

* ``rowptr`` is a non-decreasing ``int64`` array of length ``n_rows + 1``
  with ``rowptr[0] == 0`` and ``rowptr[-1] == nnz``;
* ``colidx[rowptr[i]:rowptr[i+1]]`` holds the column indices of row ``i``
  **sorted ascending with no duplicates** (canonical form);
* ``values`` is ``float64`` and parallel to ``colidx``.

Canonical (sorted, deduplicated) rows are required by the Jaccard merge
routines and the ASpT tiler, so unlike scipy we make canonical form an
invariant rather than a flag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.util.arrayops import lengths_from_offsets, offsets_to_row_ids

__all__ = ["CSRMatrix"]


@dataclass(frozen=True)
class CSRMatrix:
    """A sparse matrix in canonical CSR form (see module docstring)."""

    shape: tuple[int, int]
    rowptr: np.ndarray
    colidx: np.ndarray
    values: np.ndarray

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, shape, rowptr, colidx, values=None) -> "CSRMatrix":
        """Build a CSR matrix, canonicalising rows if necessary.

        Rows with unsorted or duplicate column indices are sorted and
        deduplicated (duplicate values summed).  ``values=None`` fills ones.
        """
        m, n = int(shape[0]), int(shape[1])
        rowptr = np.ascontiguousarray(rowptr, dtype=np.int64)
        colidx = np.ascontiguousarray(colidx, dtype=np.int64)
        if values is None:
            values = np.ones(colidx.size, dtype=np.float64)
        else:
            values = np.ascontiguousarray(values, dtype=np.float64)
        mat = cls((m, n), rowptr, colidx, values)
        mat._check_structure()
        if not mat._rows_canonical():
            mat = mat._canonicalise()
        return mat

    @classmethod
    def from_dense(cls, dense) -> "CSRMatrix":
        """Compress a dense array, dropping exact zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ShapeError(f"dense input must be 2-D, got shape {dense.shape}")
        rows, cols = np.nonzero(dense)
        counts = np.bincount(rows, minlength=dense.shape[0])
        rowptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=rowptr[1:])
        return cls(
            (dense.shape[0], dense.shape[1]),
            rowptr,
            cols.astype(np.int64),
            dense[rows, cols],
        )

    @classmethod
    def empty(cls, shape) -> "CSRMatrix":
        """An all-zero matrix of the given shape."""
        m, n = int(shape[0]), int(shape[1])
        return cls(
            (m, n),
            np.zeros(m + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def _check_structure(self) -> None:
        m, n = self.shape
        if m < 0 or n < 0:
            raise FormatError(f"shape must be non-negative, got {self.shape}")
        if self.rowptr.ndim != 1 or self.rowptr.size != m + 1:
            raise FormatError(
                f"rowptr must have length n_rows+1={m + 1}, got {self.rowptr.size}"
            )
        if self.rowptr[0] != 0:
            raise FormatError(f"rowptr[0] must be 0, got {self.rowptr[0]}")
        if np.any(np.diff(self.rowptr) < 0):
            raise FormatError("rowptr must be non-decreasing")
        if self.rowptr[-1] != self.colidx.size:
            raise FormatError(
                f"rowptr[-1]={self.rowptr[-1]} must equal nnz={self.colidx.size}"
            )
        if self.colidx.size != self.values.size:
            raise FormatError("colidx and values length mismatch")
        if self.colidx.size:
            if self.colidx.min() < 0 or self.colidx.max() >= n:
                raise FormatError(f"column index out of range for {n} columns")

    def _rows_canonical(self) -> bool:
        """True when every row is strictly increasing in column index."""
        if self.colidx.size <= 1:
            return True
        increasing = self.colidx[1:] > self.colidx[:-1]
        # Positions where a new row starts are allowed to decrease.
        row_starts = np.zeros(self.colidx.size, dtype=bool)
        starts = self.rowptr[1:-1]
        row_starts[starts[starts < self.colidx.size]] = True
        return bool(np.all(increasing | row_starts[1:]))

    def _canonicalise(self) -> "CSRMatrix":
        """Sort each row by column and sum duplicates (returns new matrix)."""
        row_ids = offsets_to_row_ids(self.rowptr)
        order = np.lexsort((self.colidx, row_ids))
        r = row_ids[order]
        c = self.colidx[order]
        v = self.values[order]
        if c.size:
            keep = np.empty(c.size, dtype=bool)
            keep[0] = True
            keep[1:] = (c[1:] != c[:-1]) | (r[1:] != r[:-1])
            starts = np.flatnonzero(keep)
            v = np.add.reduceat(v, starts)
            c = c[starts]
            r = r[starts]
        counts = np.bincount(r, minlength=self.shape[0]) if r.size else np.zeros(
            self.shape[0], dtype=np.int64
        )
        rowptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=rowptr[1:])
        return CSRMatrix(self.shape, rowptr, c, v)

    def validate(self) -> None:
        """Check *all* invariants including canonical row form."""
        self._check_structure()
        if not self._rows_canonical():
            raise FormatError("rows are not in canonical (sorted, unique) form")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.colidx.size)

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Views of the column indices and values of row ``i``.

        Returned arrays are views into the underlying storage — do not
        mutate them.
        """
        if not 0 <= i < self.shape[0]:
            raise IndexError(f"row {i} out of range for {self.shape[0]} rows")
        lo, hi = self.rowptr[i], self.rowptr[i + 1]
        return self.colidx[lo:hi], self.values[lo:hi]

    def row_cols(self, i: int) -> np.ndarray:
        """View of the column indices of row ``i`` (the row's *support set*)."""
        return self.row(i)[0]

    def row_lengths(self) -> np.ndarray:
        """Number of non-zeros in each row (length ``n_rows``)."""
        return lengths_from_offsets(self.rowptr)

    def row_ids(self) -> np.ndarray:
        """Per-non-zero row index (CSR -> COO row expansion)."""
        return offsets_to_row_ids(self.rowptr)

    # ------------------------------------------------------------------
    # conversions / derivations
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ``float64`` array."""
        out = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            out[self.row_ids(), self.colidx] = self.values
        return out

    def to_coo(self):
        """Convert to :class:`repro.sparse.COOMatrix`."""
        from repro.sparse.conversions import csr_to_coo

        return csr_to_coo(self)

    def transpose(self) -> "CSRMatrix":
        """Return the transpose as a new canonical CSR matrix."""
        from repro.sparse.ops import transpose_csr

        return transpose_csr(self)

    def copy(self) -> "CSRMatrix":
        """Deep copy (fresh arrays)."""
        return CSRMatrix(
            self.shape, self.rowptr.copy(), self.colidx.copy(), self.values.copy()
        )

    def with_values(self, values: np.ndarray) -> "CSRMatrix":
        """Same sparsity pattern, different values (no copy of structure)."""
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.size != self.nnz:
            raise ShapeError(f"expected {self.nnz} values, got {values.size}")
        return CSRMatrix(self.shape, self.rowptr, self.colidx, values)

    def pattern(self) -> "CSRMatrix":
        """Same sparsity with all values set to one."""
        return CSRMatrix(
            self.shape, self.rowptr, self.colidx, np.ones(self.nnz, dtype=np.float64)
        )

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def same_pattern(self, other: "CSRMatrix") -> bool:
        """Structural equality of the sparsity patterns."""
        return (
            self.shape == other.shape
            and np.array_equal(self.rowptr, other.rowptr)
            and np.array_equal(self.colidx, other.colidx)
        )

    def allclose(self, other: "CSRMatrix", rtol=1e-10, atol=1e-12) -> bool:
        """Numerical equality (requires identical canonical patterns)."""
        return self.same_pattern(other) and np.allclose(
            self.values, other.values, rtol=rtol, atol=atol
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
