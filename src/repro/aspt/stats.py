"""Tiling statistics.

``dense_ratio`` is the paper's §4 round-1 indicator (skip reordering when
the original matrix already puts >10% of its non-zeros in dense tiles);
``ΔDenseRatio`` and ``ΔAvgSim`` together form the axes of the paper's
Fig. 9 effectiveness analysis, computed by
:func:`repro.reorder.pipeline.reorder_for_spmm` and reported through
:class:`TilingStats`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.aspt.tiles import TiledMatrix, tile_matrix
from repro.contracts import checked, invokes, validates
from repro.sparse.csr import CSRMatrix

__all__ = [
    "dense_ratio",
    "tiling_stats",
    "TilingStats",
    "panel_dense_column_histogram",
]


@checked(validates("csr"))
def dense_ratio(
    csr: CSRMatrix, panel_height: int, dense_threshold: int = 2
) -> float:
    """Fraction of non-zeros that ASpT would capture in dense tiles.

    Convenience wrapper that tiles and reads
    :attr:`repro.aspt.TiledMatrix.dense_ratio`.
    """
    return tile_matrix(csr, panel_height, dense_threshold).dense_ratio


@dataclass(frozen=True)
class TilingStats:
    """Summary of one :class:`TiledMatrix`."""

    n_panels: int
    nnz_total: int
    nnz_dense: int
    nnz_sparse: int
    dense_ratio: float
    n_dense_column_instances: int
    max_dense_cols_in_panel: int
    panels_with_dense_tiles: int

    def as_dict(self) -> dict:
        """Plain-dict form for JSON serialisation."""
        return asdict(self)


@checked(invokes("validate_structure", "tiled"))
def tiling_stats(tiled: TiledMatrix) -> TilingStats:
    """Compute a :class:`TilingStats` from a finished split."""
    sizes = np.array([c.size for c in tiled.panel_dense_cols], dtype=np.int64)
    return TilingStats(
        n_panels=tiled.spec.n_panels,
        nnz_total=tiled.original.nnz,
        nnz_dense=tiled.nnz_dense,
        nnz_sparse=tiled.nnz_sparse,
        dense_ratio=tiled.dense_ratio,
        n_dense_column_instances=int(sizes.sum()),
        max_dense_cols_in_panel=int(sizes.max()) if sizes.size else 0,
        panels_with_dense_tiles=int(np.count_nonzero(sizes)),
    )


@checked(invokes("validate_structure", "tiled"))
def panel_dense_column_histogram(tiled: TiledMatrix) -> np.ndarray:
    """Histogram of dense-column counts across panels.

    ``hist[k]`` is the number of panels with exactly ``k`` dense columns;
    the array has length ``max_count + 1`` (or 1 when there are no panels).
    """
    sizes = np.array([c.size for c in tiled.panel_dense_cols], dtype=np.int64)
    if sizes.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(sizes)
