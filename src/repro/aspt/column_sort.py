"""Per-panel column ordering (paper Fig. 3b).

ASpT conceptually reorders the columns of each row panel so that densely
populated columns come first.  The tiler (:mod:`repro.aspt.tiles`) never
needs the explicit permutation — it partitions non-zeros directly — but the
ordering is part of the published transformation, is useful for
visualisation, and pins down tie-breaking semantics for tests: columns sort
by descending per-panel count, ties by ascending column index, and columns
absent from the panel keep their relative order after all present columns.
"""

from __future__ import annotations

import numpy as np

from repro.aspt.panels import PanelSpec
from repro.contracts import checked, validates
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_positive

__all__ = ["panel_column_orders"]


@checked(validates("csr"))
def panel_column_orders(csr: CSRMatrix, panel_height: int) -> list[np.ndarray]:
    """Column permutation of each panel.

    Returns one permutation array per panel; ``perm[k]`` is the original
    column index placed at position ``k`` after sorting (densest first).

    Examples
    --------
    For the paper's Fig. 1a matrix with ``panel_height=3``, the first
    panel's order starts with column 4 (the only column with two
    non-zeros); the second panel keeps the natural order because every
    column there has at most one non-zero.
    """
    check_positive("panel_height", panel_height)
    spec = PanelSpec(csr.n_rows, panel_height)
    n = csr.n_cols
    orders: list[np.ndarray] = []
    if csr.nnz == 0:
        return [np.arange(n, dtype=np.int64) for _ in range(spec.n_panels)]

    row_ids = csr.row_ids()
    panel_ids = row_ids // panel_height
    for p in range(spec.n_panels):
        lo = np.searchsorted(panel_ids, p, side="left")
        hi = np.searchsorted(panel_ids, p, side="right")
        counts = np.bincount(csr.colidx[lo:hi], minlength=n)
        # Stable sort on ascending column index, then stable sort by
        # descending count => exactly the documented tie-breaking.
        order = np.argsort(-counts, kind="stable").astype(np.int64)
        orders.append(order)
    return orders
