"""Row panels: the first step of ASpT (paper Fig. 3a).

A *panel* is a group of ``panel_height`` consecutive rows.  The panel
decomposition never moves data — it only defines the scope within which
column density is evaluated, so the helpers here are pure index arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.contracts import checked, validates
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_positive

__all__ = ["PanelSpec", "panel_of_rows", "split_into_panels"]


@dataclass(frozen=True)
class PanelSpec:
    """Panel decomposition of an ``n_rows``-row matrix.

    Attributes
    ----------
    n_rows:
        Number of matrix rows.
    panel_height:
        Rows per panel (the last panel may be shorter).
    n_panels:
        ``ceil(n_rows / panel_height)``.
    """

    n_rows: int
    panel_height: int

    def __post_init__(self):
        check_positive("panel_height", self.panel_height)
        if self.n_rows < 0:
            raise ValueError(f"n_rows must be >= 0, got {self.n_rows}")

    @property
    def n_panels(self) -> int:
        """``ceil(n_rows / panel_height)`` (0 for an empty matrix)."""
        return -(-self.n_rows // self.panel_height) if self.n_rows else 0

    def panel_of(self, row: int) -> int:
        """Panel index containing ``row``."""
        if not 0 <= row < self.n_rows:
            raise IndexError(f"row {row} out of range for {self.n_rows} rows")
        return row // self.panel_height

    def rows_of(self, panel: int) -> np.ndarray:
        """Row indices of ``panel``."""
        if not 0 <= panel < self.n_panels:
            raise IndexError(f"panel {panel} out of range for {self.n_panels} panels")
        lo = panel * self.panel_height
        hi = min(lo + self.panel_height, self.n_rows)
        return np.arange(lo, hi, dtype=np.int64)

    def bounds(self, panel: int) -> tuple[int, int]:
        """Half-open row range ``[lo, hi)`` of ``panel``."""
        if not 0 <= panel < self.n_panels:
            raise IndexError(f"panel {panel} out of range for {self.n_panels} panels")
        lo = panel * self.panel_height
        return lo, min(lo + self.panel_height, self.n_rows)


def panel_of_rows(rows: np.ndarray, panel_height: int) -> np.ndarray:
    """Vectorised ``row // panel_height``."""
    check_positive("panel_height", panel_height)
    return np.asarray(rows, dtype=np.int64) // panel_height


@checked(validates("csr"))
def split_into_panels(csr: CSRMatrix, panel_height: int) -> list[CSRMatrix]:
    """Materialise each panel as its own CSR sub-matrix.

    This is a convenience for inspection and tests; the tiler itself works
    on index arrays without materialising panels.
    """
    from repro.sparse.ops import extract_rows

    spec = PanelSpec(csr.n_rows, panel_height)
    return [extract_rows(csr, spec.rows_of(p)) for p in range(spec.n_panels)]
