"""Adaptive Sparse Tiling (ASpT) substrate — Hong et al., PPoPP 2019.

This reimplements the data transformation the paper builds on (§2.3): rows
are grouped into *panels* of consecutive rows; within each panel, columns
with at least ``dense_threshold`` non-zeros form *dense tiles* whose
corresponding dense-operand rows are staged through GPU shared memory, while
the remaining non-zeros form the *sparse remainder* processed row-wise.

:func:`repro.aspt.tile_matrix` performs the split and returns a
:class:`repro.aspt.TiledMatrix`; :mod:`repro.aspt.stats` computes the
dense-ratio statistics that drive both the paper's §4 heuristics and the
Fig. 9 analysis.
"""

from repro.aspt.column_sort import panel_column_orders
from repro.aspt.panels import PanelSpec, panel_of_rows, split_into_panels
from repro.aspt.stats import (
    TilingStats,
    dense_ratio,
    panel_dense_column_histogram,
    tiling_stats,
)
from repro.aspt.tiles import TiledMatrix, tile_matrix

__all__ = [
    "PanelSpec",
    "panel_of_rows",
    "split_into_panels",
    "panel_column_orders",
    "TiledMatrix",
    "tile_matrix",
    "TilingStats",
    "dense_ratio",
    "tiling_stats",
    "panel_dense_column_histogram",
]
