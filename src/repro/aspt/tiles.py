"""The ASpT dense/sparse split (paper Fig. 3b-c).

Within each row panel, a column holding at least ``dense_threshold``
non-zeros is *dense*: its non-zeros join the panel's dense tiles, whose
dense-operand rows the GPU kernel stages through shared memory.  Everything
else is the *sparse remainder*, processed row-wise.

The split is represented as two CSR matrices over the **original** shape
plus per-panel dense-column lists.  Keeping original coordinates makes
functional correctness trivial (``A @ X == dense_part @ X + sparse_part @ X``
by construction) while giving the performance model exactly the structures
it needs: dense-column counts per panel (shared-memory preload traffic) and
the remainder's access stream (L2-modelled traffic).

An optional ``max_dense_cols`` mirrors the shared-memory capacity limit of
real ASpT: when a panel has more dense columns than fit, only the densest
``max_dense_cols`` stay dense and the rest are demoted to the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.aspt.panels import PanelSpec
from repro.contracts import checked, validates
from repro.sparse.csr import CSRMatrix
from repro.util.arrayops import counts_to_offsets
from repro.util.validation import check_positive

__all__ = ["TiledMatrix", "tile_matrix"]


@dataclass(frozen=True)
class TiledMatrix:
    """Result of the ASpT split.

    Attributes
    ----------
    original:
        The input matrix (post any row reordering).
    dense_part:
        CSR holding exactly the non-zeros inside dense tiles.
    sparse_part:
        CSR holding the remainder; ``dense_part + sparse_part`` is a
        disjoint partition of ``original``'s non-zeros.
    spec:
        The panel decomposition.
    dense_threshold:
        Minimum per-panel column count for a dense column.
    panel_dense_cols:
        ``panel_dense_cols[p]`` is the sorted array of dense columns of
        panel ``p`` (empty array when the panel has none).
    """

    original: CSRMatrix
    dense_part: CSRMatrix
    sparse_part: CSRMatrix
    spec: PanelSpec
    dense_threshold: int
    panel_dense_cols: list = field(repr=False)

    @property
    def nnz_dense(self) -> int:
        """Non-zeros captured in dense tiles."""
        return self.dense_part.nnz

    @property
    def nnz_sparse(self) -> int:
        """Non-zeros in the sparse remainder."""
        return self.sparse_part.nnz

    @property
    def dense_ratio(self) -> float:
        """Fraction of non-zeros in dense tiles — the §4 round-1 indicator."""
        total = self.original.nnz
        return self.nnz_dense / total if total else 0.0

    @property
    def n_dense_columns_total(self) -> int:
        """Total dense-column instances across panels (with multiplicity:
        the same matrix column counted once per panel it is dense in).
        Equals the number of shared-memory row preloads per K-chunk."""
        return int(sum(cols.size for cols in self.panel_dense_cols))

    def validate_structure(self) -> None:
        """Cheap invariant check: shapes, canonical parts, nnz accounting.

        Unlike :meth:`validate` this never materialises dense arrays, so it
        is safe as a per-call contract (:mod:`repro.contracts`).
        """
        from repro.errors import FormatError

        if self.dense_part.shape != self.original.shape:
            raise FormatError("dense_part shape differs from original")
        if self.sparse_part.shape != self.original.shape:
            raise FormatError("sparse_part shape differs from original")
        if self.nnz_dense + self.nnz_sparse != self.original.nnz:
            raise FormatError(
                f"tile partition loses non-zeros: {self.nnz_dense} dense + "
                f"{self.nnz_sparse} sparse != {self.original.nnz}"
            )
        if len(self.panel_dense_cols) != self.spec.n_panels:
            raise FormatError(
                f"panel_dense_cols has {len(self.panel_dense_cols)} entries "
                f"for {self.spec.n_panels} panels"
            )
        self.dense_part.validate()
        self.sparse_part.validate()

    def validate(self) -> None:
        """Cross-check the partition invariants (test/diagnostic helper)."""
        self.validate_structure()
        recombined = self.dense_part.to_dense() + self.sparse_part.to_dense()
        np.testing.assert_allclose(recombined, self.original.to_dense())


def _split_by_mask(csr: CSRMatrix, keep: np.ndarray) -> CSRMatrix:
    """New CSR with only the non-zeros where ``keep`` is true."""
    row_ids = csr.row_ids()[keep]
    counts = (
        np.bincount(row_ids, minlength=csr.n_rows)
        if row_ids.size
        else np.zeros(csr.n_rows, dtype=np.int64)
    )
    rowptr = counts_to_offsets(counts)
    return CSRMatrix(csr.shape, rowptr, csr.colidx[keep], csr.values[keep])


@checked(validates("csr"))
def tile_matrix(
    csr: CSRMatrix,
    panel_height: int,
    dense_threshold: int = 2,
    *,
    max_dense_cols: int | None = None,
) -> TiledMatrix:
    """Apply the ASpT dense/sparse split.

    Parameters
    ----------
    csr:
        Input matrix (already row-reordered if the pipeline chose to).
    panel_height:
        Rows per panel (the paper's illustrative example uses 3; the GPU
        configuration uses panels sized to thread-block row coverage).
    dense_threshold:
        Per-panel column count at or above which a column is dense.  The
        paper's example uses 2.
    max_dense_cols:
        Optional shared-memory capacity cap per panel (see module
        docstring).

    Returns
    -------
    TiledMatrix
    """
    check_positive("panel_height", panel_height)
    check_positive("dense_threshold", dense_threshold)
    if max_dense_cols is not None:
        check_positive("max_dense_cols", max_dense_cols)

    spec = PanelSpec(csr.n_rows, panel_height)
    n = csr.n_cols
    if csr.nnz == 0 or spec.n_panels == 0:
        empty = CSRMatrix.empty(csr.shape)
        return TiledMatrix(
            original=csr,
            dense_part=empty,
            sparse_part=csr.copy(),
            spec=spec,
            dense_threshold=dense_threshold,
            panel_dense_cols=[np.empty(0, dtype=np.int64) for _ in range(spec.n_panels)],
        )

    row_ids = csr.row_ids()
    panel_ids = row_ids // panel_height
    # Per-(panel, column) non-zero counts via a composite key.
    key = panel_ids * np.int64(n) + csr.colidx
    uniq, inverse, counts = np.unique(key, return_inverse=True, return_counts=True)
    dense_key_mask = counts >= dense_threshold

    if max_dense_cols is not None and dense_key_mask.any():
        # Demote overflow columns per panel, keeping the densest.
        dense_keys = uniq[dense_key_mask]
        dense_counts = counts[dense_key_mask]
        panels = dense_keys // n
        # Sort by (panel, -count, column) and keep the first max_dense_cols
        # of each panel.
        order = np.lexsort((dense_keys % n, -dense_counts, panels))
        panels_sorted = panels[order]
        # Rank within panel = position - first position of that panel.
        first_of_panel = np.concatenate(
            [[0], np.flatnonzero(panels_sorted[1:] != panels_sorted[:-1]) + 1]
        )
        panel_start = np.zeros(panels_sorted.size, dtype=np.int64)
        panel_start[first_of_panel] = first_of_panel
        np.maximum.accumulate(panel_start, out=panel_start)
        rank = np.arange(panels_sorted.size, dtype=np.int64) - panel_start
        keep_sorted = rank < max_dense_cols
        kept = np.zeros(dense_keys.size, dtype=bool)
        kept[order] = keep_sorted
        new_mask = np.zeros(uniq.size, dtype=bool)
        new_mask[np.flatnonzero(dense_key_mask)[kept]] = True
        dense_key_mask = new_mask

    nnz_is_dense = dense_key_mask[inverse]

    dense_part = _split_by_mask(csr, nnz_is_dense)
    sparse_part = _split_by_mask(csr, ~nnz_is_dense)

    dense_keys = uniq[dense_key_mask]
    # uniq is sorted, so dense_keys is sorted by (panel, column) already:
    # slice per panel with searchsorted instead of a quadratic scan.
    panels = (dense_keys // n).astype(np.int64)
    cols = (dense_keys % n).astype(np.int64)
    cuts = np.searchsorted(panels, np.arange(spec.n_panels + 1, dtype=np.int64))
    panel_dense_cols: list[np.ndarray] = [
        cols[cuts[p] : cuts[p + 1]] for p in range(spec.n_panels)
    ]

    return TiledMatrix(
        original=csr,
        dense_part=dense_part,
        sparse_part=sparse_part,
        spec=spec,
        dense_threshold=dense_threshold,
        panel_dense_cols=panel_dense_cols,
    )
