"""Access-trace generation for the modelled kernels.

The row-wise SpMM/SDDMM kernel assigns one warp per sparse-matrix row and
groups ``warps_per_block`` consecutive rows into a thread block (paper
§2.3/Fig. 3c).  Within a thread block the dense-operand rows named by the
block's column indices are each fetched from global memory **once** — the
second warp hitting the same column finds the line in L1/L2 — which is
precisely the counting model the paper uses in its Fig. 3/4 walk-through.

:func:`block_access_stream` produces the per-block-deduplicated sequence of
dense-row ids; downstream, the L2 simulator decides which of those accesses
still reach DRAM.  :func:`unique_block_column_count` is the closed-form
"no cache between blocks" count used in the paper's toy example, and
:func:`paper_example_access_counts` packages the three numbers the paper
reports for its 6x6 example (13 -> 12 -> 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aspt.tiles import tile_matrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import permute_csr_rows
from repro.util.validation import check_positive

__all__ = [
    "block_access_stream",
    "unique_block_column_count",
    "ExampleAccessCounts",
    "paper_example_access_counts",
]


def _unique_block_col_keys(csr: CSRMatrix, rows_per_block: int) -> np.ndarray:
    """Sorted unique ``block * n_cols + col`` keys over all non-zeros."""
    if csr.nnz == 0:
        return np.empty(0, dtype=np.int64)
    block_ids = csr.row_ids() // rows_per_block
    keys = block_ids * np.int64(csr.n_cols) + csr.colidx
    return np.unique(keys)


def block_access_stream(csr: CSRMatrix, rows_per_block: int) -> np.ndarray:
    """Dense-row access stream after intra-thread-block deduplication.

    Returns the column ids (= dense-operand row ids) each thread block
    fetches, ordered by block then column.  This is the stream the L2
    model consumes: one entry = one potential DRAM row load.
    """
    check_positive("rows_per_block", rows_per_block)
    keys = _unique_block_col_keys(csr, rows_per_block)
    return (keys % np.int64(csr.n_cols)).astype(np.int64) if keys.size else keys


def unique_block_column_count(csr: CSRMatrix, rows_per_block: int) -> int:
    """Global-memory row loads assuming no reuse *across* thread blocks.

    This is the paper's illustrative counting model: each thread block
    loads each distinct column it touches exactly once.
    """
    check_positive("rows_per_block", rows_per_block)
    return int(_unique_block_col_keys(csr, rows_per_block).size)


@dataclass(frozen=True)
class ExampleAccessCounts:
    """The three access counts of the paper's running example."""

    rowwise: int
    aspt: int
    aspt_reordered: int


def paper_example_access_counts(
    csr: CSRMatrix,
    *,
    panel_height: int = 3,
    rows_per_block: int = 2,
    dense_threshold: int = 2,
    round1_order: np.ndarray | None = None,
    round2_order: np.ndarray | None = None,
) -> ExampleAccessCounts:
    """Reproduce the paper's Fig. 3/4 global-memory access counting.

    * ``rowwise``: one load per distinct (thread block, column) pair on the
      original matrix (13 in the paper's example).
    * ``aspt``: ASpT on the original matrix — one load per dense-column
      instance plus the row-wise count on the sparse remainder (1 + 11 =
      12 in the example).
    * ``aspt_reordered``: ASpT after ``round1_order`` row reordering, with
      the sparse remainder further reordered by ``round2_order`` (6 in the
      example: 4 dense-column loads + 2 remainder loads).

    ``round2_order`` permutes the rows of the *reordered* matrix (i.e. it
    composes on top of ``round1_order``) before the remainder is counted.
    """
    rowwise = unique_block_column_count(csr, rows_per_block)

    tiled = tile_matrix(csr, panel_height, dense_threshold)
    aspt = tiled.n_dense_columns_total + unique_block_column_count(
        tiled.sparse_part, rows_per_block
    )

    reordered = csr
    if round1_order is not None:
        reordered = permute_csr_rows(csr, np.asarray(round1_order, dtype=np.int64))
    tiled_rr = tile_matrix(reordered, panel_height, dense_threshold)
    remainder = tiled_rr.sparse_part
    if round2_order is not None:
        remainder = permute_csr_rows(
            remainder, np.asarray(round2_order, dtype=np.int64)
        )
    aspt_rr = tiled_rr.n_dense_columns_total + unique_block_column_count(
        remainder, rows_per_block
    )
    return ExampleAccessCounts(rowwise=rowwise, aspt=aspt, aspt_reordered=aspt_rr)
