"""Traffic -> time cost model (roofline with fixed overheads).

The modelled kernels are overwhelmingly memory-bound (arithmetic intensity
of SpMM is ~0.25 FLOP/byte at best), so estimated time is

``time = max(bytes / (BW * bw_eff), flops / (peak * flop_eff))
         + launches * launch_overhead + overhead_cycles / clock``

All calibration constants live in :class:`CostModelConfig` with their
rationale.  They were chosen once so that the ASpT-NR vs cuSPARSE gap on
the synthetic corpus lands near the published ~1.35x average, and then
frozen: every row-reordering result in the experiments is emergent from
traffic, not fitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

__all__ = ["CostModelConfig", "KernelCost"]


@dataclass(frozen=True)
class CostModelConfig:
    """Calibration constants of the performance model.

    Attributes
    ----------
    warps_per_block:
        Rows (= warps) per thread block in the row-wise and ASpT-remainder
        kernels.  The ASpT paper groups several warps of consecutive rows
        per block; 4 is a typical occupancy-friendly choice.
    cusparse_rows_per_block:
        cuSPARSE's generic csrmm gains no intra-block column dedup from
        row adjacency, modelled as one row per block.
    cusparse_bw_eff / rowwise_bw_eff / aspt_bw_eff / bidmach_bw_eff:
        Fraction of peak DRAM bandwidth each kernel family achieves.
        cuSPARSE's generic kernel pays for format generality (0.66); the
        specialised row-wise kernel streams a bit better (0.70); the ASpT
        kernels are the most regular (0.72); BIDMach's SDDMM is reported
        well behind ASpT (0.35).
    l2_utilization:
        Fraction of L2 effectively available for caching dense-operand
        rows; the remainder is occupied by the sparse matrix's own streams
        and by unrelated concurrent thread blocks.
    cache_slack:
        Slack factor of the vectorised reuse-distance approximation
        (see :func:`repro.gpu.cache.approx_lru_hits`).  4x compensates the
        time-distance overestimate on kernel streams, which revisit hot
        rows many times between distinct-row excursions.
    launch_overhead_s:
        Fixed cost per kernel launch.
    panel_overhead_cycles:
        Per dense-tile panel: shared-memory preload + barrier cost.
    dense_nnz_overhead_cycles:
        Per dense-tile non-zero: the extra shared-memory indirection.
    flop_efficiency:
        Fraction of peak FLOP/s sustained by these irregular kernels.
    index_bytes / value_bytes:
        On-device storage of colidx (int32) and values (fp32).
    """

    warps_per_block: int = 4
    cusparse_rows_per_block: int = 1
    cusparse_bw_eff: float = 0.66
    rowwise_bw_eff: float = 0.70
    aspt_bw_eff: float = 0.72
    bidmach_bw_eff: float = 0.35
    l2_utilization: float = 0.5
    cache_slack: float = 4.0
    launch_overhead_s: float = 5e-6
    panel_overhead_cycles: float = 400.0
    dense_nnz_overhead_cycles: float = 0.5
    flop_efficiency: float = 0.5
    index_bytes: int = 4
    value_bytes: int = 4

    def __post_init__(self):
        if self.warps_per_block <= 0 or self.cusparse_rows_per_block <= 0:
            raise ConfigError("thread-block row counts must be > 0")
        for name in (
            "cusparse_bw_eff",
            "rowwise_bw_eff",
            "aspt_bw_eff",
            "bidmach_bw_eff",
            "l2_utilization",
            "flop_efficiency",
        ):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1], got {v}")
        if self.cache_slack <= 0:
            raise ConfigError("cache_slack must be > 0")
        for name in (
            "launch_overhead_s",
            "panel_overhead_cycles",
            "dense_nnz_overhead_cycles",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.index_bytes <= 0 or self.value_bytes <= 0:
            raise ConfigError("index_bytes and value_bytes must be > 0")

    def bw_eff(self, variant: str) -> float:
        """Bandwidth efficiency for a kernel variant."""
        try:
            return {
                "cusparse": self.cusparse_bw_eff,
                "rowwise": self.rowwise_bw_eff,
                "aspt": self.aspt_bw_eff,
                "bidmach": self.bidmach_bw_eff,
            }[variant]
        except KeyError:
            raise ConfigError(f"unknown kernel variant {variant!r}") from None

    def with_overrides(self, **kwargs) -> "CostModelConfig":
        """A copy with some constants replaced (ablation studies)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class KernelCost:
    """Estimated cost of one kernel invocation.

    Attributes
    ----------
    op:
        ``"spmm"`` or ``"sddmm"``.
    variant:
        Kernel family (``"cusparse"``, ``"rowwise"``, ``"aspt"``,
        ``"bidmach"``).
    k:
        Dense-operand column count.
    bytes_breakdown:
        DRAM bytes by component (``x_dense``, ``x_sparse``, ``y``, ``s``,
        ``out`` ...).
    flops:
        Useful floating-point operations.
    overhead_s:
        Fixed overheads (launches + tile bookkeeping) in seconds.
    time_s:
        Total estimated kernel time.
    x_hit_rate:
        Modelled L2 hit rate on dense-operand row accesses (diagnostics).
    """

    op: str
    variant: str
    k: int
    bytes_breakdown: dict = field(repr=False)
    flops: float
    overhead_s: float
    time_s: float
    x_hit_rate: float = 0.0

    @property
    def total_bytes(self) -> float:
        """Total modelled DRAM traffic."""
        return float(sum(self.bytes_breakdown.values()))

    @property
    def gflops(self) -> float:
        """Modelled throughput in GFLOP/s (the paper's Fig. 10/11 metric)."""
        return self.flops / self.time_s / 1e9 if self.time_s > 0 else 0.0

    def speedup_over(self, other: "KernelCost") -> float:
        """``other.time / self.time`` — how much faster ``self`` is."""
        return other.time_s / self.time_s

    def as_dict(self) -> dict:
        """Plain-dict form for JSON serialisation."""
        return {
            "op": self.op,
            "variant": self.variant,
            "k": self.k,
            "bytes_breakdown": dict(self.bytes_breakdown),
            "total_bytes": self.total_bytes,
            "flops": self.flops,
            "overhead_s": self.overhead_s,
            "time_s": self.time_s,
            "gflops": self.gflops,
            "x_hit_rate": self.x_hit_rate,
        }
