"""Device specifications.

:class:`DeviceSpec` collects the machine parameters the cost model reads.
The :data:`P100` preset matches the paper's §5.1 platform description
(56 Pascal SMs, 16 GB HBM2 at 732 GB/s, 4 MB L2, 64 KB shared memory per
SM); peak FP32 throughput is the standard 2 FLOP/cycle/core figure for
GP100 at boost clock.  :data:`V100` is provided for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["DeviceSpec", "P100", "V100"]


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of the modelled GPU.

    Attributes
    ----------
    name:
        Human-readable identifier.
    n_sms:
        Number of streaming multiprocessors.
    warp_size:
        Threads per warp (32 on every Nvidia architecture so far).
    shared_mem_per_sm:
        Bytes of shared memory per SM (bounds dense-tile width).
    l2_bytes:
        Unified L2 cache size in bytes.
    l2_line_bytes:
        Granularity of DRAM transactions / L2 lines.
    dram_bandwidth:
        Peak DRAM bandwidth, bytes/second.
    peak_flops:
        Peak FP32 throughput, FLOP/second.
    clock_hz:
        Boost clock (used to convert fixed instruction overheads to time).
    l2_bandwidth:
        Aggregate L2 read bandwidth, bytes/second.  L2 *hits* are not free:
        a row-wise kernel that re-reads a cached dense row still pays this
        (roughly 3x DRAM on Pascal), whereas the ASpT dense tiles read from
        per-SM shared memory, which is effectively free at these
        intensities — this asymmetry is the mechanism behind ASpT's win on
        well-clustered matrices.
    """

    name: str
    n_sms: int
    warp_size: int
    shared_mem_per_sm: int
    l2_bytes: int
    l2_line_bytes: int
    dram_bandwidth: float
    peak_flops: float
    clock_hz: float
    l2_bandwidth: float = 2.0e12
    max_threads_per_sm: int = 2048  #: concurrent-thread limit per SM
    max_blocks_per_sm: int = 32  #: concurrent-thread-block limit per SM
    registers_per_sm: int = 65536  #: 32-bit register file per SM

    def __post_init__(self):
        for field_name in (
            "n_sms",
            "warp_size",
            "shared_mem_per_sm",
            "l2_bytes",
            "l2_line_bytes",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be > 0")
        for field_name in ("dram_bandwidth", "peak_flops", "clock_hz", "l2_bandwidth"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be > 0")
        for field_name in ("max_threads_per_sm", "max_blocks_per_sm", "registers_per_sm"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be > 0")

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A copy with some fields replaced (sensitivity studies)."""
        return replace(self, **kwargs)

    def l2_capacity_rows(self, row_bytes: int, utilization: float = 1.0) -> int:
        """How many dense-operand rows of ``row_bytes`` fit in L2.

        ``utilization`` < 1 models the share of L2 effectively available to
        the dense operand (the sparse matrix's own streams and concurrent
        thread blocks occupy the rest).
        """
        if row_bytes <= 0:
            raise ConfigError(f"row_bytes must be > 0, got {row_bytes}")
        return max(1, int(self.l2_bytes * utilization) // row_bytes)

    def max_dense_cols(self, k_chunk: int, dtype_bytes: int = 4) -> int:
        """Dense-tile width limit imposed by shared memory.

        A dense tile stages one row of the dense operand per dense column;
        with the kernel processing ``k_chunk`` dense-matrix columns per
        pass, each staged row occupies ``k_chunk * dtype_bytes`` bytes.
        """
        per_row = k_chunk * dtype_bytes
        if per_row <= 0:
            raise ConfigError("k_chunk and dtype_bytes must be > 0")
        return max(1, self.shared_mem_per_sm // per_row)


#: The paper's evaluation platform (§5.1).
P100 = DeviceSpec(
    name="P100",
    n_sms=56,
    warp_size=32,
    shared_mem_per_sm=64 * 1024,
    l2_bytes=4 * 1024 * 1024,
    l2_line_bytes=128,
    dram_bandwidth=732e9,
    peak_flops=10.6e12,  # 3584 cores * 2 FLOP * 1.48 GHz
    clock_hz=1.48e9,
    l2_bandwidth=2.0e12,
)

#: Successor part, for sensitivity studies only.
V100 = DeviceSpec(
    name="V100",
    n_sms=80,
    warp_size=32,
    shared_mem_per_sm=96 * 1024,
    l2_bytes=6 * 1024 * 1024,
    l2_line_bytes=128,
    dram_bandwidth=900e9,
    peak_flops=15.7e12,
    clock_hz=1.53e9,
    l2_bandwidth=2.5e12,
)
