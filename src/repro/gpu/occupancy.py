"""Thread-block occupancy calculator.

The cost model assumes enough concurrent thread blocks to saturate DRAM
bandwidth and to parallelise per-panel overheads across SMs.  This module
makes that assumption checkable: given a kernel's launch geometry
(threads per block, registers per thread, shared memory per block) it
computes how many blocks each SM can host and the resulting warp
occupancy — the standard CUDA occupancy calculation.

Used by ``tests/unit/test_occupancy.py`` to show the modelled kernels'
geometries (row-wise: 128-thread blocks, no shared memory; ASpT dense
phase: 128-thread blocks + a K-chunk tile in shared memory) sustain high
occupancy on the P100, which is what licenses the cost model's
"overheads divide by n_sms" and "bandwidth saturated" simplifications.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.gpu.device import DeviceSpec
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["OccupancyResult", "occupancy"]


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation.

    Attributes
    ----------
    blocks_per_sm:
        Concurrent thread blocks one SM can host.
    active_warps:
        Warps resident per SM (``blocks_per_sm * warps_per_block``).
    occupancy:
        ``active_warps / max_warps_per_sm`` in [0, 1].
    limiter:
        Which resource bound ``blocks_per_sm``: ``"blocks"``,
        ``"threads"``, ``"registers"`` or ``"shared_memory"``.
    """

    blocks_per_sm: int
    active_warps: int
    occupancy: float
    limiter: str


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    *,
    registers_per_thread: int = 32,
    shared_bytes_per_block: int = 0,
) -> OccupancyResult:
    """Compute warp occupancy for a launch geometry on ``device``.

    Parameters
    ----------
    device:
        Machine limits (threads/blocks/registers/shared memory per SM).
    threads_per_block:
        Launch block size; must be a multiple of the warp size (CUDA
        rounds up internally; requiring the multiple keeps the arithmetic
        honest).
    registers_per_thread:
        Compiler-reported register usage (32 is typical for these
        memory-bound kernels).
    shared_bytes_per_block:
        Static + dynamic shared memory per block (the ASpT dense phase
        stages ``tile_cols * k_chunk * 4`` bytes).
    """
    threads_per_block = check_positive("threads_per_block", threads_per_block)
    registers_per_thread = check_positive("registers_per_thread", registers_per_thread)
    shared_bytes_per_block = check_nonnegative(
        "shared_bytes_per_block", shared_bytes_per_block
    )
    if threads_per_block % device.warp_size:
        raise ValidationError(
            f"threads_per_block={threads_per_block} must be a multiple of the "
            f"warp size ({device.warp_size})"
        )
    if threads_per_block > device.max_threads_per_sm:
        raise ValidationError(
            f"threads_per_block={threads_per_block} exceeds the per-SM thread "
            f"limit ({device.max_threads_per_sm})"
        )

    limits = {
        "blocks": device.max_blocks_per_sm,
        "threads": device.max_threads_per_sm // threads_per_block,
        "registers": device.registers_per_sm
        // (registers_per_thread * threads_per_block),
        "shared_memory": (
            device.shared_mem_per_sm // shared_bytes_per_block
            if shared_bytes_per_block
            else device.max_blocks_per_sm
        ),
    }
    limiter, blocks = min(limits.items(), key=lambda kv: kv[1])
    blocks = int(blocks)
    warps_per_block = threads_per_block // device.warp_size
    max_warps = device.max_threads_per_sm // device.warp_size
    active = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        active_warps=active,
        occupancy=active / max_warps if max_warps else 0.0,
        limiter=limiter,
    )
