"""The user-facing performance estimator.

:class:`GPUExecutor` binds a :class:`~repro.gpu.device.DeviceSpec` and a
:class:`~repro.gpu.costmodel.CostModelConfig` and estimates SpMM / SDDMM
kernel time for the three kernel families of the paper's evaluation:

* ``"cusparse"`` — generic row-wise CSR kernel, no intra-block reuse;
* ``"rowwise"``  — the specialised row-wise kernel (thread blocks of
  consecutive rows share fetched dense rows);
* ``"aspt"``     — the two-phase adaptive-sparse-tiling kernel, taking a
  :class:`~repro.aspt.TiledMatrix` (this covers both ASpT-NR and ASpT-RR —
  the difference is purely which matrix was tiled);
* ``"bidmach"``  — SDDMM only, a low-efficiency untiled baseline.

Traffic composition per kernel (all values transaction-padded):

====================  =====================================================
component             bytes
====================  =====================================================
``s``                 sparse matrix streams: ``nnz * (idx + val)`` plus the
                      row-pointer array
``x_dense``           ASpT only: one dense-operand row load per dense
                      column instance (staged via shared memory)
``x_sparse``          dense-operand row loads that miss the modelled L2 on
                      the row-wise / remainder stream
``y``                 output write (SpMM) or dense row-operand read (SDDMM)
``out``               SDDMM output values
====================  =====================================================
"""

from __future__ import annotations

import numpy as np

from repro.aspt.tiles import TiledMatrix
from repro.errors import ConfigError
from repro.gpu.cache import CacheStats, approx_lru_hits, lru_hits
from repro.gpu.coalescing import row_load_bytes
from repro.gpu.costmodel import CostModelConfig, KernelCost
from repro.gpu.device import P100, DeviceSpec
from repro.gpu.trace import block_access_stream
from repro.observability.metrics import METRICS
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_positive

__all__ = ["GPUExecutor"]

_SPMM_VARIANTS = ("cusparse", "rowwise", "aspt")
_SDDMM_VARIANTS = ("rowwise", "aspt", "bidmach")


class GPUExecutor:
    """Estimate kernel costs on a modelled GPU.

    Parameters
    ----------
    device:
        Machine parameters (default: the paper's P100).
    config:
        Cost-model calibration constants.
    cache_mode:
        ``"approx"`` (vectorised reuse-distance model; corpus-scale) or
        ``"exact"`` (fully-associative LRU; small matrices, validation).
    """

    def __init__(
        self,
        device: DeviceSpec = P100,
        config: CostModelConfig | None = None,
        cache_mode: str = "approx",
    ):
        if cache_mode not in ("approx", "exact"):
            raise ConfigError(f"cache_mode must be 'approx' or 'exact', got {cache_mode!r}")
        self.device = device
        self.config = config if config is not None else CostModelConfig()
        self.cache_mode = cache_mode

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def _row_bytes(self, k: int) -> int:
        """Padded DRAM bytes of one dense-operand row load."""
        return row_load_bytes(k, self.config.value_bytes, self.device.l2_line_bytes)

    def _x_stream_traffic(
        self, csr: CSRMatrix, k: int, rows_per_block: int
    ) -> tuple[float, float, CacheStats]:
        """Dense-operand traffic of a row-wise access stream.

        Returns ``(dram_bytes, l2_bytes, stats)``: misses of the modelled
        L2 pay DRAM bandwidth; every other per-non-zero row read still
        pays L2 bandwidth (an L2 hit is not free — see
        :class:`repro.gpu.device.DeviceSpec.l2_bandwidth`).
        """
        stream = block_access_stream(csr, rows_per_block)
        if stream.size == 0:
            return 0.0, 0.0, CacheStats(0, 0)
        capacity = self.device.l2_capacity_rows(
            k * self.config.value_bytes, self.config.l2_utilization
        )
        if self.cache_mode == "exact":
            stats = lru_hits(stream, capacity)
        else:
            stats = approx_lru_hits(stream, capacity, slack=self.config.cache_slack)
        row_bytes = self._row_bytes(k)
        dram = float(stats.misses) * row_bytes
        # All nnz accesses (pre-dedup) read K floats; the non-DRAM ones are
        # served by L1/L2 and consume L2 bandwidth.
        l2 = float(csr.nnz - stats.misses) * row_bytes
        METRICS.counter("gpu.l2_hits", "modelled L2 hits").inc(int(stats.hits))
        return dram, l2, stats

    def _dense_preload_traffic(
        self, tiled: TiledMatrix, k: int
    ) -> tuple[float, float]:
        """DRAM and L2 traffic of the dense-tile shared-memory preloads.

        Each panel loads each of its dense columns' X rows once; those
        loads themselves travel through L2, so a column that is dense in
        several nearby panels (band boundaries, power-law hubs) is fetched
        from DRAM only once and from L2 thereafter.
        """
        sizes = [c.size for c in tiled.panel_dense_cols]
        if not any(sizes):
            return 0.0, 0.0
        stream = np.concatenate([c for c in tiled.panel_dense_cols if c.size])
        capacity = self.device.l2_capacity_rows(
            k * self.config.value_bytes, self.config.l2_utilization
        )
        if self.cache_mode == "exact":
            stats = lru_hits(stream, capacity)
        else:
            stats = approx_lru_hits(stream, capacity, slack=self.config.cache_slack)
        row_bytes = self._row_bytes(k)
        METRICS.counter("gpu.l2_hits", "modelled L2 hits").inc(int(stats.hits))
        # Every preloaded row is staged through shared memory regardless of
        # which cache level served it.
        METRICS.counter("gpu.shm_bytes", "bytes staged through shared memory").inc(
            int((stats.misses + stats.hits) * row_bytes)
        )
        return float(stats.misses) * row_bytes, float(stats.hits) * row_bytes

    def _s_stream_bytes(self, csr: CSRMatrix) -> float:
        """Traffic of the sparse matrix's own arrays (one full pass)."""
        cfg = self.config
        return float(
            csr.nnz * (cfg.index_bytes + cfg.value_bytes)
            + (csr.n_rows + 1) * cfg.index_bytes
        )

    def _finalise(
        self,
        *,
        op: str,
        variant: str,
        k: int,
        bytes_breakdown: dict,
        flops: float,
        launches: int,
        extra_cycles: float,
        hit_rate: float,
        l2_bytes: float = 0.0,
    ) -> KernelCost:
        cfg = self.config
        total_bytes = float(sum(bytes_breakdown.values()))
        METRICS.counter("gpu.global_txns", "modelled DRAM transactions").inc(
            int(total_bytes // self.device.l2_line_bytes)
        )
        bw = self.device.dram_bandwidth * cfg.bw_eff(variant)
        time_mem = total_bytes / bw
        time_l2 = l2_bytes / self.device.l2_bandwidth
        time_cmp = flops / (self.device.peak_flops * cfg.flop_efficiency)
        # Launch latency is serial; per-panel/per-nnz bookkeeping executes
        # concurrently across the SMs, so its cycle total is divided by
        # the SM count.
        overhead = (
            launches * cfg.launch_overhead_s
            + extra_cycles / self.device.clock_hz / self.device.n_sms
        )
        return KernelCost(
            op=op,
            variant=variant,
            k=k,
            bytes_breakdown=bytes_breakdown,
            flops=flops,
            overhead_s=overhead,
            time_s=max(time_mem, time_l2, time_cmp) + overhead,
            x_hit_rate=hit_rate,
        )

    # ------------------------------------------------------------------
    # SpMM
    # ------------------------------------------------------------------
    def spmm_cost(self, matrix, k: int, variant: str) -> KernelCost:
        """Estimated cost of ``Y = S @ X`` with ``X`` of width ``k``.

        ``matrix`` is a :class:`CSRMatrix` for ``"cusparse"``/``"rowwise"``
        and a :class:`TiledMatrix` for ``"aspt"``.
        """
        k = check_positive("k", k)
        if variant not in _SPMM_VARIANTS:
            raise ConfigError(
                f"unknown SpMM variant {variant!r}; expected one of {_SPMM_VARIANTS}"
            )
        cfg = self.config
        if variant == "aspt":
            if not isinstance(matrix, TiledMatrix):
                raise ConfigError("variant 'aspt' requires a TiledMatrix")
            return self._spmm_aspt(matrix, k)
        if not isinstance(matrix, CSRMatrix):
            raise ConfigError(f"variant {variant!r} requires a CSRMatrix")
        rows_per_block = (
            cfg.cusparse_rows_per_block if variant == "cusparse" else cfg.warps_per_block
        )
        x_bytes, l2_bytes, stats = self._x_stream_traffic(matrix, k, rows_per_block)
        breakdown = {
            "s": self._s_stream_bytes(matrix),
            "x_sparse": x_bytes,
            "y": float(matrix.n_rows * self._row_bytes(k)),
        }
        return self._finalise(
            op="spmm",
            variant=variant,
            k=k,
            bytes_breakdown=breakdown,
            flops=2.0 * matrix.nnz * k,
            launches=1,
            extra_cycles=0.0,
            hit_rate=stats.hit_rate,
            l2_bytes=l2_bytes,
        )

    def _spmm_aspt(self, tiled: TiledMatrix, k: int) -> KernelCost:
        cfg = self.config
        x_dense, l2_dense = self._dense_preload_traffic(tiled, k)
        x_sparse, l2_bytes, stats = self._x_stream_traffic(
            tiled.sparse_part, k, cfg.warps_per_block
        )
        l2_bytes += l2_dense
        breakdown = {
            "s": self._s_stream_bytes(tiled.original),
            "x_dense": x_dense,
            "x_sparse": x_sparse,
            "y": float(tiled.original.n_rows * self._row_bytes(k)),
        }
        panels_with_tiles = sum(
            1 for cols in tiled.panel_dense_cols if cols.size > 0
        )
        extra_cycles = (
            panels_with_tiles * cfg.panel_overhead_cycles
            + tiled.nnz_dense * cfg.dense_nnz_overhead_cycles
        )
        return self._finalise(
            op="spmm",
            variant="aspt",
            k=k,
            bytes_breakdown=breakdown,
            flops=2.0 * tiled.original.nnz * k,
            launches=2,  # dense-tile kernel + remainder kernel
            extra_cycles=extra_cycles,
            hit_rate=stats.hit_rate,
            l2_bytes=l2_bytes,
        )

    # ------------------------------------------------------------------
    # SDDMM
    # ------------------------------------------------------------------
    def sddmm_cost(self, matrix, k: int, variant: str) -> KernelCost:
        """Estimated cost of ``O = (Y @ X^T) .* S`` with width-``k`` operands.

        ``matrix`` is a :class:`CSRMatrix` for ``"rowwise"``/``"bidmach"``
        and a :class:`TiledMatrix` for ``"aspt"``.
        """
        k = check_positive("k", k)
        if variant not in _SDDMM_VARIANTS:
            raise ConfigError(
                f"unknown SDDMM variant {variant!r}; expected one of {_SDDMM_VARIANTS}"
            )
        cfg = self.config
        if variant == "aspt":
            if not isinstance(matrix, TiledMatrix):
                raise ConfigError("variant 'aspt' requires a TiledMatrix")
            return self._sddmm_aspt(matrix, k)
        if not isinstance(matrix, CSRMatrix):
            raise ConfigError(f"variant {variant!r} requires a CSRMatrix")
        rows_per_block = (
            1 if variant == "bidmach" else cfg.warps_per_block
        )
        x_bytes, l2_bytes, stats = self._x_stream_traffic(matrix, k, rows_per_block)
        breakdown = {
            "s": self._s_stream_bytes(matrix),
            "x_sparse": x_bytes,
            "y": float(matrix.n_rows * self._row_bytes(k)),
            "out": float(matrix.nnz * cfg.value_bytes),
        }
        return self._finalise(
            op="sddmm",
            variant=variant,
            k=k,
            bytes_breakdown=breakdown,
            flops=2.0 * matrix.nnz * k + matrix.nnz,
            launches=1,
            extra_cycles=0.0,
            hit_rate=stats.hit_rate,
            l2_bytes=l2_bytes,
        )

    # ------------------------------------------------------------------
    # SpMV (supporting kernel for the vertex- vs row-reordering argument)
    # ------------------------------------------------------------------
    def spmv_cost(self, matrix: CSRMatrix, variant: str = "rowwise") -> KernelCost:
        """Estimated cost of ``y = S @ x`` (dense *vector* operand).

        Unlike SpMM, the dense operand is read at cache-line granularity
        (32 fp32 elements per 128 B line), so *spatial* locality among
        nearby column indices matters — which is exactly why classic
        vertex reorderings (RCM, graph partitioning) help SpMV while doing
        nothing for SpMM.  Modelled for the row-wise kernel only.
        """
        if variant not in ("rowwise", "cusparse"):
            raise ConfigError(
                f"unknown SpMV variant {variant!r}; expected 'rowwise' or 'cusparse'"
            )
        if not isinstance(matrix, CSRMatrix):
            raise ConfigError("spmv_cost requires a CSRMatrix")
        cfg = self.config
        line = self.device.l2_line_bytes
        elems_per_line = max(1, line // cfg.value_bytes)
        rows_per_block = (
            cfg.cusparse_rows_per_block if variant == "cusparse" else cfg.warps_per_block
        )
        if matrix.nnz:
            # Access stream of x cache lines, deduplicated per thread block.
            block_ids = matrix.row_ids() // rows_per_block
            line_ids = matrix.colidx // elems_per_line
            keys = np.unique(block_ids * np.int64(matrix.n_cols) + line_ids)
            stream = keys % np.int64(matrix.n_cols)
            capacity = max(1, int(self.device.l2_bytes * cfg.l2_utilization) // line)
            if self.cache_mode == "exact":
                stats = lru_hits(stream, capacity)
            else:
                stats = approx_lru_hits(stream, capacity, slack=cfg.cache_slack)
            x_bytes = float(stats.misses) * line
            l2_bytes = float(max(stream.size, matrix.nnz // 4) - stats.misses) * line
            hit_rate = stats.hit_rate
        else:
            x_bytes, l2_bytes, hit_rate = 0.0, 0.0, 0.0
        breakdown = {
            "s": self._s_stream_bytes(matrix),
            "x_sparse": x_bytes,
            "y": float(matrix.n_rows * cfg.value_bytes),
        }
        return self._finalise(
            op="spmv",
            variant=variant,
            k=1,
            bytes_breakdown=breakdown,
            flops=2.0 * matrix.nnz,
            launches=1,
            extra_cycles=0.0,
            hit_rate=hit_rate,
            l2_bytes=l2_bytes,
        )

    def _sddmm_aspt(self, tiled: TiledMatrix, k: int) -> KernelCost:
        cfg = self.config
        x_dense, l2_dense = self._dense_preload_traffic(tiled, k)
        x_sparse, l2_bytes, stats = self._x_stream_traffic(
            tiled.sparse_part, k, cfg.warps_per_block
        )
        l2_bytes += l2_dense
        breakdown = {
            "s": self._s_stream_bytes(tiled.original),
            "x_dense": x_dense,
            "x_sparse": x_sparse,
            # Y rows are read by both phases; the dense phase touches only
            # panels with tiles, bounded above by one full pass per phase.
            "y": float(tiled.original.n_rows * self._row_bytes(k)),
            "out": float(tiled.original.nnz * cfg.value_bytes),
        }
        panels_with_tiles = sum(
            1 for cols in tiled.panel_dense_cols if cols.size > 0
        )
        extra_cycles = (
            panels_with_tiles * cfg.panel_overhead_cycles
            + tiled.nnz_dense * cfg.dense_nnz_overhead_cycles
        )
        return self._finalise(
            op="sddmm",
            variant="aspt",
            k=k,
            bytes_breakdown=breakdown,
            flops=2.0 * tiled.original.nnz * k + tiled.original.nnz,
            launches=2,
            extra_cycles=extra_cycles,
            hit_rate=stats.hit_rate,
            l2_bytes=l2_bytes,
        )
