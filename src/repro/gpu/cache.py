"""Cache simulators.

The cost model treats the L2 as a cache of *dense-operand rows* (each row of
``X`` is ``K * 4`` bytes and is always touched in its entirety by a warp, so
the natural cache block is one row).  Three simulators are provided:

* :func:`lru_hits` — exact fully-associative LRU.  A classical result makes
  this cheap to evaluate offline: an access hits in an LRU cache of
  capacity ``C`` iff its *reuse (stack) distance* — the number of distinct
  blocks touched since the previous access to the same block — is at most
  ``C``.  Stack distances are computed in ``O(n log n)`` with a Fenwick
  tree over last-occurrence positions.
* :func:`set_associative_hits` — exact set-associative LRU (configurable
  sets/ways), loop-based; used to sanity-check the fully-associative
  idealisation.
* :func:`approx_lru_hits` — vectorised approximation using *time* distance
  (number of accesses, rather than distinct blocks, since the last touch).
  Since stack distance <= time distance, ``time_distance <= C`` implies a
  true LRU hit: with ``slack = 1.0`` the approximation is a guaranteed
  **lower bound** on hits.  ``slack > 1`` trades that guarantee for
  accuracy on streams with heavy short-range repetition.  This is the
  simulator used for corpus-scale sweeps (pure NumPy, no Python loop).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

__all__ = ["CacheStats", "lru_hits", "approx_lru_hits", "set_associative_hits"]


@dataclass(frozen=True)
class CacheStats:
    """Outcome of a cache simulation."""

    accesses: int
    hits: int

    @property
    def misses(self) -> int:
        """Accesses that were not hits."""
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """``hits / accesses`` (0 for an empty stream)."""
        return self.hits / self.accesses if self.accesses else 0.0


class _FenwickTree:
    """Binary indexed tree over positions, supporting point update and
    prefix sum — the textbook structure for offline stack distances."""

    __slots__ = ("_tree",)

    def __init__(self, n: int):
        self._tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        tree = self._tree
        i += 1
        n = tree.size
        while i < n:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of elements at positions ``0 .. i`` inclusive."""
        tree = self._tree
        total = 0
        i += 1
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)


def _compact_ids(stream: np.ndarray) -> np.ndarray:
    """Relabel arbitrary block ids to 0..u-1 (keeps equality structure)."""
    _, inverse = np.unique(stream, return_inverse=True)
    return inverse.astype(np.int64)


def _previous_occurrence(stream: np.ndarray) -> np.ndarray:
    """For each position, the index of the previous access to the same
    block, or -1.  Fully vectorised via a stable sort by (block, position).
    """
    n = stream.size
    order = np.argsort(stream, kind="stable")
    sorted_ids = stream[order]
    prev = np.full(n, -1, dtype=np.int64)
    same = sorted_ids[1:] == sorted_ids[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def lru_hits(stream: np.ndarray, capacity: int) -> CacheStats:
    """Exact fully-associative LRU via offline stack distances.

    Parameters
    ----------
    stream:
        1-D integer array of block ids in access order.
    capacity:
        Cache capacity in blocks.

    Notes
    -----
    ``O(n log n)``; the per-access Fenwick operations are a Python loop, so
    prefer :func:`approx_lru_hits` for corpus-scale streams.
    """
    capacity = check_positive("capacity", capacity)
    stream = np.asarray(stream, dtype=np.int64).ravel()
    n = stream.size
    if n == 0:
        return CacheStats(0, 0)
    ids = _compact_ids(stream)
    prev = _previous_occurrence(ids)

    # marker[p] == 1 iff position p is the *most recent* access (so far) to
    # its block.  The stack distance of access t with previous occurrence
    # p is then (# markers in (p, t)) + 1... minus the block itself; the
    # count of markers strictly between p and t equals the number of
    # distinct other blocks touched since p.
    tree = _FenwickTree(n)
    hits = 0
    for t in range(n):
        p = prev[t]
        if p >= 0:
            distinct_between = tree.prefix_sum(t - 1) - tree.prefix_sum(int(p))
            # Stack distance counts the block itself as distance 1; the
            # access hits iff distance <= capacity.
            if distinct_between + 1 <= capacity:
                hits += 1
            tree.add(int(p), -1)  # p is no longer the latest access
        tree.add(t, 1)
    return CacheStats(n, hits)


def approx_lru_hits(stream: np.ndarray, capacity: int, *, slack: float = 1.0) -> CacheStats:
    """Vectorised LRU approximation via time distance (see module docstring).

    Parameters
    ----------
    stream:
        1-D integer array of block ids in access order.
    capacity:
        Cache capacity in blocks.
    slack:
        A hit is counted when ``time_distance <= capacity * slack``.
        ``slack = 1`` makes the result a lower bound on true LRU hits.
    """
    capacity = check_positive("capacity", capacity)
    if slack <= 0:
        raise ValueError(f"slack must be > 0, got {slack}")
    stream = np.asarray(stream, dtype=np.int64).ravel()
    n = stream.size
    if n == 0:
        return CacheStats(0, 0)
    prev = _previous_occurrence(_compact_ids(stream))
    positions = np.arange(n, dtype=np.int64)
    time_dist = positions - prev
    hits = int(np.count_nonzero((prev >= 0) & (time_dist <= capacity * slack)))
    return CacheStats(n, hits)


def set_associative_hits(stream: np.ndarray, n_sets: int, ways: int) -> CacheStats:
    """Exact set-associative LRU (block -> set by modulo).

    Loop-based; intended for validation on small/medium streams.
    """
    n_sets = check_positive("n_sets", n_sets)
    ways = check_positive("ways", ways)
    stream = np.asarray(stream, dtype=np.int64).ravel()
    sets: list[list[int]] = [[] for _ in range(n_sets)]
    hits = 0
    for block in stream.tolist():
        s = sets[block % n_sets]
        try:
            s.remove(block)
            hits += 1
        except ValueError:
            if len(s) >= ways:
                s.pop(0)  # evict least recently used (front)
        s.append(block)
    return CacheStats(stream.size, hits)
