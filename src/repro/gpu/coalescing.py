"""Warp-level memory-transaction accounting.

GPU DRAM traffic is quantised in cache-line-sized transactions (128 B on
Pascal).  The kernels modelled here access the dense operand one *row* at a
time with consecutive threads reading consecutive elements — perfectly
coalesced — so a row load of ``K`` elements costs
``ceil(K * dtype / line)`` transactions.  The sparse matrix's own arrays
(``rowptr``/``colidx``/``values``) are streamed sequentially, also
coalesced.
"""

from __future__ import annotations

from repro.util.validation import check_positive

__all__ = ["row_load_transactions", "row_load_bytes", "stream_bytes"]


def row_load_transactions(k: int, dtype_bytes: int = 4, line_bytes: int = 128) -> int:
    """Transactions for one coalesced dense-row load of ``k`` elements."""
    k = check_positive("k", k)
    dtype_bytes = check_positive("dtype_bytes", dtype_bytes)
    line_bytes = check_positive("line_bytes", line_bytes)
    return -(-(k * dtype_bytes) // line_bytes)


def row_load_bytes(k: int, dtype_bytes: int = 4, line_bytes: int = 128) -> int:
    """DRAM bytes actually moved for one dense-row load (transaction-padded).

    For ``K`` that is a multiple of the line size this equals
    ``k * dtype_bytes``; ragged rows pay the padding of the final line.
    """
    return row_load_transactions(k, dtype_bytes, line_bytes) * line_bytes


def stream_bytes(n_elements: int, dtype_bytes: int = 4) -> int:
    """Bytes for a sequential (perfectly coalesced) stream of elements."""
    if n_elements < 0:
        raise ValueError(f"n_elements must be >= 0, got {n_elements}")
    check_positive("dtype_bytes", dtype_bytes)
    return n_elements * dtype_bytes
