"""GPU memory-hierarchy performance model (the P100 substitute).

The paper measures hand-tuned CUDA kernels on an Nvidia P100.  This
reproduction has no GPU, so :mod:`repro.gpu` models the part of the machine
that actually explains the paper's results — **data movement**:

* :mod:`repro.gpu.device` — machine parameters (:class:`DeviceSpec`; the
  ``P100`` preset mirrors §5.1: 56 SMs, 732 GB/s, 4 MB L2, 64 KB shared
  memory per SM).
* :mod:`repro.gpu.cache` — an exact fully-associative LRU simulator, an
  exact set-associative simulator, and a vectorised reuse-distance
  approximation for corpus-scale sweeps.
* :mod:`repro.gpu.coalescing` — warp-level transaction counting.
* :mod:`repro.gpu.trace` — converts kernels + matrices into the access
  streams the cache model consumes (including the thread-block-level
  dedup that the paper's Fig. 3/4 access counting uses).
* :mod:`repro.gpu.costmodel` — traffic -> time roofline with documented,
  frozen calibration constants.
* :mod:`repro.gpu.executor` — the user-facing entry point: estimate SpMM /
  SDDMM cost for a kernel variant on a device.

Absolute numbers are model outputs; the experiments only rely on *relative*
ordering, which traffic dominates for these memory-bound kernels.
"""

from repro.gpu.device import P100, V100, DeviceSpec
from repro.gpu.cache import (
    CacheStats,
    approx_lru_hits,
    lru_hits,
    set_associative_hits,
)
from repro.gpu.coalescing import row_load_transactions, stream_bytes
from repro.gpu.trace import (
    block_access_stream,
    paper_example_access_counts,
)
from repro.gpu.costmodel import CostModelConfig, KernelCost
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.executor import GPUExecutor

__all__ = [
    "DeviceSpec",
    "P100",
    "V100",
    "CacheStats",
    "lru_hits",
    "approx_lru_hits",
    "set_associative_hits",
    "row_load_transactions",
    "stream_bytes",
    "block_access_stream",
    "paper_example_access_counts",
    "CostModelConfig",
    "KernelCost",
    "OccupancyResult",
    "occupancy",
    "GPUExecutor",
]
