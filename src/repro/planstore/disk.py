"""On-disk tier of the plan store.

One ``<key>.plan.npz`` file per cache entry under a root directory.  The
design goals, in order:

1. **Never return a wrong plan.**  Entries carry a format version and a
   CRC-32 content checksum and are fully validated on read; anything
   unreadable, inconsistent or checksum-mismatched is a miss.
2. **Never crash the caller.**  I/O errors, truncated files, zip damage
   and permission problems degrade to a miss plus one warning; writes
   retry transient OS errors with bounded backoff before giving up.
3. **Survive concurrent writers.**  Writes go to a unique temporary file
   in the same directory and land via :func:`os.replace`, which is atomic
   on POSIX and Windows — two processes racing on one key both leave a
   complete, valid file (last writer wins; both wrote identical bytes
   anyway, since the key fixes the content).

Corrupt entries are *quarantined* (renamed to ``*.corrupt``) rather than
deleted, so an operator can inspect what happened.  Quarantine self-heals
two ways: a subsequent ``put`` of the key rewrites the entry and drops
the stale quarantine file, and :meth:`DiskPlanStore.heal` (surfaced as
``repro doctor --heal``) re-validates each quarantined file against its
checksum and restores the ones that turn out to be intact — e.g. entries
quarantined by a transient read error rather than real damage.

This module hosts the ``planstore.read`` / ``planstore.write`` fault
injection sites (:mod:`repro.resilience.faults`): injected corruption
exercises exactly the quarantine/self-heal path described above.
"""

from __future__ import annotations

import os
import uuid
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.errors import CorruptStoreError
from repro.observability.metrics import METRICS
from repro.observability.tracing import span
from repro.planstore.decisions import PlanDecisions
from repro.planstore.fingerprint import PLAN_FORMAT_VERSION
from repro.reorder.pipeline import PlanStats
from repro.resilience.faults import fault_point
from repro.resilience.retry import retry_io
from repro.util.log import get_logger

__all__ = ["DiskPlanStore"]

_log = get_logger("planstore")

#: Global count of entries moved aside as ``*.corrupt`` (all stores).
_QUARANTINES = METRICS.counter(
    "planstore.quarantine", "corrupt plan files moved aside"
)

#: Exceptions that mean "this entry is unreadable", not "the program is
#: broken": zip-level damage, missing/ill-shaped arrays, checksum or
#: version mismatches, filesystem errors.
_READ_FAILURES = (
    OSError,
    zipfile.BadZipFile,
    KeyError,
    ValueError,
    EOFError,
    zlib.error,
    CorruptStoreError,
)


def _entry_checksum(
    row_order: np.ndarray,
    remainder_order: np.ndarray,
    stats: np.ndarray,
    preprocess_total: float,
    provenance,
    backend: str,
    artifact,
) -> int:
    """CRC-32 over the entry's semantic content (layout-independent)."""
    crc = zlib.crc32(np.ascontiguousarray(row_order, dtype=np.int64).tobytes())
    crc = zlib.crc32(
        np.ascontiguousarray(remainder_order, dtype=np.int64).tobytes(), crc
    )
    crc = zlib.crc32(np.ascontiguousarray(stats, dtype=np.float64).tobytes(), crc)
    crc = zlib.crc32(np.float64(preprocess_total).tobytes(), crc)
    for step in provenance:
        crc = zlib.crc32(str(step).encode("utf-8"), crc)
    crc = zlib.crc32(str(backend).encode("utf-8"), crc)
    for part in artifact:
        crc = zlib.crc32(str(part).encode("utf-8"), crc)
    return crc & 0xFFFFFFFF


class DiskPlanStore:
    """Directory-backed ``key -> PlanDecisions`` store (see module docs)."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        from repro.planstore.memory import CacheStats

        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Filesystem path of ``key``'s entry."""
        if not key or any(c in key for c in "/\\."):
            raise ValueError(f"invalid cache key {key!r}")
        return self.root / f"{key}.plan.npz"

    # ------------------------------------------------------------------
    def get(self, key: str) -> PlanDecisions | None:
        """Load ``key`` from disk; any failure degrades to a miss."""
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with span("planstore.get", key=key):
                fault_point("planstore.read")
                decisions = self._read(path)
        except _READ_FAILURES as exc:
            _log.warning(
                "plan cache %s: unreadable (%s: %s); quarantining",
                path.name,
                type(exc).__name__,
                exc,
            )
            self._quarantine(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return decisions

    def put(self, key: str, decisions: PlanDecisions) -> None:
        """Atomically persist ``key`` (write temp file, then rename).

        Transient OS errors are retried with bounded backoff; a write
        that still fails degrades to a warning (the store is a cache —
        correctness never depends on a put landing).  A successful put
        also drops any stale quarantine file for the key, completing the
        rebuild half of the self-healing story.
        """
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        try:
            with span("planstore.put", key=key):
                retry_io(
                    lambda: self._write(tmp, path, decisions),
                    label=f"plan cache put {path.name}",
                )
            self.stats.puts += 1
        except OSError as exc:
            _log.warning("plan cache: could not write %s (%s)", path.name, exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        quarantined = path.with_name(path.name + ".corrupt")
        if quarantined.exists():
            try:
                os.unlink(quarantined)
                _log.info(
                    "plan cache %s: rebuilt; dropped stale quarantine", path.name
                )
            except OSError:  # leave it for `repro doctor` — entry is valid anyway
                pass

    @staticmethod
    def _write(tmp: Path, path: Path, decisions: PlanDecisions) -> None:
        fault_point("planstore.write")
        stats_block = np.array(
            [
                decisions.stats.dense_ratio_before,
                decisions.stats.dense_ratio_after,
                decisions.stats.avg_sim_before,
                decisions.stats.avg_sim_after,
                float(decisions.stats.round1_applied),
                float(decisions.stats.round2_applied),
                float(decisions.stats.n_candidates_round1),
                float(decisions.stats.n_candidates_round2),
            ]
        )
        provenance = np.array(list(decisions.provenance), dtype=np.str_)
        artifact = np.array(list(decisions.artifact), dtype=np.str_)
        checksum = _entry_checksum(
            decisions.row_order,
            decisions.remainder_order,
            stats_block,
            decisions.preprocess_total,
            decisions.provenance,
            decisions.backend,
            decisions.artifact,
        )
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                format_version=np.int64(PLAN_FORMAT_VERSION),
                row_order=decisions.row_order,
                remainder_order=decisions.remainder_order,
                stats=stats_block,
                preprocess_total=np.float64(decisions.preprocess_total),
                provenance=provenance,
                backend=np.str_(decisions.backend),
                artifact=artifact,
                checksum=np.int64(checksum),
            )
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    @staticmethod
    def _read(path: Path) -> PlanDecisions:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["format_version"])
            if version != PLAN_FORMAT_VERSION:
                raise CorruptStoreError(
                    f"format version {version} != {PLAN_FORMAT_VERSION}"
                )
            row_order = np.ascontiguousarray(data["row_order"], dtype=np.int64)
            remainder_order = np.ascontiguousarray(
                data["remainder_order"], dtype=np.int64
            )
            raw = data["stats"]
            if raw.shape != (8,):
                raise ValueError(f"stats block has shape {raw.shape}, expected (8,)")
            preprocess_total = float(data["preprocess_total"])
            provenance = tuple(str(s) for s in data["provenance"].tolist())
            backend = str(data["backend"])
            artifact = tuple(str(s) for s in data["artifact"].tolist())
            declared = int(data["checksum"]) & 0xFFFFFFFF
        actual = _entry_checksum(
            row_order,
            remainder_order,
            raw,
            preprocess_total,
            provenance,
            backend,
            artifact,
        )
        if actual != declared:
            raise CorruptStoreError(
                f"checksum mismatch: stored {declared:#010x}, computed {actual:#010x}"
            )
        stats = PlanStats(
            dense_ratio_before=float(raw[0]),
            dense_ratio_after=float(raw[1]),
            avg_sim_before=float(raw[2]),
            avg_sim_after=float(raw[3]),
            round1_applied=bool(raw[4]),
            round2_applied=bool(raw[5]),
            n_candidates_round1=int(raw[6]),
            n_candidates_round2=int(raw[7]),
        )
        return PlanDecisions(
            row_order=row_order,
            remainder_order=remainder_order,
            stats=stats,
            preprocess_total=preprocess_total,
            provenance=provenance,
            backend=backend,
            artifact=artifact,
        )

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
            _QUARANTINES.inc()
        except OSError:  # already gone, or unwritable dir — miss either way
            pass

    # ------------------------------------------------------------------
    def quarantined(self) -> list:
        """Quarantined entry paths, sorted by name."""
        return sorted(self.root.glob("*.corrupt"))

    def heal(self) -> dict:
        """Re-validate quarantined entries; restore the intact ones.

        For each ``*.corrupt`` file: if it parses *and* its checksum
        verifies, it was quarantined spuriously (e.g. a transient read
        error or an injected fault) — restore it to its live name unless
        a fresh entry already replaced it (then the quarantine file is
        simply dropped).  Entries that fail validation stay quarantined
        for inspection.

        Returns
        -------
        dict
            ``{"restored": [names], "dropped": [names],
            "unrecoverable": [(name, reason)]}``.
        """
        restored: list = []
        dropped: list = []
        unrecoverable: list = []
        for quarantine_path in self.quarantined():
            live = quarantine_path.with_name(
                quarantine_path.name[: -len(".corrupt")]
            )
            try:
                self._read(quarantine_path)
            except _READ_FAILURES as exc:
                unrecoverable.append(
                    (quarantine_path.name, f"{type(exc).__name__}: {exc}")
                )
                continue
            try:
                if live.exists():
                    os.unlink(quarantine_path)
                    dropped.append(quarantine_path.name)
                else:
                    os.replace(quarantine_path, live)
                    restored.append(quarantine_path.name)
            except OSError as exc:
                unrecoverable.append(
                    (quarantine_path.name, f"{type(exc).__name__}: {exc}")
                )
        return {
            "restored": restored,
            "dropped": dropped,
            "unrecoverable": unrecoverable,
        }

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.plan.npz"))
