"""On-disk tier of the plan store.

One ``<key>.plan.npz`` file per cache entry under a root directory.  The
design goals, in order:

1. **Never return a wrong plan.**  Entries carry a format version and are
   fully validated on read; anything unreadable or inconsistent is a miss.
2. **Never crash the caller.**  I/O errors, truncated files, zip damage
   and permission problems degrade to a miss plus one warning.
3. **Survive concurrent writers.**  Writes go to a unique temporary file
   in the same directory and land via :func:`os.replace`, which is atomic
   on POSIX and Windows — two processes racing on one key both leave a
   complete, valid file (last writer wins; both wrote identical bytes
   anyway, since the key fixes the content).

Corrupt entries are *quarantined* (renamed to ``*.corrupt``) rather than
deleted, so an operator can inspect what happened; a subsequent put simply
rewrites the key.
"""

from __future__ import annotations

import os
import uuid
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.planstore.decisions import PlanDecisions
from repro.planstore.fingerprint import PLAN_FORMAT_VERSION
from repro.reorder.pipeline import PlanStats
from repro.util.log import get_logger

__all__ = ["DiskPlanStore"]

_log = get_logger("planstore")

#: Exceptions that mean "this entry is unreadable", not "the program is
#: broken": zip-level damage, missing/ill-shaped arrays, filesystem errors.
_READ_FAILURES = (
    OSError,
    zipfile.BadZipFile,
    KeyError,
    ValueError,
    EOFError,
    zlib.error,
)


class DiskPlanStore:
    """Directory-backed ``key -> PlanDecisions`` store (see module docs)."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        from repro.planstore.memory import CacheStats

        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """Filesystem path of ``key``'s entry."""
        if not key or any(c in key for c in "/\\."):
            raise ValueError(f"invalid cache key {key!r}")
        return self.root / f"{key}.plan.npz"

    # ------------------------------------------------------------------
    def get(self, key: str) -> PlanDecisions | None:
        """Load ``key`` from disk; any failure degrades to a miss."""
        path = self.path_for(key)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            decisions = self._read(path)
        except _VersionMismatch as exc:
            _log.warning("plan cache %s: %s; treating as miss", path.name, exc)
            self.stats.misses += 1
            return None
        except _READ_FAILURES as exc:
            _log.warning(
                "plan cache %s: unreadable (%s: %s); quarantining",
                path.name,
                type(exc).__name__,
                exc,
            )
            self._quarantine(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return decisions

    def put(self, key: str, decisions: PlanDecisions) -> None:
        """Atomically persist ``key`` (write temp file, then rename)."""
        path = self.path_for(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(
                    fh,
                    format_version=np.int64(PLAN_FORMAT_VERSION),
                    row_order=decisions.row_order,
                    remainder_order=decisions.remainder_order,
                    stats=np.array(
                        [
                            decisions.stats.dense_ratio_before,
                            decisions.stats.dense_ratio_after,
                            decisions.stats.avg_sim_before,
                            decisions.stats.avg_sim_after,
                            float(decisions.stats.round1_applied),
                            float(decisions.stats.round2_applied),
                            float(decisions.stats.n_candidates_round1),
                            float(decisions.stats.n_candidates_round2),
                        ]
                    ),
                    preprocess_total=np.float64(decisions.preprocess_total),
                )
            os.replace(tmp, path)
            self.stats.puts += 1
        except OSError as exc:
            _log.warning("plan cache: could not write %s (%s)", path.name, exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    @staticmethod
    def _read(path: Path) -> PlanDecisions:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["format_version"])
            if version != PLAN_FORMAT_VERSION:
                raise _VersionMismatch(
                    f"format version {version} != {PLAN_FORMAT_VERSION}"
                )
            row_order = np.ascontiguousarray(data["row_order"], dtype=np.int64)
            remainder_order = np.ascontiguousarray(
                data["remainder_order"], dtype=np.int64
            )
            raw = data["stats"]
            if raw.shape != (8,):
                raise ValueError(f"stats block has shape {raw.shape}, expected (8,)")
            preprocess_total = float(data["preprocess_total"])
        stats = PlanStats(
            dense_ratio_before=float(raw[0]),
            dense_ratio_after=float(raw[1]),
            avg_sim_before=float(raw[2]),
            avg_sim_after=float(raw[3]),
            round1_applied=bool(raw[4]),
            round2_applied=bool(raw[5]),
            n_candidates_round1=int(raw[6]),
            n_candidates_round2=int(raw[7]),
        )
        return PlanDecisions(
            row_order=row_order,
            remainder_order=remainder_order,
            stats=stats,
            preprocess_total=preprocess_total,
        )

    def _quarantine(self, path: Path) -> None:
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:  # already gone, or unwritable dir — miss either way
            pass

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.plan.npz"))


class _VersionMismatch(Exception):
    """Entry was written by an incompatible format version."""
