"""The two-tier plan store: in-process LRU over an optional disk tier.

``get`` checks memory first, then disk (promoting disk hits into memory);
``put`` writes through to both tiers.  All failure handling lives in the
tiers — from here up, a cache problem is always just a miss.

Typical use::

    store = PlanStore(cache_dir="~/.cache/repro-plans")
    plan = build_plan(matrix, config, cache=store)   # cold: builds + stores
    plan = build_plan(matrix, config, cache=store)   # warm: permute + tile only
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path

from repro.planstore.decisions import PlanDecisions
from repro.planstore.disk import DiskPlanStore
from repro.planstore.fingerprint import plan_key
from repro.planstore.memory import LRUPlanCache

__all__ = ["PlanStore"]


class PlanStore:
    """Content-addressed cache for execution-plan decisions.

    Parameters
    ----------
    max_entries, max_bytes:
        Bounds of the in-memory LRU tier.
    cache_dir:
        Optional directory for the persistent tier; ``None`` keeps the
        store purely in-process.
    max_sessions:
        Bound of the pinned :meth:`session` cache (sessions hold scratch
        buffers sized to their matrix, so the cap is deliberately small).
    """

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: int = 64 * 1024 * 1024,
        cache_dir=None,
        max_sessions: int = 8,
    ) -> None:
        self.memory = LRUPlanCache(max_entries=max_entries, max_bytes=max_bytes)
        self.disk = DiskPlanStore(Path(cache_dir)) if cache_dir is not None else None
        self.max_sessions = max_sessions
        self._sessions: OrderedDict = OrderedDict()
        self._session_lock = threading.Lock()

    # ------------------------------------------------------------------
    def get(self, key: str) -> PlanDecisions | None:
        """Two-tier lookup; disk hits are promoted into the memory tier."""
        decisions = self.memory.get(key)
        if decisions is not None:
            return decisions
        if self.disk is not None:
            decisions = self.disk.get(key)
            if decisions is not None:
                self.memory.put(key, decisions)
                return decisions
        return None

    def put(self, key: str, decisions: PlanDecisions) -> None:
        """Write-through insert into both tiers."""
        self.memory.put(key, decisions)
        if self.disk is not None:
            self.disk.put(key, decisions)

    # ------------------------------------------------------------------
    def session(self, csr, config=None, **session_kwargs):
        """A pinned :class:`~repro.kernels.KernelSession` for ``csr``.

        Builds the execution plan through this store (so repeated calls
        hit the decision cache) and memoises the resulting session per
        plan key: the serving path asks once per matrix and every later
        request reuses the already-pinned scratch and panel remaps.  The
        memo is LRU-bounded by ``max_sessions`` and keyed on the session
        keyword arguments too, so e.g. differing ``chunk_k`` values get
        distinct sessions.
        """
        from repro.reorder import ReorderConfig, build_plan

        config = config if config is not None else ReorderConfig()
        memo_key = (
            self.key_for(csr, config),
            tuple(sorted(session_kwargs.items())),
        )
        with self._session_lock:
            cached = self._sessions.get(memo_key)
            if cached is not None:
                self._sessions.move_to_end(memo_key)
                return cached
        plan = build_plan(csr, config, cache=self)
        made = plan.session(**session_kwargs)
        with self._session_lock:
            cached = self._sessions.get(memo_key)
            if cached is not None:  # lost a build race: keep the first
                self._sessions.move_to_end(memo_key)
                return cached
            self._sessions[memo_key] = made
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
        return made

    def key_for(self, csr, config) -> str:
        """The cache key ``build_plan`` uses for ``(csr, config)``."""
        return plan_key(csr, config)

    def stats(self) -> dict:
        """Counter snapshot of both tiers (disk omitted when absent)."""
        out = {"memory": self.memory.stats.as_dict()}
        if self.disk is not None:
            out["disk"] = self.disk.stats.as_dict()
        return out
