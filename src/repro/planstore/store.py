"""The two-tier plan store: in-process LRU over an optional disk tier.

``get`` checks memory first, then disk (promoting disk hits into memory);
``put`` writes through to both tiers.  All failure handling lives in the
tiers — from here up, a cache problem is always just a miss.

Typical use::

    store = PlanStore(cache_dir="~/.cache/repro-plans")
    plan = build_plan(matrix, config, cache=store)   # cold: builds + stores
    plan = build_plan(matrix, config, cache=store)   # warm: permute + tile only
"""

from __future__ import annotations

from pathlib import Path

from repro.planstore.decisions import PlanDecisions
from repro.planstore.disk import DiskPlanStore
from repro.planstore.fingerprint import plan_key
from repro.planstore.memory import LRUPlanCache

__all__ = ["PlanStore"]


class PlanStore:
    """Content-addressed cache for execution-plan decisions.

    Parameters
    ----------
    max_entries, max_bytes:
        Bounds of the in-memory LRU tier.
    cache_dir:
        Optional directory for the persistent tier; ``None`` keeps the
        store purely in-process.
    """

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: int = 64 * 1024 * 1024,
        cache_dir=None,
    ) -> None:
        self.memory = LRUPlanCache(max_entries=max_entries, max_bytes=max_bytes)
        self.disk = DiskPlanStore(Path(cache_dir)) if cache_dir is not None else None

    # ------------------------------------------------------------------
    def get(self, key: str) -> PlanDecisions | None:
        """Two-tier lookup; disk hits are promoted into the memory tier."""
        decisions = self.memory.get(key)
        if decisions is not None:
            return decisions
        if self.disk is not None:
            decisions = self.disk.get(key)
            if decisions is not None:
                self.memory.put(key, decisions)
                return decisions
        return None

    def put(self, key: str, decisions: PlanDecisions) -> None:
        """Write-through insert into both tiers."""
        self.memory.put(key, decisions)
        if self.disk is not None:
            self.disk.put(key, decisions)

    # ------------------------------------------------------------------
    def key_for(self, csr, config) -> str:
        """The cache key ``build_plan`` uses for ``(csr, config)``."""
        return plan_key(csr, config)

    def stats(self) -> dict:
        """Counter snapshot of both tiers (disk omitted when absent)."""
        out = {"memory": self.memory.stats.as_dict()}
        if self.disk is not None:
            out["disk"] = self.disk.stats.as_dict()
        return out
