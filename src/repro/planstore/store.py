"""The two-tier plan store: in-process LRU over an optional disk tier.

``get`` checks memory first, then disk (promoting disk hits into memory);
``put`` writes through to both tiers.  All failure handling lives in the
tiers — from here up, a cache problem is always just a miss.

Typical use::

    store = PlanStore(cache_dir="~/.cache/repro-plans")
    plan = build_plan(matrix, config, cache=store)   # cold: builds + stores
    plan = build_plan(matrix, config, cache=store)   # warm: permute + tile only
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.planstore.decisions import PlanDecisions
from repro.planstore.disk import DiskPlanStore
from repro.planstore.fingerprint import plan_key
from repro.planstore.memory import LRUPlanCache
from repro.util.hashing import stable_digest

__all__ = ["PlanStore"]


class PlanStore:
    """Content-addressed cache for execution-plan decisions.

    Parameters
    ----------
    max_entries, max_bytes:
        Bounds of the in-memory LRU tier.
    cache_dir:
        Optional directory for the persistent tier; ``None`` keeps the
        store purely in-process.
    max_sessions:
        Bound of the pinned :meth:`session` cache (sessions hold scratch
        buffers sized to their matrix, so the cap is deliberately small).
    """

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: int = 64 * 1024 * 1024,
        cache_dir=None,
        max_sessions: int = 8,
    ) -> None:
        self.memory = LRUPlanCache(max_entries=max_entries, max_bytes=max_bytes)
        self.disk = DiskPlanStore(Path(cache_dir)) if cache_dir is not None else None
        self.max_sessions = max_sessions
        self._sessions: OrderedDict = OrderedDict()
        self._session_lock = threading.Lock()

    # ------------------------------------------------------------------
    def get(self, key: str) -> PlanDecisions | None:
        """Two-tier lookup; disk hits are promoted into the memory tier."""
        decisions = self.memory.get(key)
        if decisions is not None:
            return decisions
        if self.disk is not None:
            decisions = self.disk.get(key)
            if decisions is not None:
                self.memory.put(key, decisions)
                return decisions
        return None

    def put(self, key: str, decisions: PlanDecisions) -> None:
        """Write-through insert into both tiers."""
        self.memory.put(key, decisions)
        if self.disk is not None:
            self.disk.put(key, decisions)

    # ------------------------------------------------------------------
    def session(self, csr, config=None, **session_kwargs):
        """A pinned :class:`~repro.kernels.KernelSession` for ``csr``.

        Builds the execution plan through this store (so repeated calls
        hit the decision cache) and memoises the resulting session: the
        serving path asks once per matrix and every later request reuses
        the already-pinned scratch and panel remaps.  The memo is
        LRU-bounded by ``max_sessions`` and keyed on the session keyword
        arguments too, so e.g. differing ``chunk_k`` values get distinct
        sessions.

        Unlike the *decision* cache (pattern-only by design — decisions
        never read values), the session memo key includes a digest of
        ``csr.values``: a session pins the values it multiplies with, so
        two same-pattern matrices with different values must get distinct
        sessions.  Keying on the pattern alone served stale results for
        exactly that case — e.g. a ``mode="set"`` streaming delta, which
        rewrites values without moving a single non-zero.
        """
        from repro.reorder import ReorderConfig, build_plan

        config = config if config is not None else ReorderConfig()
        memo_key = (
            self.key_for(csr, config),
            stable_digest(np.ascontiguousarray(csr.values, dtype="<f8").tobytes()),
            tuple(sorted(session_kwargs.items())),
        )
        with self._session_lock:
            cached = self._sessions.get(memo_key)
            if cached is not None:
                self._sessions.move_to_end(memo_key)
                return cached
        plan = build_plan(csr, config, cache=self)
        made = plan.session(**session_kwargs)
        with self._session_lock:
            cached = self._sessions.get(memo_key)
            if cached is not None:  # lost a build race: keep the first
                self._sessions.move_to_end(memo_key)
                return cached
            self._sessions[memo_key] = made
            while len(self._sessions) > self.max_sessions:
                self._sessions.popitem(last=False)
        return made

    def invalidate_sessions(self, csr=None, config=None) -> int:
        """Drop memoised sessions; returns how many were evicted.

        With ``csr`` (and optionally ``config``), evicts only the
        sessions pinned to that matrix's plan key — the streaming layer
        calls this after :func:`repro.streaming.apply_delta` so no caller
        can keep multiplying through the pre-delta session.  With no
        arguments, clears the whole memo.
        """
        from repro.reorder import ReorderConfig

        if csr is None:
            with self._session_lock:
                n = len(self._sessions)
                self._sessions.clear()
            return n
        key = self.key_for(csr, config if config is not None else ReorderConfig())
        with self._session_lock:
            doomed = [k for k in self._sessions if k[0] == key]
            for k in doomed:
                del self._sessions[k]
        return len(doomed)

    def key_for(self, csr, config) -> str:
        """The cache key ``build_plan`` uses for ``(csr, config)``."""
        return plan_key(csr, config)

    def stats(self) -> dict:
        """Counter snapshot of both tiers (disk omitted when absent)."""
        out = {"memory": self.memory.stats.as_dict()}
        if self.disk is not None:
            out["disk"] = self.disk.stats.as_dict()
        return out
