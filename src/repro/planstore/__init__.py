"""Content-addressed caching and batched building of execution plans.

The paper's preprocessing (MinHash -> LSH -> clustering -> ASpT tiling,
Alg. 3 / Fig. 5) is paid once per matrix and amortised over many
SpMM/SDDMM calls.  This package makes that amortisation real across
*calls, processes and runs*:

* :mod:`repro.planstore.fingerprint` — stable content keys: a plan is a
  pure function of the sparsity pattern and the
  :class:`~repro.reorder.ReorderConfig`, so the key hashes exactly those
  (plus a format version);
* :class:`PlanDecisions` — the cacheable essence of a plan (the two
  permutations + statistics), re-materialised against the caller's values
  on every hit;
* :class:`LRUPlanCache` — bounded in-process tier with hit/miss/eviction
  counters;
* :class:`DiskPlanStore` — persistent tier with atomic writes, versioned
  entries and corrupt-entry quarantine (failures degrade to misses);
* :class:`PlanStore` — the two tiers composed, accepted by
  :func:`repro.reorder.build_plan` via its ``cache=`` argument;
* :func:`build_plans` — batched parallel front end (process-pool fan-out,
  input-order results, structured per-matrix failures).
"""

from repro.planstore.batch import PlanResult, build_plans
from repro.planstore.decisions import PlanDecisions
from repro.planstore.disk import DiskPlanStore
from repro.planstore.fingerprint import (
    PLAN_FORMAT_VERSION,
    config_fingerprint,
    pattern_fingerprint,
    plan_key,
)
from repro.planstore.memory import CacheStats, LRUPlanCache
from repro.planstore.store import PlanStore

__all__ = [
    "PLAN_FORMAT_VERSION",
    "pattern_fingerprint",
    "config_fingerprint",
    "plan_key",
    "PlanDecisions",
    "CacheStats",
    "LRUPlanCache",
    "DiskPlanStore",
    "PlanStore",
    "PlanResult",
    "build_plans",
]
