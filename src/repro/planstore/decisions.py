"""The cacheable essence of an execution plan.

What the pipeline pays MinHash/LSH/clustering time for is two permutations
and the Fig. 9 statistics; everything else in an
:class:`~repro.reorder.ExecutionPlan` (the tiled structures, the
remainder) is a cheap deterministic function of those decisions, the
matrix and the config.  :class:`PlanDecisions` stores exactly that
essence — it is what both cache tiers hold, and
:meth:`PlanDecisions.materialise` turns it back into a full plan bound to
the *caller's* matrix (so cached decisions are safely shared between
matrices that agree on pattern but differ in values).

This mirrors :meth:`repro.reorder.ExecutionPlan.save`/``load`` (the
paper's offline-deployment story); the plan store adds content addressing
and eviction on top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.aspt.tiles import tile_matrix
from repro.reorder.pipeline import ExecutionPlan, PlanStats
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import permute_csr_rows

__all__ = ["PlanDecisions"]


@dataclass(frozen=True)
class PlanDecisions:
    """The decisions of one pipeline run: permutations + statistics.

    ``row_order``/``remainder_order`` are the round-1/round-2 permutations
    (new position -> source row); ``stats`` the Fig. 9 statistics;
    ``preprocess_total`` the wall-clock the original cold build paid (kept
    so amortisation reports stay meaningful on warm hits); ``provenance``
    the degradation-ladder history (empty when the plan was built without
    a resilience policy — in practice always, since degraded plans are
    never cached, but the field keeps the round trip lossless).

    ``backend``/``artifact`` record the compiled kernel backend the plan
    resolved to and its artifact descriptor (spec fields + fingerprint)
    — stored next to the decisions so a warm hit knows which compiled
    artifact the plan was built against without re-deriving the spec.
    They are *advisory*: :meth:`materialise` re-resolves the config's
    backend in the **current** environment, so an entry cached on a
    machine with numba never pins a numba requirement onto a machine
    without it (nor the reverse).
    """

    row_order: np.ndarray
    remainder_order: np.ndarray
    stats: PlanStats
    preprocess_total: float
    provenance: tuple = ()
    backend: str = "numpy"
    artifact: tuple = ()

    @classmethod
    def from_plan(cls, plan: ExecutionPlan) -> "PlanDecisions":
        """Extract the cacheable decisions from a freshly built plan."""
        return cls(
            row_order=np.ascontiguousarray(plan.row_order, dtype=np.int64),
            remainder_order=np.ascontiguousarray(
                plan.remainder_order, dtype=np.int64
            ),
            stats=plan.stats,
            preprocess_total=plan.preprocessing_time,
            provenance=tuple(plan.provenance),
            backend=plan.backend,
            artifact=tuple(plan.artifact),
        )

    @property
    def nbytes(self) -> int:
        """Estimated in-memory footprint (drives the LRU byte bound)."""
        # The two permutations dominate; stats and object headers are a
        # fixed small overhead.
        return int(self.row_order.nbytes + self.remainder_order.nbytes + 256)

    def materialise(self, csr: CSRMatrix, config) -> ExecutionPlan:
        """Rebuild the full :class:`ExecutionPlan` for ``csr``.

        ``csr`` must have the pattern the decisions were computed from and
        ``config`` must be the config they were computed with — both are
        the cache key's contract, enforced upstream by content addressing.
        Only the cheap deterministic stages run here (permute + tile);
        MinHash/LSH/clustering are skipped entirely.
        """
        if self.row_order.size != csr.n_rows:
            raise ValueError(
                f"decisions cover {self.row_order.size} rows; matrix has "
                f"{csr.n_rows}"
            )
        reordered = permute_csr_rows(csr, self.row_order)
        tiled = tile_matrix(
            reordered,
            config.panel_height,
            config.dense_threshold,
            max_dense_cols=config.max_dense_cols,
        )
        remainder = permute_csr_rows(tiled.sparse_part, self.remainder_order)
        plan = ExecutionPlan(
            original=csr,
            row_order=self.row_order,
            tiled=tiled,
            remainder=remainder,
            remainder_order=self.remainder_order,
            stats=self.stats,
            provenance=self.provenance,
            # "total" reflects what *this* call pays; callers that time the
            # materialisation overwrite it.  The cold build's cost stays
            # available for amortisation reports.
            preprocess_seconds={
                "total": 0.0,
                "cold_total": self.preprocess_total,
            },
        )
        # Re-resolve the backend here rather than trusting the cached
        # value: availability is a property of this process, not of the
        # entry.  A warm hit against an already-seen spec fingerprint
        # reuses the process-global compiled artifact (no recompile).
        from repro.reorder.pipeline import attach_backend

        return attach_backend(plan, config)
