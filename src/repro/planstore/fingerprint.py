"""Content-addressed cache keys for execution plans.

A plan is a pure function of (a) the matrix's *sparsity pattern* and (b)
the :class:`~repro.reorder.ReorderConfig`: MinHash reads the column
support sets, never the values, and every downstream stage (LSH,
clustering, tiling) is deterministic given the config.  The cache key
therefore hashes exactly those two inputs — plus a format version so an
on-disk store written by an older incompatible release reads as a miss,
never as a wrong plan.

Key layout (all BLAKE2b hex digests)::

    pattern_fingerprint(csr)   = H(shape, rowptr, colidx)
    config_fingerprint(config) = H(repr of every config field, sorted)
    plan_key(csr, config)      = H(version, pattern_fp, config_fp)

``values`` deliberately never enters the key: two matrices with the same
pattern share reordering decisions, and a cached plan is re-materialised
against the caller's values on every hit (see
:class:`repro.planstore.PlanDecisions`).
"""

from __future__ import annotations

import dataclasses

from repro.sparse.csr import CSRMatrix
from repro.util.hashing import digest_arrays, stable_digest

__all__ = [
    "PLAN_FORMAT_VERSION",
    "pattern_fingerprint",
    "config_fingerprint",
    "plan_key",
]

#: Version of the cached-plan contract.  Bump whenever the pipeline's
#: deterministic output for a given (pattern, config) changes, or the
#: on-disk layout changes — old entries then miss instead of lying.
#: v2: entries gained a CRC-32 content checksum and a provenance block
#: (degradation-ladder history); v1 entries quarantine on read.
#: v3: entries gained the resolved kernel ``backend`` name and the
#: compiled-artifact descriptor; v2 entries quarantine on read.
PLAN_FORMAT_VERSION = 3


def pattern_fingerprint(csr: CSRMatrix) -> str:
    """Stable hex digest of the sparsity pattern (shape + rowptr + colidx).

    Equal patterns give equal fingerprints regardless of the ``values``
    array or its provenance; moving or adding a single non-zero changes
    the digest.
    """
    shape_digest = stable_digest(
        int(csr.shape[0]).to_bytes(8, "little"),
        int(csr.shape[1]).to_bytes(8, "little"),
    )
    return stable_digest(
        shape_digest.encode("ascii"),
        digest_arrays(csr.rowptr, csr.colidx).encode("ascii"),
    )


def config_fingerprint(config) -> str:
    """Stable hex digest of every field of a :class:`ReorderConfig`.

    Fields are serialised as ``name=repr(value)`` in sorted order, so the
    digest is insensitive to field declaration order but sensitive to any
    value change (including the ``force_round*`` overrides and the
    candidate-scoring ``measure``).
    """
    fields = dataclasses.asdict(config)
    parts = [f"{name}={fields[name]!r}".encode("utf-8") for name in sorted(fields)]
    return stable_digest(*parts)


def plan_key(csr: CSRMatrix, config) -> str:
    """The content-addressed cache key for ``build_plan(csr, config)``."""
    return stable_digest(
        PLAN_FORMAT_VERSION.to_bytes(8, "little"),
        pattern_fingerprint(csr).encode("ascii"),
        config_fingerprint(config).encode("ascii"),
    )
