"""Batched, parallel plan building.

:func:`build_plans` is the fleet-sized front end of the pipeline: given a
list of matrices it fans the per-matrix preprocessing out over a process
pool (the same matrix-grain parallelism the experiment runner uses — the
Python analogue of the paper's OpenMP preprocessing, §5.4), consults the
plan store before dispatching, and returns results **in input order** with
per-matrix failures captured as data instead of aborting the whole batch.

Determinism contract: ``build_plans(ms, cfg, workers=N)`` produces plans
identical (bit-for-bit in the permutations) to ``[build_plan(m, cfg) for
m in ms]`` for every ``N`` — each matrix's work is self-contained and
seeded only by the config, never by scheduling order.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass

from repro.observability.tracing import span
from repro.reorder.pipeline import ExecutionPlan, ReorderConfig, build_plan
from repro.sparse.csr import CSRMatrix
from repro.util.log import get_logger

__all__ = ["PlanResult", "build_plans"]

_log = get_logger("planstore")


@dataclass(frozen=True)
class PlanResult:
    """Outcome of building one plan in a batch.

    Exactly one of ``plan``/``error`` is set.  ``error`` is a one-line
    ``"ExceptionType: message"`` summary; ``details`` the full traceback
    text (worker-side when the build ran in a pool process).
    """

    index: int
    plan: ExecutionPlan | None
    error: str | None = None
    details: str | None = None
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        """True when the plan was built (or served from cache)."""
        return self.plan is not None


def _build_one(payload) -> tuple:
    """Pool worker: build one plan; never raises (returns the failure)."""
    index, csr, config = payload
    try:
        return index, build_plan(csr, config), None, None
    except Exception as exc:  # noqa: BLE001  # reprolint: disable=RD106 -- pool worker marshals every failure back to the parent; nothing may escape
        return (
            index,
            None,
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
        )


def build_plans(
    matrices,
    config: ReorderConfig | None = None,
    *,
    workers: int = 1,
    cache=None,
) -> list[PlanResult]:
    """Build an execution plan for every matrix, optionally in parallel.

    Parameters
    ----------
    matrices:
        Iterable of :class:`CSRMatrix`.  Results come back in this order.
    config:
        One :class:`ReorderConfig` shared by the whole batch.
    workers:
        Process-pool size; ``1`` builds serially in-process.  Only cache
        *misses* are dispatched to the pool — hits are materialised in the
        parent, so a warm batch never pays pool start-up.
    cache:
        Optional :class:`repro.planstore.PlanStore`; decisions built by
        workers are written through it in the parent process.

    Returns
    -------
    list[PlanResult]
        One result per input matrix, failures included (``.ok`` is False
        and ``.error`` describes the exception).
    """
    config = config or ReorderConfig()
    matrices = list(matrices)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")

    results: dict[int, PlanResult] = {}
    pending: list[tuple[int, CSRMatrix]] = []
    with span("batch.cache_sweep", matrices=len(matrices)):
        for index, csr in enumerate(matrices):
            if cache is not None:
                try:
                    key = cache.key_for(csr, config)
                    decisions = cache.get(key)
                except Exception as exc:  # noqa: BLE001  # reprolint: disable=RD106 -- any cache trouble must degrade to a miss, not abort the batch
                    _log.warning("plan cache lookup failed for #%d: %s", index, exc)
                    decisions = None
                if decisions is not None:
                    results[index] = PlanResult(
                        index=index,
                        plan=decisions.materialise(csr, config),
                        cache_hit=True,
                    )
                    continue
            pending.append((index, csr))

    # Worker processes carry no tracer: only the parent-side serial path
    # contributes per-matrix build spans (the pool path records the
    # batch.build envelope around the fan-out).
    with span("batch.build", pending=len(pending), workers=workers):
        if workers == 1 or len(pending) <= 1:
            built = [_build_one((i, csr, config)) for i, csr in pending]
        else:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                built = list(
                    pool.map(_build_one, [(i, csr, config) for i, csr in pending])
                )

    for index, plan, error, details in built:
        if plan is not None and cache is not None:
            from repro.planstore.decisions import PlanDecisions

            cache.put(
                cache.key_for(plan.original, config), PlanDecisions.from_plan(plan)
            )
        results[index] = PlanResult(
            index=index, plan=plan, error=error, details=details
        )

    return [results[i] for i in range(len(matrices))]
