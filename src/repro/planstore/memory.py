"""In-process LRU tier of the plan store.

A bounded mapping ``key -> PlanDecisions`` with two independent capacity
limits (entry count and estimated bytes) and hit/miss/eviction counters.
Bounded because a long-lived serving process sees an unbounded stream of
matrices; counted because cache behaviour is a first-class experimental
quantity in this repo (cf. :mod:`repro.gpu.cache`).

Thread-safe: a single lock guards the ordered map, so a multi-threaded
server can share one cache (CPython's pipeline work releases the GIL in
NumPy anyway; the critical sections here are dict moves).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.observability.metrics import METRICS
from repro.planstore.decisions import PlanDecisions

__all__ = ["CacheStats", "LRUPlanCache"]


class CacheStats:
    """Counters of one cache tier (all monotonically non-decreasing).

    Each instance holds per-tier children of the process-global
    ``planstore.hit/miss/evict/put`` instruments (see
    :mod:`repro.observability.metrics`): reads and ``+=`` writes keep
    their historical per-object semantics while every tier rolls up into
    the registry.  Attempting to decrease a counter raises.
    """

    __slots__ = ("_hits", "_misses", "_evictions", "_puts")

    def __init__(self) -> None:
        self._hits = METRICS.counter("planstore.hit", "plan-cache lookups served").child()
        self._misses = METRICS.counter("planstore.miss", "plan-cache lookups that missed").child()
        self._evictions = METRICS.counter("planstore.evict", "plan-cache entries evicted").child()
        self._puts = METRICS.counter("planstore.put", "plan-cache inserts").child()

    @property
    def hits(self) -> int:
        """Lookups served by this tier."""
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.inc(value - self._hits.value)

    @property
    def misses(self) -> int:
        """Lookups this tier could not serve."""
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.inc(value - self._misses.value)

    @property
    def evictions(self) -> int:
        """Entries dropped to stay within capacity."""
        return self._evictions.value

    @evictions.setter
    def evictions(self, value: int) -> None:
        self._evictions.inc(value - self._evictions.value)

    @property
    def puts(self) -> int:
        """Inserts accepted by this tier."""
        return self._puts.value

    @puts.setter
    def puts(self, value: int) -> None:
        self._puts.inc(value - self._puts.value)

    def as_dict(self) -> dict:
        """Plain-dict view (for logging / CLI reporting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, puts={self.puts})"
        )


@dataclass
class LRUPlanCache:
    """Bounded in-memory ``key -> PlanDecisions`` map with LRU eviction.

    ``max_entries`` and ``max_bytes`` are both enforced after every
    insert; whichever is tighter wins.  A single entry larger than
    ``max_bytes`` is still admitted alone (the bound then holds again as
    soon as anything else arrives), matching the usual clamp-not-reject
    cache semantics.
    """

    max_entries: int = 256
    max_bytes: int = 64 * 1024 * 1024
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _bytes: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self):
        if self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")
        if self.max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {self.max_bytes}")

    # ------------------------------------------------------------------
    def get(self, key: str) -> PlanDecisions | None:
        """Return the cached decisions for ``key`` (None on miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: str, decisions: PlanDecisions) -> None:
        """Insert (or refresh) ``key``; evicts LRU entries over capacity."""
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = decisions
            self._bytes += decisions.nbytes
            self.stats.puts += 1
            while len(self._entries) > self.max_entries or (
                self._bytes > self.max_bytes and len(self._entries) > 1
            ):
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.stats.evictions += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership test that does not touch LRU order or counters."""
        with self._lock:
            return key in self._entries

    @property
    def current_bytes(self) -> int:
        """Estimated bytes currently held."""
        return self._bytes

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
