"""Inline suppression comments.

A finding is suppressed by a trailing comment on its line::

    x = frozen_set_iteration()  # reprolint: disable=RD103 -- order irrelevant here

Multiple codes are comma-separated (``disable=RD103,RD201``).  Everything
after ``--`` is the *justification*; the project convention (enforced in
review, surfaced by :func:`unjustified`) is that every suppression carries
one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Suppression", "collect_suppressions", "unjustified"]

_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>[A-Z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One inline suppression: the codes disabled on a line and its reason."""

    line: int  #: 1-based line number the suppression applies to
    codes: frozenset  #: rule codes disabled on that line
    justification: str  #: text after ``--`` (empty when absent)


def collect_suppressions(lines) -> dict[int, Suppression]:
    """Parse ``lines`` (raw source) into a line-number -> suppression map."""
    out: dict[int, Suppression] = {}
    for number, text in enumerate(lines, start=1):
        match = _PATTERN.search(text)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        if codes:
            out[number] = Suppression(number, codes, match.group("why") or "")
    return out


def unjustified(suppressions: dict[int, Suppression]) -> list[Suppression]:
    """The suppressions lacking a ``-- justification`` clause."""
    return [s for s in suppressions.values() if not s.justification]
