"""Inline suppression comments.

A finding is suppressed by a trailing comment on its line::

    x = frozen_set_iteration()  # reprolint: disable=RD103 -- order irrelevant here

Multiple codes are comma-separated (``disable=RD103,RD201``).  Everything
after ``--`` is the *justification*; the project convention (enforced in
review, surfaced by :func:`unjustified`) is that every suppression carries
one.

Decorated definitions get span attribution: a suppression written on any
line of the declaration header — the first decorator line through the
``def``/``class`` signature — covers the whole header.  Rules anchor
function-level findings at the ``def`` line while authors naturally hang
the comment off the decorator (or vice versa); before
:func:`expand_decorated_spans` the two could silently miss each other.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

__all__ = [
    "Suppression",
    "collect_suppressions",
    "expand_decorated_spans",
    "unjustified",
]

_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>[A-Z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One inline suppression: the codes disabled on a line and its reason."""

    line: int  #: 1-based line number the suppression applies to
    codes: frozenset  #: rule codes disabled on that line
    justification: str  #: text after ``--`` (empty when absent)


def collect_suppressions(lines) -> dict[int, Suppression]:
    """Parse ``lines`` (raw source) into a line-number -> suppression map."""
    out: dict[int, Suppression] = {}
    for number, text in enumerate(lines, start=1):
        match = _PATTERN.search(text)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",") if code.strip()
        )
        if codes:
            out[number] = Suppression(number, codes, match.group("why") or "")
    return out


def expand_decorated_spans(
    suppressions: dict[int, Suppression], tree: ast.AST
) -> dict[int, Suppression]:
    """Attribute header suppressions to the full decorated-definition span.

    For every decorated ``def``/``class`` the header span runs from the
    first decorator line to the line before the first body statement.  A
    suppression on any line of that span is copied to every other line of
    the span (codes merged where lines already carry one), so a comment on
    the decorator suppresses a finding anchored at the ``def`` line and
    vice versa.  Lines outside decorated headers are returned unchanged.
    """
    out = dict(suppressions)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if not node.decorator_list or not node.body:
            continue
        start = min(dec.lineno for dec in node.decorator_list)
        stop = node.body[0].lineno - 1  # header ends before the body
        span = range(start, stop + 1)
        in_span = [suppressions[n] for n in span if n in suppressions]
        if not in_span:
            continue
        codes = frozenset().union(*(s.codes for s in in_span))
        why = "; ".join(sorted({s.justification for s in in_span if s.justification}))
        for line in span:
            existing = out.get(line)
            if existing is not None and existing not in in_span:
                merged = existing.codes | codes
                merged_why = existing.justification or why
                out[line] = Suppression(line, merged, merged_why)
            else:
                out[line] = Suppression(line, codes, why)
    return out


def unjustified(suppressions: dict[int, Suppression]) -> list[Suppression]:
    """The suppressions lacking a ``-- justification`` clause."""
    return [s for s in suppressions.values() if not s.justification]
