"""reprolint reporters: text and JSON renderings of a findings list.

Both reporters return strings (the CLI layer prints them) and both are
deterministic: findings are emitted in ``(path, line, col, code)`` order
and the JSON layout is fixed, so reports diff cleanly and snapshot tests
stay stable.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.core import Finding, all_rules

__all__ = ["render_text", "render_json", "render_rule_list"]

#: Schema version stamped into JSON reports.
JSON_VERSION = 1


def render_text(findings) -> str:
    """Flake8-style one-line-per-finding report with a count summary."""
    findings = sorted(findings)
    lines = [f.render() for f in findings]
    if findings:
        by_code = Counter(f.code for f in findings)
        breakdown = ", ".join(f"{code}×{n}" for code, n in sorted(by_code.items()))
        lines.append("")
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} ({breakdown})"
        )
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings) -> str:
    """Machine-readable report: ``{version, summary, findings}``."""
    findings = sorted(findings)
    payload = {
        "version": JSON_VERSION,
        "summary": {
            "total": len(findings),
            "by_code": dict(sorted(Counter(f.code for f in findings).items())),
        },
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=1, sort_keys=False)


def render_rule_list() -> str:
    """Registry listing for ``--list-rules``: code, name, summary."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"       {rule.summary}")
    return "\n".join(lines)
