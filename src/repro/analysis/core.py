"""Core types of the reprolint static-analysis pass.

A :class:`Rule` inspects one parsed file (via a :class:`FileContext`) and
yields :class:`Finding` objects.  Rules self-register into the module-level
:data:`REGISTRY` through the :func:`register` decorator; the runner iterates
the registry, applying each rule's path scoping before visiting.

Rule codes follow the ``RD<band><nn>`` convention documented in
CONTRIBUTING.md:

* ``RD1xx`` — determinism (seeding, ordered iteration, wall clocks),
* ``RD2xx`` — numerical safety (float equality, index narrowing, unchecked
  entry points),
* ``RD3xx`` — hygiene (bare except, mutable defaults, stray prints,
  unrouted CLI handlers),
* ``RD4xx``/``RD5xx``/``RD6xx`` — inter-procedural dataflow families
  (nondeterminism taint, dtype propagation, purity), implemented as
  :class:`ProjectRule` subclasses over a whole-project call graph (see
  :mod:`repro.analysis.dataflow`).

``RD001`` is reserved for files that fail to parse.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "ProjectRule",
    "REGISTRY",
    "register",
    "all_rules",
    "PARSE_ERROR_CODE",
]

#: Pseudo-rule code attached to files that fail :func:`ast.parse`.
PARSE_ERROR_CODE = "RD001"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Sortable by ``(path, line, col, code)`` so reports are stable across
    filesystem iteration orders.
    """

    path: str  #: file path as reported (posix, relative to the lint root)
    line: int  #: 1-based line number
    col: int  #: 0-based column offset
    code: str  #: rule code, e.g. ``"RD103"``
    message: str  #: human-readable description of the violation

    def to_dict(self) -> dict:
        """JSON-serialisable representation (used by the JSON reporter)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def render(self) -> str:
        """The conventional one-line ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    display: str  #: path used in findings (posix, relative to lint root)
    module_rel: str  #: package-relative path used for rule scoping
    tree: ast.AST  #: parsed module
    lines: list[str] = field(default_factory=list)  #: raw source lines
    config: object = None  #: the active :class:`~repro.analysis.config.LintConfig`

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            path=self.display,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`visit`.
    ``scope_key`` / ``exempt_key`` name entries of the config's scope map
    (see :data:`repro.analysis.config.DEFAULT_SCOPES`): when ``scope_key``
    is set the rule only runs on files under one of those paths; when
    ``exempt_key`` is set, files under those paths are skipped.
    """

    code: str = ""  #: unique rule code (``RD...``)
    name: str = ""  #: short kebab-case rule name
    summary: str = ""  #: one-line description for ``--list-rules`` and docs
    scope_key: str | None = None  #: config scope limiting where the rule runs
    exempt_key: str | None = None  #: config scope exempting paths

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for ``ctx`` (subclass responsibility)."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers


class ProjectRule(Rule):
    """Base class for whole-project (inter-procedural) rules.

    Unlike per-file :class:`Rule` subclasses, a project rule sees every
    parsed file at once through a :class:`repro.analysis.dataflow.Project`
    and may follow calls across module boundaries.  Findings are still
    anchored to one file/line, and the runner applies path scoping and
    inline suppressions per finding (using the *finding's* file), so the
    configuration surface is identical to per-file rules.
    """

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        """Project rules do not run per-file; the runner calls :meth:`analyze`."""
        return iter(())

    def analyze(self, project) -> Iterator[Finding]:
        """Yield findings over a whole :class:`~repro.analysis.dataflow.Project`."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for type checkers


#: Global rule registry: code -> rule instance.
REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding a rule (by instance) to :data:`REGISTRY`."""
    rule = rule_cls()
    if not rule.code:
        raise ValueError(f"rule {rule_cls.__name__} has no code")
    if rule.code in REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> Iterable[Rule]:
    """All registered rules, sorted by code."""
    return [REGISTRY[code] for code in sorted(REGISTRY)]
