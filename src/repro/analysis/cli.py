"""reprolint command-line front end.

Reached two ways with identical semantics::

    repro lint src/ tests/ [--format json] [--select RD101,RD103] ...
    python -m repro.analysis src/ tests/ ...

Exit codes: 0 clean, 1 findings reported, and the shared
:mod:`repro.errors` codes for usage/configuration problems.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.config import load_config
from repro.analysis.report import render_json, render_rule_list, render_text
from repro.analysis.runner import lint_paths
from repro.errors import EXIT_FAILURE, EXIT_OK

__all__ = ["build_parser", "run_lint", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``reprolint`` argument parser (shared with ``repro lint``)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="codebase-specific static analysis: determinism, "
        "numerical safety, hygiene (rule codes RD1xx/RD2xx/RD3xx)",
    )
    add_lint_arguments(parser)
    return parser


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options onto ``parser`` (reused by ``repro lint``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore", metavar="CODES", default=None,
        help="comma-separated rule codes to skip (adds to pyproject ignore)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )


def _split_codes(raw: str | None):
    if raw is None:
        return None
    return frozenset(code.strip() for code in raw.split(",") if code.strip())


def run_lint(args) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        print(render_rule_list())
        return EXIT_OK
    config = load_config()
    selected = _split_codes(args.select)
    if selected is not None:
        config.select = selected
    extra_ignore = _split_codes(args.ignore)
    if extra_ignore is not None:
        config.ignore = config.ignore | extra_ignore
    findings = lint_paths(args.paths, config)
    render = render_json if args.format == "json" else render_text
    print(render(findings))
    return EXIT_FAILURE if findings else EXIT_OK


def main(argv=None) -> int:
    """``python -m repro.analysis`` entry point."""
    args = build_parser().parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
