"""reprolint command-line front end.

Reached two ways with identical semantics::

    repro lint src/ tests/ [--format sarif] [--baseline FILE] [--incremental] ...
    python -m repro.analysis src/ tests/ ...

Exit codes: 0 clean, 1 findings reported, and the shared
:mod:`repro.errors` codes for usage/configuration problems.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.config import load_config
from repro.analysis.dataflow.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.dataflow.sarif import render_sarif_json
from repro.analysis.report import render_json, render_rule_list, render_text
from repro.analysis.runner import lint_paths, lint_session
from repro.errors import EXIT_FAILURE, EXIT_OK

__all__ = ["build_parser", "run_lint", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``reprolint`` argument parser (shared with ``repro lint``)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="codebase-specific static analysis: determinism, "
        "numerical safety, hygiene, and inter-procedural dataflow "
        "(rule codes RD1xx-RD6xx)",
    )
    add_lint_arguments(parser)
    return parser


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options onto ``parser`` (reused by ``repro lint``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="CODES", default=None,
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore", metavar="CODES", default=None,
        help="comma-separated rule codes to skip (adds to pyproject ignore)",
    )
    parser.add_argument(
        "--sarif", metavar="FILE", default=None,
        help="additionally write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="subtract findings recorded in this baseline file; only "
        "findings introduced since then fail the run",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline FILE with the current findings and exit 0",
    )
    parser.add_argument(
        "--incremental", action="store_true",
        help="use the content-addressed cache: only changed files and "
        "their importers are re-analysed",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="incremental cache location (default: <root>/.reprolint-cache)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )


def _split_codes(raw: str | None):
    if raw is None:
        return None
    return frozenset(code.strip() for code in raw.split(",") if code.strip())


def run_lint(args) -> int:
    """Execute a lint run from parsed arguments; returns the exit code."""
    if args.list_rules:
        print(render_rule_list())
        return EXIT_OK
    config = load_config()
    selected = _split_codes(args.select)
    if selected is not None:
        config.select = selected
    extra_ignore = _split_codes(args.ignore)
    if extra_ignore is not None:
        config.ignore = config.ignore | extra_ignore

    if getattr(args, "incremental", False):
        findings, stats = lint_session(args.paths, config, args.cache_dir)
        print(stats.render(), file=sys.stderr)
    else:
        findings = lint_paths(args.paths, config)

    baseline_path = getattr(args, "baseline", None)
    if getattr(args, "update_baseline", False):
        if baseline_path is None:
            print("--update-baseline requires --baseline FILE", file=sys.stderr)
            return EXIT_FAILURE
        save_baseline(findings, baseline_path)
        print(
            f"baseline updated: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} recorded in {baseline_path}",
            file=sys.stderr,
        )
        return EXIT_OK
    if baseline_path is not None and Path(baseline_path).exists():
        fingerprints = load_baseline(baseline_path)
        findings, baselined = apply_baseline(findings, fingerprints)
        if baselined:
            print(
                f"baseline: {len(baselined)} finding"
                f"{'s' if len(baselined) != 1 else ''} suppressed",
                file=sys.stderr,
            )

    if getattr(args, "sarif", None):
        Path(args.sarif).write_text(
            render_sarif_json(findings) + "\n", encoding="utf-8"
        )
    render = {"text": render_text, "json": render_json,
              "sarif": render_sarif_json}[args.format]
    print(render(findings))
    return EXIT_FAILURE if findings else EXIT_OK


def main(argv=None) -> int:
    """``python -m repro.analysis`` entry point."""
    args = build_parser().parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
