"""The reprolint driver: file discovery, rule dispatch, filtering.

:func:`lint_paths` is the high-level entry point used by ``repro lint``
and ``python -m repro.analysis``; :func:`lint_source` lints one in-memory
source string (the unit tests' workhorse); :func:`lint_session` adds the
content-addressed incremental mode on top of :func:`lint_paths`.

Per-file rules run on each file independently.  Project rules
(:class:`~repro.analysis.core.ProjectRule`, the RD4xx–RD6xx dataflow
families) run once over a :class:`~repro.analysis.dataflow.Project`
built from every parsed file; their findings are then filtered with the
same scoping/suppression machinery as per-file findings, keyed by the
file each finding lands in.
"""

from __future__ import annotations

import ast
import os
from pathlib import Path

from repro.analysis import rules as _rules  # noqa: F401 — registers the rule set
from repro.analysis.config import LintConfig, path_matches
from repro.analysis.core import (
    PARSE_ERROR_CODE,
    REGISTRY,
    FileContext,
    Finding,
    ProjectRule,
)
from repro.analysis.dataflow.cache import CacheStats, IncrementalCache, compute_dirty
from repro.analysis.dataflow.callgraph import module_imports, module_name_for
from repro.analysis.dataflow.engine import (
    DATAFLOW_CODES,
    build_project,
    serialize_module,
)
from repro.analysis.suppressions import collect_suppressions, expand_decorated_spans
from repro.errors import ValidationError
from repro.util.hashing import stable_digest

__all__ = [
    "lint_paths",
    "lint_file",
    "lint_source",
    "lint_session",
    "iter_python_files",
    "module_rel",
]


def module_rel(path: Path, root: Path) -> str:
    """Package-relative posix path used for rule scoping.

    Files inside the ``repro`` package are addressed from the package root
    (``repro/kernels/spmm.py`` regardless of src-layout); anything else
    falls back to the lint-root-relative path.
    """
    parts = path.resolve().parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index:])
    return display_rel(path, root)


def display_rel(path: Path, root: Path) -> str:
    """Lint-root-relative posix path used in reports.

    Always relative: paths outside the root are expressed with ``..``
    components rather than leaking absolute machine paths into reports,
    baselines and SARIF artifacts.
    """
    resolved = path.resolve()
    root = Path(root).resolve()
    try:
        return resolved.relative_to(root).as_posix()
    except ValueError:
        return Path(os.path.relpath(resolved, root)).as_posix()


def iter_python_files(paths, config: LintConfig):
    """Yield the ``.py`` files under ``paths``, honouring ``exclude``."""
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ValidationError(f"lint path does not exist: {raw}")
        candidates = (
            sorted(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
            if path.is_dir()
            else [path]
        )
        for candidate in candidates:
            if not path_matches(display_rel(candidate, config.root), config.exclude):
                yield candidate


class _ParsedFile:
    """One successfully parsed file plus its suppression map."""

    __slots__ = ("ctx", "suppressions")

    def __init__(self, ctx: FileContext, suppressions: dict):
        self.ctx = ctx
        self.suppressions = suppressions


def _parse(source: str, display: str, rel: str, config: LintConfig):
    """``(_ParsedFile, [])`` or ``(None, [parse-error finding])``."""
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        finding = Finding(
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            code=PARSE_ERROR_CODE,
            message=f"file could not be parsed: {exc.msg}",
        )
        return None, [finding]
    lines = source.splitlines()
    ctx = FileContext(
        display=display, module_rel=rel, tree=tree, lines=lines, config=config
    )
    suppressions = expand_decorated_spans(collect_suppressions(lines), tree)
    return _ParsedFile(ctx, suppressions), []


def _rule_applies(rule, display: str, rel: str, config: LintConfig) -> bool:
    if not config.code_enabled(rule.code) or config.ignored_at(display, rule.code):
        return False
    if rule.scope_key and not path_matches(rel, config.scope(rule.scope_key)):
        return False
    if rule.exempt_key and path_matches(rel, config.scope(rule.exempt_key)):
        return False
    return True


def _file_findings(parsed: _ParsedFile, config: LintConfig) -> list[Finding]:
    """Per-file rule findings for one parsed file, suppressions applied."""
    ctx, suppressions = parsed.ctx, parsed.suppressions
    findings: list[Finding] = []
    for code in sorted(REGISTRY):
        rule = REGISTRY[code]
        if isinstance(rule, ProjectRule):
            continue
        if not _rule_applies(rule, ctx.display, ctx.module_rel, config):
            continue
        for finding in rule.visit(ctx):
            suppression = suppressions.get(finding.line)
            if suppression is not None and finding.code in suppression.codes:
                continue
            findings.append(finding)
    return findings


def _project_rules(config: LintConfig) -> list[ProjectRule]:
    return [
        REGISTRY[code]
        for code in sorted(REGISTRY)
        if isinstance(REGISTRY[code], ProjectRule) and config.code_enabled(code)
    ]


def _project_findings(
    parsed_files: dict, config: LintConfig, *, cached=None, project_out=None
) -> list[Finding]:
    """Project-rule findings over ``parsed_files`` (display -> _ParsedFile).

    ``cached`` supplies serialised module stubs for files the incremental
    mode did not re-parse; ``project_out`` (a list) receives the built
    :class:`Project` so callers can serialise summaries afterwards.
    """
    rules = _project_rules(config)
    if not rules or not parsed_files:
        return []
    project = build_project(
        (p.ctx for p in parsed_files.values()), cached=cached
    )
    if project_out is not None:
        project_out.append(project)
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.analyze(project):
            parsed = parsed_files.get(finding.path)
            if parsed is None:
                continue
            if not _rule_applies(
                rule, finding.path, parsed.ctx.module_rel, config
            ):
                continue
            suppression = parsed.suppressions.get(finding.line)
            if suppression is not None and finding.code in suppression.codes:
                continue
            findings.append(finding)
    return findings


def lint_source(
    source: str,
    *,
    display: str,
    config: LintConfig,
    module_path: str | None = None,
) -> list[Finding]:
    """Lint one source string; ``module_path`` overrides rule scoping.

    Project rules see a one-file project, so intra-module dataflow
    findings (the fixture tests' bread and butter) are reported; true
    cross-file findings need :func:`lint_paths`.
    """
    rel = module_path if module_path is not None else display
    parsed, errors = _parse(source, display, rel, config)
    if parsed is None:
        return errors
    findings = _file_findings(parsed, config)
    findings.extend(_project_findings({display: parsed}, config))
    return sorted(findings)


def lint_file(path, config: LintConfig) -> list[Finding]:
    """Lint one file on disk (per-file and single-file project rules)."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source,
        display=display_rel(path, config.root),
        config=config,
        module_path=module_rel(path, config.root),
    )


def _load_files(paths, config: LintConfig):
    """``(display, rel, source, digest)`` for every file under ``paths``."""
    out = []
    for path in iter_python_files(paths, config):
        source = path.read_text(encoding="utf-8")
        out.append(
            (
                display_rel(path, config.root),
                module_rel(path, config.root),
                source,
                stable_digest(source.encode("utf-8")),
            )
        )
    return out


def lint_paths(paths, config: LintConfig | None = None) -> list[Finding]:
    """Lint files/directories and return all findings, sorted and stable."""
    if config is None:
        config = LintConfig()
    findings: list[Finding] = []
    parsed_files: dict[str, _ParsedFile] = {}
    for display, rel, source, _ in _load_files(paths, config):
        parsed, errors = _parse(source, display, rel, config)
        if parsed is None:
            findings.extend(errors)
            continue
        parsed_files[display] = parsed
        findings.extend(_file_findings(parsed, config))
    findings.extend(_project_findings(parsed_files, config))
    return sorted(findings)


def lint_session(
    paths, config: LintConfig | None = None, cache_dir=None
) -> tuple[list[Finding], CacheStats]:
    """Incremental lint: only changed files and their importers re-analyse.

    Files are keyed by content digest; a file is dirty when its digest
    changed or a module it (transitively) imports is dirty.  Clean files
    contribute cached findings and cached function summaries, so the
    project rules still see the whole program.  Returns the full findings
    list (cached + fresh) and the session's :class:`CacheStats`.
    """
    if config is None:
        config = LintConfig()
    if cache_dir is None:
        cache_dir = Path(config.root) / ".reprolint-cache"
    cache = IncrementalCache(cache_dir)
    cached_files = cache.load()
    loaded = _load_files(paths, config)
    dirty = compute_dirty(
        [(display, module_name_for(rel), digest) for display, rel, _, digest in loaded],
        cached_files,
    )

    stats = CacheStats()
    findings: list[Finding] = []
    parsed_files: dict[str, _ParsedFile] = {}
    fresh_local: dict[str, list[Finding]] = {}
    cached_modules: dict[str, dict] = {}
    entries: dict[str, dict] = {}

    for display, rel, source, digest in loaded:
        if display not in dirty:
            stats.hits += 1
            entry = cached_files[display]
            findings.extend(Finding(**f) for f in entry.get("findings", ()))
            if entry.get("module") is not None:
                cached_modules[module_name_for(rel)] = entry["module"]
            entries[display] = entry
            continue
        stats.misses += 1
        stats.dirty.append(display)
        parsed, errors = _parse(source, display, rel, config)
        if parsed is None:
            findings.extend(errors)
            entries[display] = {
                "digest": digest,
                "module_rel": rel,
                "imports": [],
                "findings": [f.to_dict() for f in errors],
                "module": None,
            }
            continue
        parsed_files[display] = parsed
        fresh_local[display] = _file_findings(parsed, config)
        findings.extend(fresh_local[display])
        entries[display] = {
            "digest": digest,
            "module_rel": rel,
            "imports": [],
            "findings": [],
            "module": None,
        }

    project_out: list = []
    project_findings = _project_findings(
        parsed_files, config, cached=cached_modules, project_out=project_out
    )
    findings.extend(project_findings)

    by_display: dict[str, list[Finding]] = {}
    for finding in project_findings:
        by_display.setdefault(finding.path, []).append(finding)
    project = project_out[0] if project_out else None
    for display, parsed in parsed_files.items():
        entry = entries[display]
        file_findings = fresh_local.get(display, []) + by_display.get(display, [])
        entry["findings"] = [f.to_dict() for f in sorted(file_findings)]
        if project is not None:
            name = module_name_for(parsed.ctx.module_rel)
            module = project.modules.get(name)
            if module is not None and module.tree is not None:
                entry["imports"] = module_imports(module)
                entry["module"] = serialize_module(project, module)
    cache.save(entries)
    return sorted(findings), stats
