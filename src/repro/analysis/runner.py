"""The reprolint driver: file discovery, rule dispatch, filtering.

:func:`lint_paths` is the high-level entry point used by ``repro lint``
and ``python -m repro.analysis``; :func:`lint_source` lints one in-memory
source string (the unit tests' workhorse).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import rules as _rules  # noqa: F401 — registers the rule set
from repro.analysis.config import LintConfig, path_matches
from repro.analysis.core import PARSE_ERROR_CODE, REGISTRY, FileContext, Finding
from repro.analysis.suppressions import collect_suppressions
from repro.errors import ValidationError

__all__ = ["lint_paths", "lint_file", "lint_source", "iter_python_files", "module_rel"]


def module_rel(path: Path, root: Path) -> str:
    """Package-relative posix path used for rule scoping.

    Files inside the ``repro`` package are addressed from the package root
    (``repro/kernels/spmm.py`` regardless of src-layout); anything else
    falls back to the lint-root-relative path.
    """
    parts = path.resolve().parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index:])
    return display_rel(path, root)


def display_rel(path: Path, root: Path) -> str:
    """Lint-root-relative posix path used in reports (absolute as fallback)."""
    resolved = path.resolve()
    try:
        return resolved.relative_to(Path(root).resolve()).as_posix()
    except ValueError:
        return resolved.as_posix()


def iter_python_files(paths, config: LintConfig):
    """Yield the ``.py`` files under ``paths``, honouring ``exclude``."""
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ValidationError(f"lint path does not exist: {raw}")
        candidates = (
            sorted(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
            if path.is_dir()
            else [path]
        )
        for candidate in candidates:
            if not path_matches(display_rel(candidate, config.root), config.exclude):
                yield candidate


def lint_source(
    source: str,
    *,
    display: str,
    config: LintConfig,
    module_path: str | None = None,
) -> list[Finding]:
    """Lint one source string; ``module_path`` overrides rule scoping."""
    rel = module_path if module_path is not None else display
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Finding(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"file could not be parsed: {exc.msg}",
            )
        ]
    lines = source.splitlines()
    ctx = FileContext(
        display=display, module_rel=rel, tree=tree, lines=lines, config=config
    )
    suppressions = collect_suppressions(lines)

    findings: list[Finding] = []
    for code in sorted(REGISTRY):
        rule = REGISTRY[code]
        if not config.code_enabled(code) or config.ignored_at(display, code):
            continue
        if rule.scope_key and not path_matches(rel, config.scope(rule.scope_key)):
            continue
        if rule.exempt_key and path_matches(rel, config.scope(rule.exempt_key)):
            continue
        for finding in rule.visit(ctx):
            suppression = suppressions.get(finding.line)
            if suppression is not None and finding.code in suppression.codes:
                continue
            findings.append(finding)
    return sorted(findings)


def lint_file(path, config: LintConfig) -> list[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(
        source,
        display=display_rel(path, config.root),
        config=config,
        module_path=module_rel(path, config.root),
    )


def lint_paths(paths, config: LintConfig | None = None) -> list[Finding]:
    """Lint files/directories and return all findings, sorted and stable."""
    if config is None:
        config = LintConfig()
    findings: list[Finding] = []
    for path in iter_python_files(paths, config):
        findings.extend(lint_file(path, config))
    return sorted(findings)
