"""Per-function control-flow graphs and a forward dataflow solver.

Blocks hold *simple* statements plus pseudo-statements for the compound
headers (an ``If`` test, a ``For`` header binding its target, a ``While``
test); the builder splits bodies into successor blocks, wires loop back
edges and break/continue, and routes ``try`` bodies to their handlers.
Exceptions are modelled coarsely: every handler is reachable from the
start of its ``try`` body, which over-approximates — fine for the
may-analyses built on top.

:func:`solve_forward` is a classic worklist fixpoint over the block
graph; analyses provide the environment join and the per-statement
transfer function.  All analyses in this package are may-analyses with
finite join-semilattice domains, so termination is by monotonicity.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["Block", "CFG", "build_cfg", "solve_forward"]

#: Pseudo-statement kinds placed in blocks for compound-statement headers.
TEST = "test"  #: an ``If``/``While`` condition expression
BIND = "bind"  #: a ``For`` header (binds ``target`` from ``iter``)
STMT = "stmt"  #: a plain simple statement


@dataclass
class Block:
    """One basic block: ``(kind, node)`` pairs plus successor ids."""

    id: int
    items: list = field(default_factory=list)  #: (kind, ast node) pairs
    succs: list = field(default_factory=list)  #: successor block ids


@dataclass
class CFG:
    """A function's control-flow graph.

    Block 0 is the shared *exit* block (the target of every ``return``
    and of normal fall-through); the entry block is :attr:`entry`.
    """

    blocks: list
    entry: int = 0
    exit: int = 0

    def reachable_from(self) -> dict[int, set]:
        """Map block id -> set of block ids reachable via ``succs``.

        A block is *not* considered to reach itself unless it sits on a
        cycle.  Used by path-sensitive clients (e.g. "does this effect
        precede that fault point on some execution path?").
        """
        out: dict[int, set] = {}
        for block in self.blocks:
            seen: set = set()
            frontier = list(block.succs)
            while frontier:
                bid = frontier.pop()
                if bid in seen:
                    continue
                seen.add(bid)
                frontier.extend(self.blocks[bid].succs)
            out[block.id] = seen
        return out

    def preds(self) -> dict[int, list[int]]:
        """Predecessor map derived from :attr:`Block.succs`."""
        out: dict[int, list[int]] = {b.id: [] for b in self.blocks}
        for b in self.blocks:
            for s in b.succs:
                out[s].append(b.id)
        return out


class _Builder:
    def __init__(self):
        self.blocks: list[Block] = []
        self.loop_stack: list[tuple[int, int]] = []  # (header, exit)
        self.exit = self.new_block()  # block 0 is entry; re-pointed below

    def new_block(self) -> int:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block.id

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)

    def build(self, body: list, current: int, exit_id: int) -> int:
        """Lay out ``body`` starting in ``current``; returns the live tail
        block id, or ``-1`` when control never falls through."""
        for stmt in body:
            if current == -1:
                break  # unreachable code after return/raise/break
            current = self.statement(stmt, current, exit_id)
        return current

    def statement(self, stmt, current: int, exit_id: int) -> int:
        blocks, edge = self.blocks, self.edge
        if isinstance(stmt, (ast.Return, ast.Raise)):
            blocks[current].items.append((STMT, stmt))
            edge(current, exit_id)
            return -1
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                edge(current, self.loop_stack[-1][1])
                return -1
            return current
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                edge(current, self.loop_stack[-1][0])
                return -1
            return current
        if isinstance(stmt, ast.If):
            blocks[current].items.append((TEST, stmt.test))
            then_b, merge = self.new_block(), self.new_block()
            edge(current, then_b)
            tail = self.build(stmt.body, then_b, exit_id)
            if tail != -1:
                edge(tail, merge)
            if stmt.orelse:
                else_b = self.new_block()
                edge(current, else_b)
                tail = self.build(stmt.orelse, else_b, exit_id)
                if tail != -1:
                    edge(tail, merge)
            else:
                edge(current, merge)
            return merge
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header, exit_b = self.new_block(), self.new_block()
            edge(current, header)
            if isinstance(stmt, ast.While):
                blocks[header].items.append((TEST, stmt.test))
            else:
                blocks[header].items.append((BIND, stmt))
            body_b = self.new_block()
            edge(header, body_b)
            edge(header, exit_b)  # zero-iteration path
            self.loop_stack.append((header, exit_b))
            tail = self.build(stmt.body, body_b, exit_id)
            self.loop_stack.pop()
            if tail != -1:
                edge(tail, header)  # back edge
            if stmt.orelse:
                else_b = self.new_block()
                edge(header, else_b)
                tail = self.build(stmt.orelse, else_b, exit_id)
                if tail != -1:
                    edge(tail, exit_b)
            return exit_b
        if isinstance(stmt, ast.Try):
            body_b, merge = self.new_block(), self.new_block()
            edge(current, body_b)
            handler_ids = [self.new_block() for _ in stmt.handlers]
            for hid in handler_ids:
                edge(body_b, hid)  # coarse: any try statement may raise
            tail = self.build(stmt.body, body_b, exit_id)
            if tail != -1:
                final = self.build(stmt.orelse, tail, exit_id)
                if final != -1:
                    edge(final, merge)
            for handler, hid in zip(stmt.handlers, handler_ids):
                tail = self.build(handler.body, hid, exit_id)
                if tail != -1:
                    edge(tail, merge)
            if stmt.finalbody:
                fin = self.new_block()
                edge(merge, fin)
                tail = self.build(stmt.finalbody, fin, exit_id)
                return tail if tail != -1 else -1
            return merge
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                blocks[current].items.append((STMT, ast.Expr(value=item.context_expr)))
            return self.build(stmt.body, current, exit_id)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return current  # nested defs analysed separately
        blocks[current].items.append((STMT, stmt))
        return current


def build_cfg(fn: ast.AST) -> CFG:
    """Build the CFG of a ``FunctionDef``/``AsyncFunctionDef`` body."""
    builder = _Builder()
    entry = builder.new_block()  # id 1; 0 is the shared exit block
    tail = builder.build(fn.body, entry, builder.exit)
    if tail != -1:
        builder.edge(tail, builder.exit)
    return CFG(blocks=builder.blocks, entry=entry)


def solve_forward(cfg: CFG, init, transfer, join, *, max_iter: int = 100):
    """Worklist fixpoint: returns the entry environments per block.

    ``init`` seeds the entry block; ``transfer(kind, node, env) -> env``
    folds one block item; ``join(a, b, succ) -> env`` merges flow edges
    into block ``succ`` (clients that report on merges can ignore joins
    into ``cfg.exit`` — values merged after a ``return`` are dead).  The
    returned dict maps block id to its stabilised *entry* environment.
    """
    entry_env = {cfg.entry: init}
    work = [cfg.entry]
    iterations = 0
    limit = max_iter * max(1, len(cfg.blocks))
    while work:
        iterations += 1
        if iterations > limit:
            break  # safety valve; domains are finite so this should not hit
        bid = work.pop(0)
        out = entry_env[bid]
        for kind, node in cfg.blocks[bid].items:
            out = transfer(kind, node, out)
        for succ in cfg.blocks[bid].succs:
            previous = entry_env.get(succ)
            merged = out if previous is None else join(previous, out, succ)
            if previous is None or merged != previous:
                entry_env[succ] = merged
                if succ not in work:
                    work.append(succ)
    return entry_env
