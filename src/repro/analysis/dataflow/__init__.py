"""Inter-procedural dataflow engine for reprolint.

The per-file rules (RD1xx–RD3xx) see one AST at a time; the analyses in
this package see the whole project.  A :class:`Project` parses every file
under the lint root, builds a :class:`~repro.analysis.dataflow.callgraph.CallGraph`
(imports resolved, calls bound to definitions) and runs three summary-based
analyses to a fixpoint:

* :mod:`~repro.analysis.dataflow.taint` — RD4xx: nondeterminism sources
  (clocks, unseeded RNG, ``os.urandom``, ``id()``, set/dict iteration
  order) tracked through calls, returns and container writes into hashing,
  fingerprint and codegen/kernel-output sinks;
* :mod:`~repro.analysis.dataflow.dtypes` — RD5xx: a dtype lattice
  (``float32 < float64``, ``int``, ``⊤``) propagated across call
  boundaries to find implicit float64 upcasts on float32 paths;
* :mod:`~repro.analysis.dataflow.purity` — RD6xx: side-effect inference
  proving ``@checked``/``validates`` contract targets and the statements
  preceding every ``fault_point`` site observably pure.

Each function gets a small serialisable summary, which is what makes the
incremental mode (:mod:`~repro.analysis.dataflow.cache`) possible: an
unchanged module contributes its cached summaries and findings without
being re-parsed, and only files whose content or transitive callee set
changed are re-analysed.

Reporting artefacts live alongside the engine:
:mod:`~repro.analysis.dataflow.sarif` (SARIF 2.1.0 export),
:mod:`~repro.analysis.dataflow.baseline` (grandfathered findings) and
:mod:`~repro.analysis.dataflow.cache` (content-addressed incremental
cache reusing :func:`repro.util.hashing.stable_digest`).
"""

from repro.analysis.dataflow.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.dataflow.cache import CacheStats, IncrementalCache
from repro.analysis.dataflow.callgraph import CallGraph, FunctionInfo, ModuleInfo
from repro.analysis.dataflow.engine import Project, build_project
from repro.analysis.dataflow.sarif import render_sarif, validate_sarif

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "build_project",
    "render_sarif",
    "validate_sarif",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "CacheStats",
    "IncrementalCache",
]
