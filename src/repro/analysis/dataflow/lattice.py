"""The dtype-propagation lattice used by the RD5xx analysis.

Element order (a join semilattice)::

        top
       / | \\
    f32 f64 int        (pairwise joins go to top, except f32 ⊔ f64 = f64,
       \\ | /            which is exactly the *upcast* the analysis reports)
        bot

Abstract values are ``(const, params, origin)`` tuples:

* ``const`` — the lattice element contributed by literals/allocations,
* ``params`` — parameter names whose runtime dtype flows into the value
  (a dtype-*preserving* path: ``csr.values[gather]`` keeps whatever dtype
  the caller passed),
* ``origin`` — ``(line, col, description, implicit)`` of the expression
  that first introduced a hard ``float64``, so findings can point at the
  allocation rather than the merge point.  ``implicit`` distinguishes a
  float64 that *defaulted* (``np.zeros`` without ``dtype`` — always worth
  reporting) from one explicitly requested (``astype(np.float64)``,
  ``dtype=np.float64`` — an announced contract, reported only when two
  control-flow branches disagree).

Plain tuples keep environment comparison cheap inside the CFG fixpoint.
"""

from __future__ import annotations

__all__ = [
    "BOT", "F32", "F64", "INT", "TOP",
    "dtype_join", "make_const", "make_params", "join_vals", "BOTTOM_VAL",
]

BOT = "bot"
F32 = "float32"
F64 = "float64"
INT = "int"
TOP = "top"

#: The no-information value.
BOTTOM_VAL = (BOT, frozenset(), None)


def dtype_join(a: str, b: str) -> str:
    """Join of two lattice constants (see module docstring for the order)."""
    if a == b:
        return a
    if a == BOT:
        return b
    if b == BOT:
        return a
    if {a, b} == {F32, F64}:
        return F64
    return TOP


def make_const(const: str, origin=None):
    """Abstract value for a literal/allocation of known dtype."""
    return (const, frozenset(), origin if const == F64 else None)


def make_params(names):
    """Abstract value that preserves the dtype of the named parameters."""
    return (BOT, frozenset(names), None)


def join_vals(a, b):
    """Join two abstract values; returns ``(joined, upcast_event)``.

    ``upcast_event`` is ``None`` or ``(kind, f64_origin)`` where ``kind``
    is ``"f32"`` (a known-float32 value met a hard float64 — a definite
    upcast) or ``"param"`` (a dtype-preserving parameter path met a hard
    float64 — float32 inputs widen on this path).
    """
    const = dtype_join(a[0], b[0])
    params = a[1] | b[1]
    origin = a[2] if a[2] is not None else b[2]
    event = None
    if F64 in (a[0], b[0]) and a[0] != b[0]:
        f64_side, other = (a, b) if a[0] == F64 else (b, a)
        if other[0] == F32:
            event = ("f32", f64_side[2])
        elif other[1] and other[0] == BOT:
            event = ("param", f64_side[2])
    return (const, params, origin), event
