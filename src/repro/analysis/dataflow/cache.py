"""Content-addressed incremental cache for the lint session.

Each linted file is keyed by the BLAKE2b digest of its source (via
:func:`repro.util.hashing.stable_digest` — the same primitive the plan
store uses, so cache identity is hash-seed and platform independent).  A
file is *dirty* when its digest changed, it is new, or it (transitively)
imports a dirty module — the reverse-import closure is what makes the
inter-procedural rules sound under caching: if a callee's behaviour
changed, every caller that could observe it is re-analysed too.

Clean files contribute their cached findings verbatim and their cached
function summaries (see ``engine.serialize_module``) to the project, so
dirty-file analysis still sees the whole program without re-parsing it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["CacheStats", "IncrementalCache", "compute_dirty", "CACHE_VERSION"]

CACHE_VERSION = 2

_CACHE_FILENAME = "reprolint-cache.json"


@dataclass
class CacheStats:
    """Counters describing one incremental session."""

    hits: int = 0  #: files served entirely from cache
    misses: int = 0  #: files (re-)analysed this session
    dirty: list = field(default_factory=list)  #: displays that were re-analysed

    @property
    def analyzed(self) -> int:
        """Alias for :attr:`misses` — the number of files re-analysed."""
        return self.misses

    def to_dict(self) -> dict:
        """JSON-serialisable counter snapshot."""
        return {"hits": self.hits, "misses": self.misses, "dirty": sorted(self.dirty)}

    def render(self) -> str:
        """One-line human summary for the CLI (printed to stderr)."""
        total = self.hits + self.misses
        return (
            f"incremental: {self.misses}/{total} file"
            f"{'s' if total != 1 else ''} re-analysed, {self.hits} cached"
        )


class IncrementalCache:
    """Load/store of the per-file entry map under a cache directory."""

    def __init__(self, cache_dir):
        self.path = Path(cache_dir) / _CACHE_FILENAME

    def load(self) -> dict:
        """The cached ``display -> entry`` map (empty on miss/corruption)."""
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict) or raw.get("version") != CACHE_VERSION:
            return {}  # stale format: fall back to a cold run
        files = raw.get("files", {})
        return files if isinstance(files, dict) else {}

    def save(self, files: dict) -> None:
        """Persist the entry map (creates the cache directory)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"version": CACHE_VERSION, "files": files}
        self.path.write_text(
            json.dumps(doc, indent=None, sort_keys=True), encoding="utf-8"
        )


def _imports_module(imported: str, module_name: str) -> bool:
    """Whether importing ``imported`` could observe ``module_name``."""
    return (
        imported == module_name
        or imported.startswith(module_name + ".")
        or module_name.startswith(imported + ".")
    )


def compute_dirty(discovered, cached_files) -> set:
    """Displays needing re-analysis: changed/new files + reverse importers.

    ``discovered`` is an iterable of ``(display, module_name, digest)``;
    ``cached_files`` is the loaded entry map (entries carry ``digest``
    and ``imports`` — the dotted names the module imports).
    """
    names = {display: module_name for display, module_name, _ in discovered}
    dirty = {
        display
        for display, _, digest in discovered
        if cached_files.get(display, {}).get("digest") != digest
    }
    changed = True
    while changed:
        changed = False
        dirty_names = {names[d] for d in dirty}
        for display, module_name, _ in discovered:
            if display in dirty:
                continue
            imports = cached_files.get(display, {}).get("imports", ())
            if any(
                _imports_module(imp, dn) for imp in imports for dn in dirty_names
            ):
                dirty.add(display)
                changed = True
    return dirty
