"""The dataflow driver: project assembly, summary fixpoint, reporting.

A :class:`Project` owns the parsed modules, the
:class:`~repro.analysis.dataflow.callgraph.CallGraph` over them, and the
per-function summaries of the three analyses.  Summaries are computed
optimistically (empty/pure/bottom) and iterated to a least fixpoint over
the call graph, so mutual recursion converges; the purity analysis needs
no fixpoint because transitivity is resolved lazily through
:meth:`~repro.analysis.dataflow.purity.PurityAnalysis.impurity_chain`.

Cache-restored modules participate without ASTs: their function lists,
summaries and contract references are deserialised from the incremental
cache, and only parsed modules are (re-)reported on.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding
from repro.analysis.dataflow.callgraph import CallGraph, FunctionInfo, \
    ModuleInfo, module_name_for, parse_module
from repro.analysis.dataflow.cfg import BIND, build_cfg
from repro.analysis.dataflow.dtypes import DtypeAnalysis, DtypeSummary
from repro.analysis.dataflow.purity import (
    CONTRACT_CODE,
    FAULT_CODE,
    PurityAnalysis,
    PuritySummary,
)
from repro.analysis.dataflow.taint import TaintAnalysis, TaintSummary

__all__ = ["Project", "build_project", "DATAFLOW_CODES"]

#: Every code the project rules can emit (the runner uses this to decide
#: whether building a project is needed at all).
DATAFLOW_CODES = ("RD401", "RD402", "RD501", CONTRACT_CODE, FAULT_CODE)

#: Upper bound on summary fixpoint rounds (converges in 2-4 in practice).
_MAX_ROUNDS = 12


class Project:
    """All parsed modules plus cached stubs, ready for analysis."""

    def __init__(self, modules, cached=None):
        self.modules: dict[str, ModuleInfo] = modules
        self.cached = cached or {}  # module name -> serialised module data
        self._install_stubs()
        self.callgraph = CallGraph(self.modules)
        self._summaries: dict[str, dict] = {"taint": {}, "dtype": {}, "purity": {}}
        self._results: dict[str, list] | None = None
        self.taint = TaintAnalysis(self.callgraph, self.get_summary)
        self.dtypes = DtypeAnalysis(self.callgraph, self.get_summary)
        self.purity = PurityAnalysis(self.callgraph, self.get_summary)

    # -- cached-module stubs ------------------------------------------------

    def _install_stubs(self) -> None:
        for name, data in self.cached.items():
            if name in self.modules:
                continue  # parsed version wins
            stub = ModuleInfo(
                name=name,
                display=data.get("display", name),
                module_rel=data.get("module_rel", name),
                tree=None,
            )
            for qualname, fdata in data.get("functions", {}).items():
                stub.functions[qualname] = FunctionInfo(
                    key=f"{name}:{qualname}",
                    module=name,
                    qualname=qualname,
                    node=None,
                    params=list(fdata.get("params", ())),
                    class_name=qualname.split(".")[0] if "." in qualname else None,
                    display=stub.display,
                )
            self.modules[name] = stub

    def get_summary(self, kind: str, key: str):
        """Summary lookup for the analyses (fresh first, then cached)."""
        fresh = self._summaries[kind].get(key)
        if fresh is not None:
            return fresh
        module, _, qualname = key.partition(":")
        fdata = self.cached.get(module, {}).get("functions", {}).get(qualname)
        if fdata is None:
            return None
        loader = {
            "taint": TaintSummary, "dtype": DtypeSummary, "purity": PuritySummary,
        }[kind]
        raw = fdata.get(kind)
        return loader.from_dict(raw) if raw is not None else None

    # -- summaries ----------------------------------------------------------

    def _parsed_functions(self):
        for name in sorted(self.modules):
            module = self.modules[name]
            if module.tree is None:
                continue
            for qualname in sorted(module.functions):
                fn = module.functions[qualname]
                if fn.node is not None:
                    yield fn, module

    def compute_summaries(self) -> None:
        """Run the summary fixpoint over all parsed functions.

        Purity participates in the same fixpoint as taint and dtype:
        its alias tracking reads callee taint passthrough sets, so it
        must be re-run as those stabilise.
        """
        kinds = (("taint", self.taint), ("dtype", self.dtypes),
                 ("purity", self.purity))
        for _ in range(_MAX_ROUNDS):
            changed = False
            for fn, module in self._parsed_functions():
                for kind, analysis in kinds:
                    new = analysis.summarize(fn, module)
                    old = self._summaries[kind].get(fn.key)
                    if old is None or old.key() != new.key():
                        self._summaries[kind][fn.key] = new
                        changed = True
            if not changed:
                break

    # -- reporting ----------------------------------------------------------

    def results(self) -> dict[str, list]:
        """Findings per rule code, over the parsed modules (memoised)."""
        if self._results is not None:
            return self._results
        self.compute_summaries()
        findings: dict[str, list] = {code: [] for code in DATAFLOW_CODES}
        seen: set = set()

        def emitter(module):
            def emit(node, code, message):
                finding = Finding(
                    path=module.display,
                    line=getattr(node, "lineno", 1) or 1,
                    col=getattr(node, "col_offset", 0) or 0,
                    code=code,
                    message=message,
                )
                if finding not in seen:
                    seen.add(finding)
                    findings.setdefault(code, []).append(finding)
            return emit

        for fn, module in self._parsed_functions():
            emit = emitter(module)
            self.taint.report(fn, module, emit)
            self.dtypes.report(fn, module, emit)
        self._report_contract_targets(findings, seen)
        self._report_fault_sites(findings, seen)
        self._results = findings
        return findings

    # -- RD601: contract-target purity --------------------------------------

    def contract_refs(self) -> tuple[set, set]:
        """``(target keys, target method names)`` referenced project-wide."""
        keys: set = set()
        method_names: set = set()
        for module in self.modules.values():
            if module.tree is None:
                data = self.cached.get(module.name, {})
                keys.update(data.get("contract_keys", ()))
                method_names.update(data.get("contract_methods", ()))
                continue
            fresh_keys, fresh_methods = _module_contract_refs(self.callgraph, module)
            keys.update(fresh_keys)
            method_names.update(fresh_methods)
        return keys, method_names

    def _report_contract_targets(self, findings, seen) -> None:
        keys, method_names = self.contract_refs()
        for name in method_names:
            keys.update(self.callgraph.methods_by_name.get(name, ()))
        for key in sorted(keys):
            fn = self.callgraph.functions.get(key)
            if fn is None or fn.node is None:
                continue  # cached module: its findings are cached too
            chain = self.purity.impurity_chain(key)
            if chain is None:
                continue
            finding = Finding(
                path=fn.display,
                line=fn.node.lineno,
                col=fn.node.col_offset,
                code=CONTRACT_CODE,
                message=(
                    f"contract target {fn.qualname}() must be observably pure "
                    f"(REPRO_CONTRACTS toggling must not change results): {chain}"
                ),
            )
            if finding not in seen:
                seen.add(finding)
                findings[CONTRACT_CODE].append(finding)

    # -- RD602: purity before fault points ----------------------------------

    def _report_fault_sites(self, findings, seen) -> None:
        for fn, module in self._parsed_functions():
            fault_calls = _fault_calls(self.callgraph, fn, module)
            if not fault_calls:
                continue
            effects = self.purity.effects_of(fn, module)
            if not effects:
                continue
            # Path-sensitive ordering over the CFG: an effect "precedes"
            # a fault point only if some execution path runs the effect
            # and then reaches the fault — an early-return branch that
            # bumps a counter does not poison a fault probe it can never
            # fall through to.
            cfg = build_cfg(fn.node)
            positions = _position_index(cfg)
            reach = cfg.reachable_from()
            for fault_node, site in fault_calls:
                fault_pos = positions.get(id(fault_node))
                for node, reason in effects:
                    if not _precedes(
                        positions.get(id(node)), fault_pos, reach, node, fault_node
                    ):
                        continue
                    self._emit_fault(findings, seen, fn, node, site, reason)

    def _emit_fault(self, findings, seen, fn, node, site, reason) -> None:
        finding = Finding(
            path=fn.display,
            line=getattr(node, "lineno", 1) or 1,
            col=getattr(node, "col_offset", 0) or 0,
            code=FAULT_CODE,
            message=(
                f"observable side effect before fault_point({site!r}): {reason} "
                "— a fired fault would leave partial state behind"
            ),
        )
        if finding not in seen:
            seen.add(finding)
            findings[FAULT_CODE].append(finding)


def _module_contract_refs(callgraph, module) -> tuple[set, set]:
    """Contract-target refs made by one parsed module's decorations."""
    keys: set = set()
    methods: set = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            if _callable_name(decorator.func) != "checked":
                continue
            for arg in decorator.args:
                if isinstance(arg, (ast.Name, ast.Attribute)):
                    resolved = callgraph.resolve(module, arg)
                    if resolved is not None and resolved[0] == "internal":
                        keys.add(resolved[1])
                elif isinstance(arg, ast.Call):
                    factory = _callable_name(arg.func)
                    if factory in ("validates", "validates_each"):
                        methods.add("validate")
                    elif factory == "invokes" and arg.args:
                        first = arg.args[0]
                        if isinstance(first, ast.Constant) and isinstance(first.value, str):
                            methods.add(first.value)
    return keys, methods


def _position_index(cfg) -> dict:
    """``id(ast node) -> (block id, item index)`` for every CFG node.

    ``For`` headers index only their target/iter (the loop body lives in
    its own blocks); every other item indexes its full subtree.
    """
    positions: dict = {}
    for block in cfg.blocks:
        for index, (kind, node) in enumerate(block.items):
            if kind == BIND:
                subs = [*ast.walk(node.target), *ast.walk(node.iter)]
            else:
                subs = ast.walk(node)
            for sub in subs:
                positions.setdefault(id(sub), (block.id, index))
    return positions


def _precedes(effect_pos, fault_pos, reach, effect_node, fault_node) -> bool:
    """Whether some path runs the effect and then reaches the fault."""
    if effect_pos is None or fault_pos is None:
        # Node not in the CFG (should not happen): lexical fallback.
        return getattr(effect_node, "lineno", 0) < fault_node.lineno
    eblock, eindex = effect_pos
    fblock, findex = fault_pos
    if eblock == fblock:
        # Same block: program order, or a loop carrying the effect back
        # around to the fault on the next iteration.
        return eindex < findex or eblock in reach.get(eblock, ())
    return fblock in reach.get(eblock, ())


def _fault_calls(callgraph, fn, module):
    """``(call node, site name)`` for every ``fault_point`` call in ``fn``."""
    out = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        name = _callable_name(node.func)
        if name != "fault_point":
            continue
        site = "?"
        if node.args and isinstance(node.args[0], ast.Constant):
            site = str(node.args[0].value)
        out.append((node, site))
    return out


def _callable_name(func) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def serialize_module(project: Project, module: ModuleInfo) -> dict:
    """Cacheable form of a parsed module: functions, summaries, refs."""
    functions = {}
    for qualname, fn in module.functions.items():
        entry: dict = {"params": list(fn.params)}
        for kind in ("taint", "dtype", "purity"):
            summary = project.get_summary(kind, fn.key)
            if summary is not None:
                entry[kind] = summary.to_dict()
        functions[qualname] = entry
    keys, methods = _module_contract_refs(project.callgraph, module)
    return {
        "display": module.display,
        "module_rel": module.module_rel,
        "functions": functions,
        "contract_keys": sorted(keys),
        "contract_methods": sorted(methods),
    }


def build_project(contexts, cached=None) -> Project:
    """Assemble a :class:`Project` from runner :class:`FileContext` objects.

    ``contexts`` supply ``display``/``module_rel``/``tree``/``lines``;
    ``cached`` maps module names to serialised module data (stubs for
    files the incremental mode did not re-parse).
    """
    modules: dict[str, ModuleInfo] = {}
    for ctx in contexts:
        name = module_name_for(ctx.module_rel)
        modules[name] = parse_module(
            name, ctx.display, ctx.module_rel, ctx.tree, list(ctx.lines)
        )
    return Project(modules, cached=cached)
