"""SARIF 2.1.0 output for reprolint findings.

:func:`render_sarif` produces a static-analysis interchange document
(`SARIF 2.1.0 <https://docs.oasis-open.org/sarif/sarif/v2.1.0/>`_) that
GitHub code scanning ingests via ``github/codeql-action/upload-sarif``.
Artifact URIs are emitted repo-relative (posix), matching the rest of the
reporters, so annotations land on the right files in pull requests.

``jsonschema`` is not a dependency of this project, so
:func:`validate_sarif` is a hand-rolled structural check against the
subset of the 2.1.0 schema we actually emit: version/runs layout, tool
driver + rule descriptors, result/rule cross-references, locations and
one-based regions, and relative artifact URIs.  It returns problem
strings rather than raising, so tests can assert emptiness and the CLI
can fail loudly if the writer regresses.
"""

from __future__ import annotations

import json

from repro.analysis.core import REGISTRY

__all__ = ["render_sarif", "render_sarif_json", "validate_sarif", "SARIF_VERSION"]

SARIF_VERSION = "2.1.0"

_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

_INFO_URI = "https://github.com/repro/repro/blob/main/docs/ANALYSIS.md"


def render_sarif(findings, *, tool_version: str = "1.0") -> dict:
    """SARIF document (as a dict) for a findings list.

    Rule descriptors cover every code present in the findings — registry
    metadata when available, a bare descriptor otherwise (``RD001`` parse
    errors have no registered rule) — and results reference them through
    ``ruleIndex`` so viewers need no lookups.
    """
    findings = sorted(findings)
    codes = sorted({f.code for f in findings})
    rule_index = {code: i for i, code in enumerate(codes)}
    rules = []
    for code in codes:
        rule = REGISTRY.get(code)
        descriptor = {
            "id": code,
            "name": rule.name if rule is not None else code.lower(),
            "shortDescription": {
                "text": rule.summary if rule is not None else "reprolint finding"
            },
        }
        rules.append(descriptor)
    results = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.code,
                "ruleIndex": rule_index[finding.code],
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": max(1, finding.line),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": tool_version,
                        "informationUri": _INFO_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif_json(findings, **kwargs) -> str:
    """:func:`render_sarif` serialised with a stable layout."""
    return json.dumps(render_sarif(findings, **kwargs), indent=1, sort_keys=False)


def validate_sarif(doc) -> list[str]:
    """Structural 2.1.0 conformance problems with ``doc`` (empty = valid)."""
    problems: list[str] = []

    def check(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not check(isinstance(doc, dict), "document is not an object"):
        return problems
    check(doc.get("version") == SARIF_VERSION, "version must be '2.1.0'")
    check(isinstance(doc.get("$schema", ""), str), "$schema must be a string")
    runs = doc.get("runs")
    if not check(isinstance(runs, list) and runs, "runs must be a non-empty array"):
        return problems
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not check(isinstance(run, dict), f"{where} is not an object"):
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        if not check(isinstance(driver, dict), f"{where}.tool.driver missing"):
            continue
        check(
            isinstance(driver.get("name"), str) and driver["name"],
            f"{where}.tool.driver.name must be a non-empty string",
        )
        rules = driver.get("rules", [])
        check(isinstance(rules, list), f"{where}.tool.driver.rules must be an array")
        rule_ids = []
        for qi, rule in enumerate(rules if isinstance(rules, list) else ()):
            rwhere = f"{where}.tool.driver.rules[{qi}]"
            if check(isinstance(rule, dict), f"{rwhere} is not an object"):
                if check(isinstance(rule.get("id"), str), f"{rwhere}.id must be a string"):
                    rule_ids.append(rule["id"])
                short = rule.get("shortDescription")
                if short is not None:
                    check(
                        isinstance(short, dict) and isinstance(short.get("text"), str),
                        f"{rwhere}.shortDescription.text must be a string",
                    )
        results = run.get("results")
        if not check(isinstance(results, list), f"{where}.results must be an array"):
            continue
        for fi, result in enumerate(results):
            fwhere = f"{where}.results[{fi}]"
            if not check(isinstance(result, dict), f"{fwhere} is not an object"):
                continue
            rule_id = result.get("ruleId")
            check(isinstance(rule_id, str), f"{fwhere}.ruleId must be a string")
            index = result.get("ruleIndex")
            if index is not None:
                ok = (
                    isinstance(index, int)
                    and 0 <= index < len(rule_ids)
                    and rule_ids[index] == rule_id
                )
                check(ok, f"{fwhere}.ruleIndex does not match its ruleId")
            message = result.get("message")
            check(
                isinstance(message, dict) and isinstance(message.get("text"), str),
                f"{fwhere}.message.text must be a string",
            )
            level = result.get("level")
            if level is not None:
                check(
                    level in ("none", "note", "warning", "error"),
                    f"{fwhere}.level must be a SARIF level",
                )
            for li, loc in enumerate(result.get("locations", ())):
                lwhere = f"{fwhere}.locations[{li}]"
                physical = loc.get("physicalLocation") if isinstance(loc, dict) else None
                if not check(isinstance(physical, dict), f"{lwhere}.physicalLocation missing"):
                    continue
                artifact = physical.get("artifactLocation")
                if check(
                    isinstance(artifact, dict) and isinstance(artifact.get("uri"), str),
                    f"{lwhere}.artifactLocation.uri must be a string",
                ):
                    uri = artifact["uri"]
                    check(
                        not uri.startswith("/") and "://" not in uri and "\\" not in uri,
                        f"{lwhere}.artifactLocation.uri must be relative posix: {uri!r}",
                    )
                region = physical.get("region")
                if region is not None and check(
                    isinstance(region, dict), f"{lwhere}.region is not an object"
                ):
                    for field in ("startLine", "startColumn", "endLine", "endColumn"):
                        value = region.get(field)
                        if value is not None:
                            check(
                                isinstance(value, int) and value >= 1,
                                f"{lwhere}.region.{field} must be a positive integer",
                            )
    return problems
