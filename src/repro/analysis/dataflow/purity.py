"""RD6xx — purity / side-effect inference.

Contracts (``@checked`` / ``validates`` / ``invokes``) execute only when
``REPRO_CONTRACTS=1`` and fault probes (``fault_point``) only with an
injector installed; both toggles must never change results.  That holds
exactly when

* **RD601** — every *contract target* (the validator callables a
  ``@checked`` decoration references: named functions, plus ``validate``
  / ``validate_structure``-style methods invoked through the
  ``validates``/``invokes`` factories) is observably pure, and
* **RD602** — no observable side effect happens *before* a
  ``fault_point`` call in its enclosing function: if the fault fires,
  the function must raise without having changed anything a caller can
  see (the chaos suite's "non-degraded runs are bitwise-equal" property
  depends on it).

Effects come in two strengths.  *Unconditional* effects (``global``
declarations, I/O, global RNG state, mutating module-level objects) make
a function impure for every caller.  *Parameter mutations* are
conditional: ``spmm(csr, X, out=...)`` writing into ``out`` is an effect
only for callers that actually pass an observable object there — a
caller that lets ``out`` default to a fresh allocation stays pure.  Call
sites therefore record a *binding* (which caller objects flow into which
callee parameters, tracked through local aliases like
``Y = check_out(out, ...)``), and the transitive closure resolves callee
parameter mutations against it.  Mutating plain locals is never an
effect — that is not observable from outside.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

__all__ = ["PuritySummary", "PurityAnalysis", "CONTRACT_CODE", "FAULT_CODE"]

CONTRACT_CODE = "RD601"
FAULT_CODE = "RD602"

#: Method names that mutate their receiver.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "sort", "reverse",
    "fill", "resize", "put", "setflags", "setfield", "itemset",
    "write", "writelines", "write_text", "write_bytes", "flush",
    "unlink", "mkdir", "rmdir", "touch", "rename", "replace",
}

#: Builtins with observable effects.
_IMPURE_BUILTINS = {"print", "input", "open", "exec", "setattr", "delattr"}

#: ``os.*`` prefixes that are effect-free reads (everything else under
#: ``os`` counts as an effect).
_PURE_OS_PREFIXES = (
    "os.path.", "os.fspath", "os.getcwd", "os.cpu_count", "os.getpid",
    "os.urandom", "os.environ.get",
)

#: External module roots whose calls have observable effects.
_IMPURE_ROOTS = ("subprocess.", "shutil.", "logging.", "socket.", "tempfile.")

#: External calls whose return value may alias an array argument (views
#: and conditional no-copies) — used for alias tracking, not effects.
_VIEW_CALLS = {
    "numpy.asarray", "numpy.ascontiguousarray", "numpy.ravel",
    "numpy.reshape", "numpy.transpose", "numpy.squeeze",
    "numpy.atleast_1d", "numpy.atleast_2d", "numpy.broadcast_to",
}


@dataclass
class PuritySummary:
    """Serialisable purity facts for one function.

    ``reason`` describes the first *unconditional* impurity (empty when
    there is none); ``mutates`` lists parameter mutations (observable
    only to callers passing real objects); ``calls`` records internal
    call sites with their argument bindings for transitive resolution.
    """

    reason: str = ""  #: first unconditional impurity, e.g. ``calls print()``
    line: int = 0  #: line of that impurity (within the function's file)
    mutates: tuple = ()  #: ``(param, reason, line)`` direct param mutations
    calls: tuple = ()  #: ``(callee key, line, binding)`` internal call sites

    @property
    def impure(self) -> bool:
        """Whether a direct unconditional impurity was found."""
        return bool(self.reason)

    def to_dict(self) -> dict:
        """JSON form for the incremental cache."""
        return {
            "reason": self.reason,
            "line": self.line,
            "mutates": [list(m) for m in self.mutates],
            "calls": [
                [key, line, [[p, kind, list(names)] for p, kind, names in binding]]
                for key, line, binding in self.calls
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PuritySummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            reason=data.get("reason", ""),
            line=int(data.get("line", 0)),
            mutates=tuple(
                (str(p), str(r), int(ln)) for p, r, ln in data.get("mutates", ())
            ),
            calls=tuple(
                (
                    str(key),
                    int(line),
                    tuple((str(p), str(kind), tuple(names))
                          for p, kind, names in binding),
                )
                for key, line, binding in data.get("calls", ())
            ),
        )

    def key(self):
        """Hashable identity used for fixpoint change detection."""
        return (self.reason, self.line, self.mutates, self.calls)


class PurityAnalysis:
    """Direct side-effect detection plus transitive closure helpers."""

    def __init__(self, callgraph, get_summary):
        self.callgraph = callgraph
        self.get_summary = get_summary

    def summarize(self, fn, module) -> PuritySummary:
        """Direct effects of ``fn`` plus the bound internal calls it makes."""
        finder = _EffectFinder(self, fn, module)
        finder.run()
        reason, line = ("", 0)
        if finder.effects:
            node, why = finder.effects[0]
            reason, line = why, getattr(node, "lineno", 0)
        mutates = tuple(
            sorted(
                (param, why, getattr(node, "lineno", 0))
                for param, (node, why) in finder.mutations.items()
            )
        )
        calls = tuple(
            sorted(
                (
                    key,
                    getattr(node, "lineno", 0),
                    tuple(sorted(
                        (p, kind, tuple(names))
                        for p, (kind, names) in binding.items()
                    )),
                )
                for node, key, binding in finder.calls
            )
        )
        return PuritySummary(reason=reason, line=line, mutates=mutates, calls=calls)

    def effects_of(self, fn, module):
        """All observable effects of ``fn`` as ``(node, reason)`` pairs.

        Internal call sites are resolved against callee summaries: an
        unconditionally impure callee is an effect outright; a callee
        that (transitively) mutates a parameter is an effect only when
        this site's binding passes an observable object into it.
        """
        finder = _EffectFinder(self, fn, module)
        finder.run()
        effects = list(finder.effects)
        for param in sorted(finder.mutations):
            node, reason = finder.mutations[param]
            effects.append((node, reason))
        for node, key, binding in finder.calls:
            if key.endswith(":fault_point"):
                continue
            chain = self.unconditional_chain(key)
            if chain is not None:
                effects.append((node, f"calls impure {chain}"))
                continue
            callee_muts = self.mutated_params(key)
            for cparam in sorted(callee_muts):
                bound = binding.get(cparam)
                if bound is None:
                    continue
                creason, _ = callee_muts[cparam]
                kind, names = bound
                if kind == "params":
                    named = ", ".join(f"'{q}'" for q in names)
                    effects.append(
                        (node, f"passes {named} to {_short(key)}() which {creason}")
                    )
                else:
                    effects.append(
                        (node, f"passes module-level '{names[0]}' to "
                               f"{_short(key)}() which {creason}")
                    )
        return effects

    def mutated_params(self, key, *, _seen=None) -> dict:
        """``param -> (reason, line)`` that ``key`` (transitively) mutates.

        A callee's parameter mutation propagates to a caller parameter
        through the call-site binding; cycles resolve optimistically.
        """
        _seen = _seen if _seen is not None else set()
        if key in _seen:
            return {}
        _seen.add(key)
        summary = self.get_summary("purity", key)
        if summary is None:
            return {}
        out = {param: (reason, line) for param, reason, line in summary.mutates}
        for callee, line, binding in summary.calls:
            callee_muts = self.mutated_params(callee, _seen=_seen)
            if not callee_muts:
                continue
            bound = {p: (kind, names) for p, kind, names in binding}
            for cparam, (creason, _) in callee_muts.items():
                entry = bound.get(cparam)
                if entry is None or entry[0] != "params":
                    continue
                for q in entry[1]:
                    out.setdefault(
                        q,
                        (f"passes '{q}' to {_short(callee)}() which {creason}",
                         line),
                    )
        return out

    def unconditional_chain(self, key, *, _seen=None) -> str | None:
        """Why ``key`` is impure for *every* caller, or ``None``.

        Covers direct unconditional effects, transitively impure
        callees, and module-level objects passed into callee parameters
        that get mutated.  Cycles are treated as pure (optimistic —
        consistent with a least fixpoint).
        """
        _seen = _seen if _seen is not None else set()
        if key in _seen:
            return None
        _seen.add(key)
        summary = self.get_summary("purity", key)
        if summary is None:
            return None
        if summary.impure:
            return f"{_short(key)}() {summary.reason} (line {summary.line})"
        for callee, line, binding in summary.calls:
            chain = self.unconditional_chain(callee, _seen=_seen)
            if chain is not None:
                return f"{_short(key)}() calls impure {chain}"
            callee_muts = self.mutated_params(callee)
            for cparam, kind, names in binding:
                if kind == "global" and cparam in callee_muts:
                    creason, _ = callee_muts[cparam]
                    return (
                        f"{_short(key)}() passes module-level '{names[0]}' to "
                        f"{_short(callee)}() which {creason} (line {line})"
                    )
        return None

    def impurity_chain(self, key) -> str | None:
        """Why calling ``key`` with real arguments is observable, or ``None``.

        Used for contract targets, which always receive live objects: an
        unconditional impurity *or* any (transitive) parameter mutation
        disqualifies.
        """
        chain = self.unconditional_chain(key)
        if chain is not None:
            return chain
        muts = self.mutated_params(key)
        if muts:
            param = sorted(muts)[0]
            reason, line = muts[param]
            return f"{_short(key)}() {reason} (line {line})"
        return None


class _EffectFinder:
    """Single-pass walker collecting a function's direct effects."""

    def __init__(self, analysis, fn, module):
        self.analysis = analysis
        self.fn = fn
        self.module = module
        self.params = set(fn.params)
        self.effects: list = []  # (node, reason) — unconditional
        self.mutations: dict = {}  # param -> (node, reason)
        self.calls: list = []  # (node, callee key, binding dict)

    def run(self) -> None:
        for stmt in self.fn.node.body:
            self.visit(stmt)

    def visit(self, node) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions have their own summaries
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            names = ", ".join(node.names)
            self.effects.append((node, f"declares global/nonlocal {names}"))
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                self.check_store(target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self.check_store(target)
        elif isinstance(node, ast.Call):
            self.check_call(node)
        for child in ast.iter_child_nodes(node):
            self.visit(child)

    def mutate(self, node, param, reason) -> None:
        """Record a (conditional) parameter mutation, first site wins."""
        self.mutations.setdefault(param, (node, reason))

    def check_store(self, target) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.check_store(elt)
            return
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return  # plain local rebinding is unobservable
        root = _root_name(target)
        if root in self.params:
            self.mutate(target, root, f"mutates parameter '{root}'")
        elif root is not None:
            for param in sorted(self.param_derived().get(root, ())):
                self.mutate(
                    target, param,
                    f"mutates parameter '{param}' (through local '{root}')",
                )

    def write_target(self, node, expr, how) -> None:
        """An argument position that the callee writes into (``out=``)."""
        root = _root_name(expr) if expr is not None else None
        if root is None:
            return
        if root in self.params:
            self.mutate(node, root, f"writes into parameter '{root}' {how}")
        else:
            for param in sorted(self.param_derived().get(root, ())):
                self.mutate(
                    node, param,
                    f"writes into parameter '{param}' {how} "
                    f"(through local '{root}')",
                )

    def check_call(self, node: ast.Call) -> None:
        resolved = self.analysis.callgraph.resolve(
            self.module, node.func, class_name=self.fn.class_name
        )
        # out=-style keyword writes into a parameter (or an alias of one).
        for kw in node.keywords:
            if kw.arg == "out":
                self.write_target(node, kw.value, "via out=")
        if resolved is None:
            # Mutating method on a parameter (param.append, out.fill, ...).
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                root = _root_name(func.value)
                if root in self.params:
                    self.mutate(
                        node, root,
                        f"mutates parameter '{root}' via .{func.attr}()",
                    )
                    return
                derived = self.param_derived().get(root, ()) if root else ()
                if derived:
                    for param in sorted(derived):
                        self.mutate(
                            node, param,
                            f"mutates parameter '{param}' via .{func.attr}() "
                            f"on local '{root}'",
                        )
                elif root is None or root not in self.locals_guess():
                    self.effects.append(
                        (node, f"calls .{func.attr}() on a non-local object")
                    )
            return
        tag, name = resolved
        if tag == "builtin":
            if name in _IMPURE_BUILTINS:
                self.effects.append((node, f"calls {name}()"))
            return
        if tag == "external":
            if name == "numpy.copyto":
                self.write_target(
                    node, node.args[0] if node.args else None, "via np.copyto"
                )
                return
            if name.startswith("os.") and not name.startswith(_PURE_OS_PREFIXES):
                self.effects.append((node, f"calls {name}()"))
            elif name.startswith(_IMPURE_ROOTS):
                self.effects.append((node, f"calls {name}()"))
            elif name.startswith("random.") or (
                name.startswith("numpy.random.")
                and name != "numpy.random.default_rng"
            ):
                self.effects.append((node, f"calls {name}() (global RNG state)"))
            elif name in ("time.sleep", "sys.exit"):
                self.effects.append((node, f"calls {name}()"))
            return
        if tag == "internal":
            self.calls.append((node, name, self.bind_call(node, name)))

    def bind_call(self, node: ast.Call, key: str) -> dict:
        """Map callee parameter names to the caller objects passed there."""
        callee = self.analysis.callgraph.functions.get(key)
        params = list(callee.params) if callee is not None else []
        binding: dict = {}
        offset = 0
        if (
            isinstance(node.func, ast.Attribute)
            and params
            and params[0] in ("self", "cls")
        ):
            offset = 1
            bound = self.classify(node.func.value)
            if bound is not None:
                binding[params[0]] = bound
        for index, arg in enumerate(node.args):
            pos = index + offset
            if pos >= len(params):
                break
            bound = self.classify(arg)
            if bound is not None:
                binding[params[pos]] = bound
        for kw in node.keywords:
            if kw.arg is None:
                continue
            bound = self.classify(kw.value)
            if bound is not None:
                binding[kw.arg] = bound
        return binding

    def classify(self, expr):
        """Binding class of an argument expression.

        ``("params", names)`` — the object may be (an alias of) these
        caller parameters; ``("global", (name,))`` — a module-level
        object; ``None`` — fresh/local, unobservable if mutated.
        """
        root = _root_name(expr)
        if root is None:
            return None
        if root in self.params:
            return ("params", (root,))
        derived = self.param_derived().get(root)
        if derived:
            return ("params", tuple(sorted(derived)))
        if root in self.locals_guess():
            return None
        return ("global", (root,))

    # -- alias tracking -----------------------------------------------------

    def param_derived(self) -> dict:
        """``local -> set of params`` whose object the local may alias.

        A small assignment fixpoint: direct name/attribute/subscript
        chains alias their root; calls alias the arguments their callee
        passes through (taint ``passthrough``, or every argument while
        the callee summary is still unknown); known NumPy view functions
        alias their array argument.
        """
        if hasattr(self, "_derived"):
            return self._derived
        rules = []
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                roots = None
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in self.params:
                        if roots is None:
                            roots = self.alias_roots(node.value)
                        rules.append((target.id, roots))
            elif (
                isinstance(node, ast.AnnAssign)
                and node.value is not None
                and isinstance(node.target, ast.Name)
                and node.target.id not in self.params
            ):
                rules.append((node.target.id, self.alias_roots(node.value)))
        derived: dict = {}
        changed = True
        while changed:
            changed = False
            for target, roots in rules:
                sources = set()
                for root in roots:
                    if root in self.params:
                        sources.add(root)
                    sources |= derived.get(root, set())
                if not sources <= derived.get(target, set()):
                    derived[target] = derived.get(target, set()) | sources
                    changed = True
        self._derived = derived
        return derived

    def alias_roots(self, expr) -> set:
        """Root names whose object the expression's value may alias."""
        if isinstance(expr, ast.Subscript):
            # Slice indexing returns a view; fancy (array) indexing
            # copies.  ``X[cols]`` is a gather, not an alias of ``X``.
            if _is_slice_index(expr.slice):
                return self.alias_roots(expr.value)
            return set()
        if isinstance(expr, (ast.Name, ast.Attribute, ast.Starred)):
            root = _root_name(expr)
            return {root} if root is not None else set()
        if isinstance(expr, ast.IfExp):
            return self.alias_roots(expr.body) | self.alias_roots(expr.orelse)
        if not isinstance(expr, ast.Call):
            return set()  # literals/arithmetic build fresh objects
        resolved = self.analysis.callgraph.resolve(
            self.module, expr.func, class_name=self.fn.class_name
        )
        if resolved is not None and resolved[0] == "external":
            if resolved[1] in _VIEW_CALLS:
                out = set()
                for arg in expr.args:
                    out |= self.alias_roots(arg)
                return out
            return set()  # allocators and scalar helpers return fresh objects
        if resolved is not None and resolved[0] == "internal":
            key = resolved[1]
            summary = self.analysis.get_summary("taint", key)
            callee = self.analysis.callgraph.functions.get(key)
            params = list(callee.params) if callee is not None else []
            out = set()
            if summary is None:
                for arg in expr.args:
                    out |= self.alias_roots(arg)
                for kw in expr.keywords:
                    out |= self.alias_roots(kw.value)
                return out
            offset = 0
            if (
                isinstance(expr.func, ast.Attribute)
                and params
                and params[0] in ("self", "cls")
            ):
                offset = 1
                if params[0] in summary.passthrough:
                    out |= self.alias_roots(expr.func.value)
            for index, arg in enumerate(expr.args):
                pos = index + offset
                if pos < len(params) and params[pos] in summary.passthrough:
                    out |= self.alias_roots(arg)
            for kw in expr.keywords:
                if kw.arg in summary.passthrough:
                    out |= self.alias_roots(kw.value)
            return out
        if resolved is None and isinstance(expr.func, ast.Attribute):
            # x.reshape(...) and friends: the result may view the receiver.
            return self.alias_roots(expr.func.value)
        return set()

    def locals_guess(self) -> set:
        """Names assigned anywhere in the function (cheap local check)."""
        if not hasattr(self, "_locals"):
            names: set = set()
            for node in ast.walk(self.fn.node):
                if isinstance(node, ast.Assign):
                    for t in node.targets:
                        _collect_target_names(t, names)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    _collect_target_names(node.target, names)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    _collect_target_names(node.target, names)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        if item.optional_vars is not None:
                            _collect_target_names(item.optional_vars, names)
                elif isinstance(node, ast.comprehension):
                    _collect_target_names(node.target, names)
            self._locals = names
        return self._locals


def _is_slice_index(index) -> bool:
    """Whether a subscript index produces a view (contains a slice)."""
    if isinstance(index, ast.Slice):
        return True
    if isinstance(index, ast.Tuple):
        return any(isinstance(elt, ast.Slice) for elt in index.elts)
    return False


def _collect_target_names(target, names: set) -> None:
    """Bare names bound by an assignment target (tuples recurse)."""
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _collect_target_names(elt, names)
    elif isinstance(target, ast.Starred):
        _collect_target_names(target.value, names)


def _root_name(node) -> str | None:
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _short(key: str) -> str:
    return key.split(":", 1)[1] if ":" in key else key
