"""RD4xx — taint analysis for nondeterminism.

Sources are the expressions whose value differs between runs or machines:
clock reads, unseeded RNG, ``os.urandom``/``uuid``, ``id()``, and
set/dict iteration order (dict *insertion* order is deterministic per
run, but content-addressed fingerprints must be stable across
construction paths, so unsorted iteration feeding a digest is a bug).

Taint propagates through assignments, arithmetic, f-strings, container
writes (storing into ``d[k]`` taints ``d``), and — the point of this
module — across function boundaries: every function gets a
:class:`TaintSummary` (intrinsic taint of its return value, parameters
that pass through to the return, parameters that reach a sink inside),
computed to a fixpoint over the call graph.

Sinks:

* **RD401** — content hashes and plan fingerprints: anything resolved
  into :mod:`repro.util.hashing` or :mod:`repro.planstore.fingerprint`,
  plus ``hashlib``/``zlib`` digest constructors.  A nondeterministic
  value here silently changes cache keys between runs.
* **RD402** — generated kernels: ``exec``/``compile``, calls into the
  codegen backend's render path, and values *returned* from
  ``repro.kernels`` code (the kernel output itself).

``sorted(...)`` and ``np.sort`` are order sanitisers: they strip the
iteration-order labels (but not value taint like clock reads).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.dataflow.cfg import BIND, TEST, build_cfg, solve_forward

__all__ = ["TaintSummary", "TaintAnalysis", "HASH_SINK_CODE", "KERNEL_SINK_CODE"]

HASH_SINK_CODE = "RD401"
KERNEL_SINK_CODE = "RD402"

#: External callables whose return value is nondeterministic.
_SOURCE_CALLS = {
    "time.time": "time.time()", "time.time_ns": "time.time_ns()",
    "time.monotonic": "time.monotonic()", "time.monotonic_ns": "time.monotonic_ns()",
    "time.perf_counter": "time.perf_counter()",
    "time.perf_counter_ns": "time.perf_counter_ns()",
    "time.process_time": "time.process_time()",
    "time.process_time_ns": "time.process_time_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.datetime.today": "datetime.today()",
    "os.urandom": "os.urandom()",
    "uuid.uuid1": "uuid.uuid1()", "uuid.uuid4": "uuid.uuid4()",
    "secrets.token_bytes": "secrets.token_bytes()",
    "secrets.token_hex": "secrets.token_hex()",
}

#: ``random.<fn>`` module-level calls all read hidden global state.
_RANDOM_MODULES = ("random.", "numpy.random.")

#: Order-dependence labels stripped by ``sorted(...)``.
_ORDER_LABELS = {"set iteration order", "dict iteration order"}

#: Sink tables: resolved internal module -> (code, description).
_SINK_MODULES = {
    "repro.util.hashing": (HASH_SINK_CODE, "content hash (repro.util.hashing)"),
    "repro.planstore.fingerprint": (HASH_SINK_CODE, "plan fingerprint"),
    "repro.kernels.backends.codegen_backend": (
        KERNEL_SINK_CODE, "codegen kernel template"
    ),
}

#: External digest constructors treated as hash sinks.
_HASH_CALLS = {
    "hashlib.md5", "hashlib.sha1", "hashlib.sha256", "hashlib.sha512",
    "hashlib.blake2b", "hashlib.blake2s", "hashlib.new",
    "zlib.crc32", "zlib.adler32",
}

#: Builtins feeding generated code.
_CODEGEN_BUILTINS = {"exec", "compile", "eval"}


@dataclass
class TaintSummary:
    """Serialisable inter-procedural taint facts for one function."""

    intrinsic: frozenset = frozenset()  #: labels always tainting the return
    passthrough: frozenset = frozenset()  #: params whose taint reaches the return
    param_sinks: dict = field(default_factory=dict)  #: param -> (code, sink desc)

    def to_dict(self) -> dict:
        """JSON form for the incremental cache."""
        return {
            "intrinsic": sorted(self.intrinsic),
            "passthrough": sorted(self.passthrough),
            "param_sinks": {k: list(v) for k, v in sorted(self.param_sinks.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TaintSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            intrinsic=frozenset(data.get("intrinsic", ())),
            passthrough=frozenset(data.get("passthrough", ())),
            param_sinks={
                k: tuple(v) for k, v in data.get("param_sinks", {}).items()
            },
        )

    def key(self):
        """Hashable identity used for fixpoint change detection."""
        return (self.intrinsic, self.passthrough, tuple(sorted(self.param_sinks.items())))


def _label(item) -> bool:
    return item[0] == "src"


class TaintAnalysis:
    """Summary-based taint propagation over a project call graph.

    Taint items are ``("src", label)`` for real sources and
    ``("param", name)`` for symbolic parameter taint (used while
    summarising).  ``get_summary(key)`` supplies callee summaries —
    freshly computed or restored from the incremental cache.
    """

    def __init__(self, callgraph, get_summary):
        self.callgraph = callgraph
        self.get_summary = get_summary

    # -- driver entry points ------------------------------------------------

    def summarize(self, fn, module) -> TaintSummary:
        """Compute ``fn``'s summary using current callee summaries."""
        state = _FnState(self, fn, module, emit=None)
        state.run()
        return state.summary()

    def report(self, fn, module, emit) -> None:
        """Re-run ``fn`` emitting sink findings through ``emit``."""
        state = _FnState(self, fn, module, emit=emit)
        state.run()
        state.report_kernel_returns()


class _FnState:
    """One function's CFG evaluation (shared by summary and report modes)."""

    def __init__(self, analysis, fn, module, emit):
        self.analysis = analysis
        self.fn = fn
        self.module = module
        self.emit = emit
        self.return_taint: frozenset = frozenset()
        self.param_sinks: dict = {}
        self.tainted_returns: list = []  # (node, labels) for RD402 on kernels

    def run(self) -> None:
        cfg = build_cfg(self.fn.node)
        init = {p: frozenset({("param", p)}) for p in self.fn.params}

        def transfer(kind, node, env):
            return self.transfer(kind, node, dict(env))

        def join(a, b, succ):
            merged = dict(a)
            for var, taint in b.items():
                merged[var] = merged.get(var, frozenset()) | taint
            return merged

        solve_forward(cfg, init, transfer, join)

    def summary(self) -> TaintSummary:
        intrinsic = frozenset(i[1] for i in self.return_taint if _label(i))
        passthrough = frozenset(i[1] for i in self.return_taint if i[0] == "param")
        return TaintSummary(intrinsic, passthrough, dict(self.param_sinks))

    # -- statement transfer -------------------------------------------------

    def transfer(self, kind, node, env):
        if kind == TEST:
            self.eval(node, env)
            return env
        if kind == BIND:  # For header: target bound from iter
            taint = self.eval(node.iter, env) | self.iteration_order_taint(node.iter)
            self.bind(node.target, taint, env)
            return env
        stmt = node
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.bind(target, taint, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.bind(stmt.target, self.eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value, env)
            root = _root_name(stmt.target)
            if root is not None:
                env[root] = env.get(root, frozenset()) | taint
        elif isinstance(stmt, ast.Return):
            taint = frozenset()
            if stmt.value is not None:
                taint = self.eval(stmt.value, env)
            self.return_taint |= taint
            labels = frozenset(i[1] for i in taint if _label(i))
            if labels:
                self.tainted_returns.append((stmt, labels))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
        return env

    def bind(self, target, taint, env):
        if isinstance(target, ast.Name):
            env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind(elt, taint, env)
        else:
            # Container/attribute write: the *root* accumulates the taint
            # (storing a timestamp into d["t"] taints d).
            root = _root_name(target)
            if root is not None:
                env[root] = env.get(root, frozenset()) | taint

    # -- expression evaluation ----------------------------------------------

    def eval(self, node, env) -> frozenset:
        if isinstance(node, ast.Name):
            return env.get(node.id, frozenset())
        if isinstance(node, ast.Constant):
            return frozenset()
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = frozenset()
            for elt in node.elts:
                out |= self.eval(elt, env)
            return out
        if isinstance(node, ast.Dict):
            out = frozenset()
            for key in node.keys:
                if key is not None:
                    out |= self.eval(key, env)
            for value in node.values:
                out |= self.eval(value, env)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            out = frozenset()
            for gen in node.generators:
                out |= self.eval(gen.iter, env) | self.iteration_order_taint(gen.iter)
                self.bind(gen.target, out, env)
            if isinstance(node, ast.DictComp):
                out |= self.eval(node.key, env) | self.eval(node.value, env)
            else:
                out |= self.eval(node.elt, env)
            return out
        # Generic: union over child expressions (BinOp, BoolOp, Compare,
        # Subscript, Attribute, JoinedStr, IfExp, Starred, UnaryOp, ...).
        out = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.eval(child, env)
        return out

    def eval_call(self, node, env) -> frozenset:
        resolved = self.analysis.callgraph.resolve(
            self.module, node.func, class_name=self.fn.class_name
        )
        arg_taints = [self.eval(a, env) for a in node.args]
        kw_taints = {k.arg: self.eval(k.value, env) for k in node.keywords}
        all_args = frozenset().union(frozenset(), *arg_taints, *kw_taints.values())
        func_taint = self.eval(node.func, env)  # higher-order values stay sticky

        if resolved is not None and resolved[0] == "builtin":
            name = resolved[1]
            if name == "id":
                return frozenset({("src", "id()")})
            if name == "sorted":
                return frozenset(
                    i for i in all_args if not (_label(i) and i[1] in _ORDER_LABELS)
                )
            if name in _CODEGEN_BUILTINS:
                self.sink_check(node, arg_taints, kw_taints,
                                KERNEL_SINK_CODE, f"{name}() of generated code")
                return all_args
            return all_args | func_taint

        if resolved is not None and resolved[0] == "external":
            dotted = resolved[1]
            # A sink module may resolve as external when it is not part of
            # the current project (e.g. single-file lint of a caller).
            mod, _, attr = dotted.rpartition(".")
            sink = _SINK_MODULES.get(mod)
            if sink is not None:
                self.sink_check(node, arg_taints, kw_taints, sink[0],
                                f"{sink[1]} via {attr}()")
            if dotted in _SOURCE_CALLS:
                return all_args | {("src", _SOURCE_CALLS[dotted])}
            if dotted == "numpy.random.default_rng":
                seedless = not node.args and not node.keywords
                none_seed = (
                    len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if seedless or none_seed:
                    return frozenset({("src", "unseeded np.random.default_rng()")})
                return all_args
            if dotted.startswith(_RANDOM_MODULES):
                return all_args | {("src", f"{dotted}() (global-state RNG)")}
            if dotted in ("numpy.sort", "numpy.argsort"):
                return frozenset(
                    i for i in all_args if not (_label(i) and i[1] in _ORDER_LABELS)
                )
            if dotted in _HASH_CALLS:
                self.sink_check(node, arg_taints, kw_taints,
                                HASH_SINK_CODE, f"{dotted}() digest")
                # The constructed digest object is itself a sink: feeding
                # it later via .update() must also be caught.
                return all_args | {("hashobj", dotted)}
            return all_args

        if resolved is not None and resolved[0] == "internal":
            key = resolved[1]
            sink = _SINK_MODULES.get(key.split(":", 1)[0])
            if sink is not None:
                self.sink_check(node, arg_taints, kw_taints, sink[0],
                                f"{sink[1]} via {key.split(':', 1)[1]}()")
            summary = self.analysis.get_summary("taint", key)
            if summary is None:
                return all_args
            out = frozenset(("src", label) for label in summary.intrinsic)
            callee = self.analysis.callgraph.functions.get(key)
            params = callee.params if callee is not None else []
            for index, taint in enumerate(arg_taints):
                name = params[index] if index < len(params) else None
                if name is not None and name in summary.passthrough:
                    out |= taint
                if name is not None and name in summary.param_sinks:
                    self.flow_into_callee(node, taint, key, summary.param_sinks[name])
            for kwname, taint in kw_taints.items():
                if kwname in summary.passthrough:
                    out |= taint
                if kwname in summary.param_sinks:
                    self.flow_into_callee(node, taint, key, summary.param_sinks[kwname])
            return out

        # Unresolvable callee (method on arbitrary object, lambda): taint
        # is sticky through the call.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "update":
            obj_taint = self.eval(node.func.value, env)
            hashed = sorted(i[1] for i in obj_taint if i[0] == "hashobj")
            if hashed:
                self.sink_check(node, arg_taints, kw_taints,
                                HASH_SINK_CODE, f"{hashed[0]}().update() digest")
        return all_args | func_taint

    # -- sources and sinks --------------------------------------------------

    def iteration_order_taint(self, iterable) -> frozenset:
        """Order taint for ``for``-loop / comprehension iterables."""
        node = iterable
        if isinstance(node, (ast.Set, ast.SetComp)):
            return frozenset({("src", "set iteration order")})
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return frozenset({("src", "set iteration order")})
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("keys", "values", "items")
            ):
                return frozenset({("src", "dict iteration order")})
        return frozenset()

    def sink_check(self, node, arg_taints, kw_taints, code, sink_desc) -> None:
        """Record findings/summary facts for taint reaching a sink call."""
        items = frozenset().union(frozenset(), *arg_taints, *kw_taints.values())
        labels = sorted(i[1] for i in items if _label(i))
        params = sorted(i[1] for i in items if i[0] == "param")
        if labels and self.emit is not None:
            self.emit(
                node, code,
                f"nondeterministic value ({', '.join(labels)}) flows into "
                f"{sink_desc}",
            )
        for name in params:
            self.param_sinks.setdefault(name, (code, sink_desc))

    def flow_into_callee(self, node, taint, key, sink) -> None:
        """An argument's taint reaches a sink *inside* the callee."""
        code, sink_desc = sink
        labels = sorted(i[1] for i in taint if _label(i))
        params = sorted(i[1] for i in taint if i[0] == "param")
        callee = key.split(":", 1)[1]
        if labels and self.emit is not None:
            self.emit(
                node, code,
                f"nondeterministic value ({', '.join(labels)}) passed to "
                f"{callee}() reaches {sink_desc}",
            )
        for name in params:
            self.param_sinks.setdefault(name, (code, f"{sink_desc} (via {callee}())"))

    def report_kernel_returns(self) -> None:
        """RD402: tainted values returned from kernel-package code.

        Dict iteration order is excluded here: insertion order is
        deterministic within a run, so it cannot make a kernel's output
        differ between two identical runs.  (It still matters for
        fingerprints, where RD401 keeps the label — two equivalent plans
        built in different orders must hash equal.)
        """
        if self.emit is None or not self.module.module_rel.startswith("repro/kernels"):
            return
        for node, labels in self.tainted_returns:
            labels = labels - {"dict iteration order"}
            if not labels:
                continue
            self.emit(
                node, KERNEL_SINK_CODE,
                f"kernel output depends on nondeterministic value "
                f"({', '.join(sorted(labels))})",
            )


def _root_name(node) -> str | None:
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None
