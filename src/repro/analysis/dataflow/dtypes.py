"""RD5xx — dtype-propagation lattice analysis.

Generalises the intra-function RD204 (dtype-less allocations in backend
code) to flows *across* call boundaries: every function gets a
:class:`DtypeSummary` describing its return dtype as a lattice constant
joined with the dtypes of selected parameters, and callers evaluate that
summary against their concrete arguments.

RD501 fires at a *join point* where

* a known-``float32`` value meets a hard ``float64`` (a definite silent
  upcast: the result doubles bandwidth and breaks float32 bitwise
  reproducibility), or
* a dtype-*preserving* parameter path meets a hard ``float64`` (the
  function widens float32 inputs on that path — e.g. an empty-result
  branch allocating ``np.empty(0, dtype=np.float64)`` while the other
  branch slices ``csr.values``).

Hard ``float64`` values come from explicit ``dtype=np.float64`` and from
the NumPy constructors that default to it (``np.zeros`` et al. without a
``dtype``).  Python float literals are *weak* (NumPy value-based casting
keeps float32 arrays float32), so they never seed an upcast.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.dataflow.cfg import BIND, TEST, build_cfg, solve_forward
from repro.analysis.dataflow.lattice import (
    BOT, BOTTOM_VAL, F32, F64, INT, TOP, dtype_join, join_vals, make_const,
    make_params,
)

__all__ = ["DtypeSummary", "DtypeAnalysis", "UPCAST_CODE"]

UPCAST_CODE = "RD501"

#: NumPy constructors that default to float64 when ``dtype`` is omitted.
_F64_DEFAULT_ALLOCATORS = {
    "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full", "numpy.eye",
    "numpy.identity", "numpy.linspace",
}

#: NumPy functions that preserve/join the dtypes of their array arguments.
_DTYPE_JOINING = {
    "numpy.add", "numpy.subtract", "numpy.multiply", "numpy.divide",
    "numpy.minimum", "numpy.maximum", "numpy.dot", "numpy.matmul",
    "numpy.concatenate", "numpy.stack", "numpy.vstack", "numpy.hstack",
    "numpy.where", "numpy.take", "numpy.abs", "numpy.sum", "numpy.cumsum",
    "numpy.ascontiguousarray", "numpy.asarray", "numpy.array",
    "numpy.copy", "numpy.ravel", "numpy.reshape", "numpy.transpose",
    "numpy.zeros_like", "numpy.ones_like", "numpy.empty_like",
    "numpy.full_like",
}

#: Positional index of the ``dtype`` parameter for the f64-defaulting
#: allocators (so ``np.ones(shape, np.bool_)`` is not read as dtype-less).
_POSITIONAL_DTYPE = {
    "numpy.zeros": 1, "numpy.ones": 1, "numpy.empty": 1,
    "numpy.identity": 1, "numpy.full": 2, "numpy.eye": 3,
}

#: dtype-expression spellings -> lattice constants.
_DTYPE_NAMES = {
    "float32": F32, "single": F32,
    "float64": F64, "double": F64, "float_": F64,
    "int8": INT, "int16": INT, "int32": INT, "int64": INT,
    "uint8": INT, "uint16": INT, "uint32": INT, "uint64": INT,
    "intp": INT, "int_": INT, "bool_": INT, "bool": INT, "int": INT,
    "float": F64,
}


@dataclass
class DtypeSummary:
    """Serialisable return-dtype summary: ``const ⊔ join(passthrough args)``."""

    const: str = BOT  #: lattice constant contributed by allocations/literals
    passthrough: frozenset = frozenset()  #: params whose dtype reaches the return
    origin: str = ""  #: description of the hard-float64 origin (if const is f64)
    origin_implicit: bool = False  #: float64 by *default* rather than request

    def to_dict(self) -> dict:
        """JSON form for the incremental cache."""
        return {
            "const": self.const,
            "passthrough": sorted(self.passthrough),
            "origin": self.origin,
            "origin_implicit": self.origin_implicit,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DtypeSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            const=data.get("const", BOT),
            passthrough=frozenset(data.get("passthrough", ())),
            origin=data.get("origin", ""),
            origin_implicit=bool(data.get("origin_implicit", False)),
        )

    def key(self):
        """Hashable identity used for fixpoint change detection."""
        return (self.const, self.passthrough, self.origin, self.origin_implicit)


class DtypeAnalysis:
    """Dtype lattice propagation with cross-call summaries."""

    def __init__(self, callgraph, get_summary):
        self.callgraph = callgraph
        self.get_summary = get_summary

    def summarize(self, fn, module) -> DtypeSummary:
        """Compute ``fn``'s return-dtype summary."""
        state = _FnState(self, fn, module, emit=None)
        state.run()
        return state.summary()

    def report(self, fn, module, emit) -> None:
        """Re-run ``fn`` emitting RD501 upcast findings through ``emit``."""
        state = _FnState(self, fn, module, emit=emit)
        state.run()


class _FnState:
    def __init__(self, analysis, fn, module, emit):
        self.analysis = analysis
        self.fn = fn
        self.module = module
        self.emit = emit
        self.return_val = BOTTOM_VAL
        self.seen_events: set = set()

    def run(self) -> None:
        cfg = build_cfg(self.fn.node)
        init = {p: make_params([p]) for p in self.fn.params}

        def transfer(kind, node, env):
            return self.transfer(kind, node, dict(env))

        def join(a, b, succ):
            # Merges into the exit block combine environments from paths
            # that already returned/raised — those values are dead, so
            # they never witness a real upcast.
            live = succ != cfg.exit
            merged = dict(a)
            for var, val in b.items():
                if var in merged:
                    joined, event = join_vals(merged[var], val)
                    merged[var] = joined
                    if live:
                        self.record(event, node=None)
                else:
                    merged[var] = val
            return merged

        solve_forward(cfg, init, transfer, join)

    def summary(self) -> DtypeSummary:
        const, params, origin = self.return_val
        desc = origin[2] if origin is not None else ""
        implicit = bool(origin[3]) if origin is not None else False
        return DtypeSummary(
            const=const, passthrough=params, origin=desc, origin_implicit=implicit
        )

    def record(self, event, node) -> None:
        """Emit an upcast event (reporting mode only), deduplicated.

        Reporting policy: a ``"f32"`` event (known float32 meets hard
        float64) always reports; a ``"param"`` event (dtype-preserving
        path widens) reports only when the float64 side is *implicit*
        (allocator default) or the event is a control-flow merge
        (``node is None`` — two branches of one function disagree, like
        an empty-result branch allocating float64).  Explicitly requested
        float64 meeting a parameter at an expression is an announced
        coercion (``check_dense``-style normalisation), not a silent one.
        """
        if event is None or self.emit is None:
            return
        kind, origin = event
        if kind == "param" and node is not None:
            if origin is None or not origin[3]:
                return
        anchor = node if node is not None else _OriginAnchor(origin)
        if anchor is None or getattr(anchor, "lineno", None) is None:
            return
        dedupe = (anchor.lineno, anchor.col_offset, kind)
        if dedupe in self.seen_events:
            return
        self.seen_events.add(dedupe)
        source = f" ({origin[2]})" if origin is not None else ""
        if kind == "f32":
            message = (
                f"float32 value meets a hard float64 value{source}; the "
                "result silently upcasts to float64"
            )
        else:
            message = (
                f"dtype-preserving path joins a hard float64 value{source}; "
                "float32 inputs widen to float64 here"
            )
        self.emit(anchor, UPCAST_CODE, message)

    def join_at(self, a, b, node):
        joined, event = join_vals(a, b)
        self.record(event, node)
        return joined

    # -- statement transfer -------------------------------------------------

    def transfer(self, kind, node, env):
        if kind == TEST:
            self.eval(node, env)
            return env
        if kind == BIND:
            self.bind(node.target, self.eval(node.iter, env), env)
            return env
        stmt = node
        if isinstance(stmt, ast.Assign):
            val = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.bind(target, val, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.bind(stmt.target, self.eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            val = self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, BOTTOM_VAL)
                env[stmt.target.id] = self.join_at(current, val, stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                val = self.eval(stmt.value, env)
                self.return_val = self.join_at(self.return_val, val, stmt)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        return env

    def bind(self, target, val, env):
        if isinstance(target, ast.Name):
            env[target.id] = val
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind(elt, val, env)
        # Subscript/attribute stores keep the container's own value.

    # -- expression evaluation ----------------------------------------------

    def eval(self, node, env):
        if isinstance(node, ast.Name):
            return env.get(node.id, BOTTOM_VAL)
        if isinstance(node, ast.Constant):
            return BOTTOM_VAL  # python scalars are weak (no forced upcast)
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, ast.BinOp):
            return self.join_at(
                self.eval(node.left, env), self.eval(node.right, env), node
            )
        if isinstance(node, ast.IfExp):
            return self.join_at(
                self.eval(node.body, env), self.eval(node.orelse, env), node
            )
        if isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            return self.eval(node.value, env)  # indexing/attributes preserve dtype
        if isinstance(node, (ast.Tuple, ast.List)):
            # Elements of a literal container do not interact numerically,
            # so their values merge without recording upcast events.
            out = BOTTOM_VAL
            for elt in node.elts:
                out, _ = join_vals(out, self.eval(elt, env))
            return out
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, env)
        return BOTTOM_VAL

    def dtype_const(self, node, env):
        """Lattice constant for a ``dtype=...`` expression (TOP if unknown)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return _DTYPE_NAMES.get(node.value, TOP), None
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value, env)
            if node.attr == "dtype" and base[1]:
                return BOT, base[1]  # x.dtype of a param: preserving
            if node.attr in _DTYPE_NAMES:
                return _DTYPE_NAMES[node.attr], None
        if isinstance(node, ast.Name) and node.id in _DTYPE_NAMES:
            return _DTYPE_NAMES[node.id], None
        val = self.eval(node, env)
        if val[1]:
            return BOT, val[1]
        return TOP, None

    def eval_call(self, node, env):
        resolved = self.analysis.callgraph.resolve(
            self.module, node.func, class_name=self.fn.class_name
        )
        kwargs = {k.arg: k.value for k in node.keywords if k.arg}

        # x.astype(t) takes the target dtype regardless of x.
        if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
            target = kwargs.get("dtype")
            if target is None and node.args:
                target = node.args[0]
            if target is not None:
                const, params = self.dtype_const(target, env)
                return (const, params or frozenset(), None)
            return (TOP, frozenset(), None)

        if resolved is not None and resolved[0] == "external":
            dotted = resolved[1]
            name = dotted.rsplit(".", 1)[-1]
            if name in _DTYPE_NAMES and dotted.startswith("numpy."):
                # np.float32(x) / np.float64(x) style casts.
                return (make_const(_DTYPE_NAMES[name],
                                   _origin(node, f"np.{name}(...)")))
            dtype_arg = kwargs.get("dtype")
            if dtype_arg is None:
                # Positional dtype, e.g. np.ones(shape, np.bool_).
                index = _POSITIONAL_DTYPE.get(dotted)
                if index is not None and len(node.args) > index:
                    dtype_arg = node.args[index]
            if dtype_arg is not None:
                const, params = self.dtype_const(dtype_arg, env)
                origin = _origin(node, "explicit dtype=float64") if const == F64 else None
                return (const, params or frozenset(), origin)
            if dotted in _F64_DEFAULT_ALLOCATORS:
                short = "np." + dotted.rsplit(".", 1)[-1]
                return make_const(
                    F64, _origin(node, f"{short}(...) without dtype defaults "
                                 "to float64", implicit=True)
                )
            if dotted in _DTYPE_JOINING:
                out = BOTTOM_VAL
                for arg in node.args:
                    if isinstance(arg, (ast.List, ast.Tuple)):
                        for elt in arg.elts:
                            out = self.join_at(out, self.eval(elt, env), node)
                    else:
                        out = self.join_at(out, self.eval(arg, env), node)
                return out
            return (TOP, frozenset(), None)

        if resolved is not None and resolved[0] == "internal":
            key = resolved[1]
            summary = self.analysis.get_summary("dtype", key)
            if summary is None:
                return (TOP, frozenset(), None)
            callee = self.analysis.callgraph.functions.get(key)
            params = callee.params if callee is not None else []
            const = summary.const
            origin = None
            if const == F64:
                name = key.split(":", 1)[1]
                detail = f": {summary.origin}" if summary.origin else ""
                origin = _origin(node, f"{name}() returns float64{detail}",
                                 implicit=summary.origin_implicit)
            out = (const, frozenset(), origin)
            for index, arg in enumerate(node.args):
                name = params[index] if index < len(params) else None
                if name is not None and name in summary.passthrough:
                    out = self.join_at(out, self.eval(arg, env), node)
            for kwname, value in kwargs.items():
                if kwname in summary.passthrough:
                    out = self.join_at(out, self.eval(value, env), node)
            return out

        return (TOP, frozenset(), None)


class _OriginAnchor:
    """Adapter giving an origin tuple the ``.lineno``/``.col_offset`` shape."""

    def __init__(self, origin):
        self.lineno = origin[0] if origin is not None else None
        self.col_offset = origin[1] if origin is not None else 0


def _origin(node, desc, implicit=False):
    return (node.lineno, node.col_offset, desc, implicit)
