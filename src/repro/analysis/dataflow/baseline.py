"""Finding baselines: adopt-now, fail-on-new lint workflows.

A baseline file records a *fingerprint* per accepted finding.  Later runs
subtract baselined findings, so ``repro lint --baseline FILE`` fails only
on findings introduced since the baseline was captured, letting a new
rule land with its pre-existing debt acknowledged in-tree.

Fingerprints hash ``(path, code, message)`` — deliberately **not** the
line number, so pure code motion (imports added above, reformatting)
does not resurrect baselined findings.  Paths are normalised to
repo-relative posix on load, so baselines captured on one machine apply
on any other.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.util.hashing import stable_digest

__all__ = [
    "finding_fingerprint",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "BASELINE_VERSION",
]

BASELINE_VERSION = 1


def _normalize_path(path: str) -> str:
    """Repo-relative posix form of a baseline entry path."""
    path = path.replace("\\", "/")
    while path.startswith("./"):
        path = path[2:]
    return path


def finding_fingerprint(finding) -> str:
    """Stable, line-insensitive identity of a finding."""
    return stable_digest(
        _normalize_path(finding.path).encode("utf-8"),
        finding.code.encode("utf-8"),
        finding.message.encode("utf-8"),
    )


def save_baseline(findings, path) -> dict:
    """Write a baseline for ``findings``; returns the written document."""
    findings = sorted(findings)
    entries = [
        {
            "fingerprint": finding_fingerprint(f),
            "path": _normalize_path(f.path),
            "code": f.code,
            "message": f.message,
        }
        for f in findings
    ]
    # One entry per fingerprint keeps the file diff-stable.
    unique = {e["fingerprint"]: e for e in entries}
    doc = {
        "version": BASELINE_VERSION,
        "count": len(unique),
        "findings": [unique[fp] for fp in sorted(unique)],
    }
    Path(path).write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
    return doc


def load_baseline(path) -> frozenset:
    """Fingerprints recorded in a baseline file.

    Entries carrying ``path``/``code``/``message`` are re-fingerprinted
    after path normalisation, so hand-edits and cross-platform paths
    still match; bare fingerprints are accepted as-is.
    """
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    fingerprints = set()
    for entry in raw.get("findings", ()):
        if isinstance(entry, str):
            fingerprints.add(entry)
            continue
        if all(k in entry for k in ("path", "code", "message")):
            fingerprints.add(
                stable_digest(
                    _normalize_path(entry["path"]).encode("utf-8"),
                    entry["code"].encode("utf-8"),
                    entry["message"].encode("utf-8"),
                )
            )
        elif "fingerprint" in entry:
            fingerprints.add(entry["fingerprint"])
    return frozenset(fingerprints)


def apply_baseline(findings, fingerprints):
    """Split findings into ``(new, baselined)`` against a fingerprint set."""
    new, baselined = [], []
    for finding in sorted(findings):
        if finding_fingerprint(finding) in fingerprints:
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
