"""Project call graph: modules, definitions, import and call resolution.

The graph is deliberately syntactic — no execution, no type inference.
Calls resolve through the three shapes that cover this codebase:

* ``f(...)`` where ``f`` is a module-level function of the same module or
  a ``from mod import f`` binding,
* ``alias.f(...)`` where ``alias`` comes from ``import mod [as alias]``,
* ``self.m(...)`` / ``cls.m(...)`` inside a method, bound within the
  enclosing class.

Everything else (arbitrary attribute calls, higher-order values) resolves
to *external* or *unknown*; the analyses treat those conservatively.
External names are normalised to their dotted module form (``np.zeros``
-> ``numpy.zeros``) so source/sink tables can be written once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "CallGraph",
    "module_name_for",
    "module_imports",
    "parse_module",
]

#: Aliases conventionally used for external packages, normalised so the
#: source/sink tables only need the canonical spelling.
_CANONICAL = {"np": "numpy"}


def module_name_for(module_rel: str) -> str:
    """Dotted module name for a package-relative path.

    ``repro/util/hashing.py`` -> ``repro.util.hashing``;
    ``pkg/__init__.py`` -> ``pkg``.
    """
    rel = module_rel[:-3] if module_rel.endswith(".py") else module_rel
    parts = [p for p in rel.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    key: str  #: global id ``module:qualname``
    module: str  #: dotted module name
    qualname: str  #: ``fn`` or ``Class.method``
    node: ast.AST  #: the ``FunctionDef`` / ``AsyncFunctionDef``
    params: list[str]  #: positional + keyword parameter names, in order
    class_name: str | None = None  #: owning class for methods
    display: str = ""  #: file path (for findings)

    @property
    def name(self) -> str:
        """The bare function name (last qualname segment)."""
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleInfo:
    """One parsed module: its tree plus resolved import tables."""

    name: str  #: dotted module name
    display: str  #: path used in findings
    module_rel: str  #: package-relative path used for scoping
    tree: ast.AST | None  #: parsed module (None for cache-restored stubs)
    imports: dict[str, str] = field(default_factory=dict)  #: alias -> module
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    lines: list[str] = field(default_factory=list)


def _collect_imports(info: ModuleInfo, tree: ast.AST) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                info.imports[bound] = _CANONICAL.get(bound, target)
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            if node.level:
                # Relative import: ``from . import x`` in pkg.mod -> pkg,
                # each extra dot climbs one more package level.
                base = info.name.split(".")[: -node.level]
                mod = ".".join([p for p in base if p] + ([mod] if mod else []))
            for alias in node.names:
                bound = alias.asname or alias.name
                info.from_imports[bound] = (mod, alias.name)


def _collect_functions(info: ModuleInfo, tree: ast.AST) -> None:
    for node in tree.body if isinstance(tree, ast.Module) else []:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _add_function(info, node, class_name=None)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _add_function(info, item, class_name=node.name)


def _add_function(info: ModuleInfo, node, class_name: str | None) -> None:
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    args = node.args
    params = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
    info.functions[qualname] = FunctionInfo(
        key=f"{info.name}:{qualname}",
        module=info.name,
        qualname=qualname,
        node=node,
        params=params,
        class_name=class_name,
        display=info.display,
    )


def module_imports(module: ModuleInfo) -> list[str]:
    """Dotted names this module imports (the incremental dirty closure's
    dependency edges): plain imports plus both halves of from-imports."""
    names = set(module.imports.values())
    for mod, attr in module.from_imports.values():
        if mod:
            names.add(mod)
            names.add(f"{mod}.{attr}")
        else:
            names.add(attr)
    return sorted(names)


def parse_module(name: str, display: str, module_rel: str, tree: ast.AST,
                 lines: list[str] | None = None) -> ModuleInfo:
    """Build a :class:`ModuleInfo` (imports + definitions) from a parsed tree."""
    info = ModuleInfo(name=name, display=display, module_rel=module_rel,
                      tree=tree, lines=lines or [])
    _collect_imports(info, tree)
    _collect_functions(info, tree)
    return info


class CallGraph:
    """Resolves call expressions against the project's definitions.

    Resolution results are tagged tuples:

    * ``("internal", key)`` — a project function, ``key`` indexes
      :attr:`functions`;
    * ``("external", dotted)`` — a call into another package, dotted name
      normalised (``numpy.zeros``, ``time.time``);
    * ``None`` — unresolvable (lambdas, arbitrary attribute chains).
    """

    def __init__(self, modules: dict[str, ModuleInfo]):
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        for mod in modules.values():
            for fn in mod.functions.values():
                self.functions[fn.key] = fn
                if fn.class_name is not None:
                    self.methods_by_name.setdefault(fn.name, []).append(fn.key)

    def dotted_name(self, module: ModuleInfo, node: ast.AST) -> str | None:
        """Flatten ``a.b.c`` to a dotted string (raw, un-aliased root)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    def resolve(
        self,
        module: ModuleInfo,
        func: ast.AST,
        class_name: str | None = None,
    ):
        """Resolve the callee expression of a ``Call`` node (see class docs)."""
        if isinstance(func, ast.Name):
            name = func.id
            if name in module.from_imports:
                target_mod, attr = module.from_imports[name]
                target = self.modules.get(target_mod)
                if target is not None and attr in target.functions:
                    return ("internal", target.functions[attr].key)
                if target is not None:
                    return None  # internal module, but not a function (class, const)
                return ("external", f"{target_mod}.{attr}")
            if name in module.functions:
                return ("internal", module.functions[name].key)
            if name in module.imports:
                return ("external", module.imports[name])
            return ("builtin", name)
        if isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in ("self", "cls")
                and class_name is not None
            ):
                qual = f"{class_name}.{func.attr}"
                if qual in module.functions:
                    return ("internal", module.functions[qual].key)
                return None
            dotted = self.dotted_name(module, func)
            if dotted is None:
                return None
            root = dotted.split(".", 1)[0]
            if root in module.imports:
                expanded = module.imports[root] + dotted[len(root):]
                target = self.modules.get(expanded.rsplit(".", 1)[0])
                attr = expanded.rsplit(".", 1)[-1]
                if target is not None and attr in target.functions:
                    return ("internal", target.functions[attr].key)
                return ("external", expanded)
            if root in module.from_imports:
                mod_name, attr = module.from_imports[root]
                # ``from repro import util; util.hashing.stable_digest`` —
                # rare; resolve one attribute level only.
                return ("external", f"{mod_name}.{attr}" + dotted[len(root):])
            if root in _CANONICAL:  # bare np.* in fixture snippets
                return ("external", _CANONICAL[root] + dotted[len(root):])
            return None
        return None
