"""reprolint configuration: defaults plus ``[tool.reprolint]`` overrides.

Configuration is read from the nearest ``pyproject.toml`` at or above the
lint root.  Recognised keys::

    [tool.reprolint]
    select = ["RD101", ...]     # run only these codes (default: all)
    ignore = ["RD303", ...]     # never report these codes
    exclude = ["tests/fixtures/reprolint"]   # paths/globs skipped entirely

    [tool.reprolint.per-path-ignores]
    "tests" = ["RD201"]         # codes ignored under matching paths

    [tool.reprolint.scopes]     # override a rule's built-in path scoping
    ordered-iteration-paths = ["repro/reorder", ...]

Path entries match a file when they equal it, are an ancestor directory of
it, or fnmatch it (so ``"*"`` scopes a rule to everything — handy in
tests).  Scoping uses *package-relative* paths (``repro/kernels/spmm.py``)
while ``exclude`` / ``per-path-ignores`` use lint-root-relative paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.errors import ConfigError

__all__ = ["LintConfig", "DEFAULT_SCOPES", "load_config", "path_matches"]

#: Built-in path scoping for the rule set (package-relative paths).  Every
#: entry can be overridden via ``[tool.reprolint.scopes]``.
DEFAULT_SCOPES: dict[str, tuple[str, ...]] = {
    # RD101/RD102 exemption: the one module allowed to touch raw RNG APIs.
    "rng-exempt-paths": ("repro/util/rng.py",),
    # RD103: packages whose outputs are plans/orderings — iteration order
    # there must be deterministic.
    "ordered-iteration-paths": (
        "repro/reorder",
        "repro/clustering",
        "repro/aspt",
        "repro/planstore",
        "repro/similarity",
    ),
    # RD104: packages whose results must not depend on wall-clock reads.
    "wallclock-paths": ("repro/kernels", "repro/aspt", "repro/clustering"),
    # RD107: all library code must route monotonic-clock reads through an
    # injectable ``clock`` parameter...
    "clock-injection-paths": ("repro",),
    # ...except the observability layer, which owns the default clock.
    "clock-exempt-paths": ("repro/observability",),
    # RD105: kernel code whose nnz-proportional scratch must come from the
    # workspace pool rather than per-call allocation.
    "workspace-scratch-paths": ("repro/kernels",),
    # RD203: packages whose public entry points must validate sparse args.
    "entrypoint-paths": ("repro/sparse", "repro/aspt", "repro/reorder"),
    # RD204: compiled-backend code, where allocations must name their
    # dtype (the kernels are dtype-polymorphic; a float64 default
    # silently upcasts the float32 cells of the differential matrix).
    "backend-paths": ("repro/kernels/backends",),
    # RD106/RD303 apply to library code only...
    "library-paths": ("repro",),
    # RD106 exemption: the resilience layer itself is where broad catches
    # are the mechanism (fault translation, quarantine, journalling), and
    # the serve layer's connection loop must survive anything a request
    # raises (the catch converts it to a typed error response).
    "resilience-exempt-paths": ("repro/resilience", "repro/serve"),
    # RD108: async server code where a blocking call stalls every
    # connection sharing the event loop.
    "async-blocking-paths": ("repro/serve",),
    # ...and is exempt where printing *is* the job (CLI front ends).
    "print-exempt-paths": ("repro/cli.py", "repro/analysis/cli.py"),
    # RD304: modules containing repro CLI handler functions.
    "cli-paths": ("repro/cli.py",),
    # RD401/RD402: files whose sink call sites the taint analysis reports
    # on (sources are followed project-wide regardless of this scope).
    "taint-paths": ("repro",),
    # RD501: packages whose value arrays must stay dtype-stable — an
    # implicit float64 upcast there silently doubles bandwidth and breaks
    # float32 bitwise reproducibility.
    "dtype-paths": ("repro/kernels", "repro/sparse", "repro/aspt"),
    # RD601/RD602: packages whose contract targets and fault sites must
    # be observably pure (contracts toggle with REPRO_CONTRACTS, faults
    # with an installed injector — neither may change results).
    "purity-paths": ("repro",),
}


def path_matches(rel: str, patterns) -> bool:
    """True when ``rel`` equals, lives under, or fnmatches any pattern."""
    for pattern in patterns:
        pattern = pattern.rstrip("/")
        if rel == pattern or rel.startswith(pattern + "/") or fnmatch(rel, pattern):
            return True
    return False


@dataclass
class LintConfig:
    """Resolved reprolint configuration (defaults merged with pyproject)."""

    select: frozenset | None = None  #: only these codes run (None = all)
    ignore: frozenset = frozenset()  #: codes dropped everywhere
    exclude: tuple = ()  #: root-relative paths/globs never linted
    per_path_ignores: dict = field(default_factory=dict)  #: path -> codes
    scopes: dict = field(default_factory=lambda: dict(DEFAULT_SCOPES))
    root: Path = field(default_factory=Path.cwd)  #: base for display paths

    def code_enabled(self, code: str) -> bool:
        """Whether ``code`` survives the global select/ignore filters."""
        if code in self.ignore:
            return False
        return self.select is None or code in self.select

    def ignored_at(self, display: str, code: str) -> bool:
        """Whether ``code`` is ignored for the file at root-relative ``display``."""
        for pattern, codes in self.per_path_ignores.items():
            if path_matches(display, (pattern,)) and code in codes:
                return True
        return False

    def scope(self, key: str) -> tuple:
        """The path list for a scope key (empty tuple when unknown)."""
        return tuple(self.scopes.get(key, ()))


def _as_code_list(value, key: str) -> list[str]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ConfigError(f"[tool.reprolint] {key} must be a list of strings")
    return value


def load_config(start: Path | None = None) -> LintConfig:
    """Build a :class:`LintConfig` from the nearest ``pyproject.toml``.

    Searches ``start`` (default: the current directory) and its parents.
    Missing file or missing ``[tool.reprolint]`` table yields pure defaults
    rooted at ``start``.
    """
    start = Path(start) if start is not None else Path.cwd()
    start = start if start.is_dir() else start.parent
    pyproject = None
    for candidate in [start, *start.resolve().parents]:
        probe = candidate / "pyproject.toml"
        if probe.is_file():
            pyproject = probe
            break
    config = LintConfig(root=start if pyproject is None else pyproject.parent)
    if pyproject is None:
        return config

    try:
        import tomllib
    except ImportError:  # pragma: no cover - Python < 3.11 without tomli
        return config
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("reprolint")
    if table is None:
        return config

    if "select" in table:
        config.select = frozenset(_as_code_list(table["select"], "select"))
    if "ignore" in table:
        config.ignore = frozenset(_as_code_list(table["ignore"], "ignore"))
    if "exclude" in table:
        config.exclude = tuple(_as_code_list(table["exclude"], "exclude"))
    for pattern, codes in table.get("per-path-ignores", {}).items():
        config.per_path_ignores[pattern] = frozenset(
            _as_code_list(codes, f"per-path-ignores[{pattern!r}]")
        )
    for key, paths in table.get("scopes", {}).items():
        if key not in DEFAULT_SCOPES:
            raise ConfigError(f"[tool.reprolint.scopes] unknown scope key {key!r}")
        config.scopes[key] = tuple(_as_code_list(paths, f"scopes.{key}"))
    return config
