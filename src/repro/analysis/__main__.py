"""``python -m repro.analysis`` — run reprolint from the interpreter."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
