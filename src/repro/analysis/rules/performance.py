"""RD1xx (cont.) — hot-path allocation and event-loop rules.

The workspace-pool layer (:mod:`repro.util.workspace`) exists so kernel
scratch proportional to the number of stored non-zeros is leased and
reused instead of re-allocated on every call — the steady-state serving
path depends on it.  RD105 keeps that property from silently eroding: a
fresh ``np.zeros``/``np.empty`` of nnz-proportional size inside a kernel
that offers no ``workspace`` parameter re-introduces exactly the per-call
allocation the pool removed.  Reference oracles (which deliberately
mirror the paper's pseudocode, allocations included) carry justified
inline suppressions.

RD108 protects the serving layer's event loop: one asyncio loop owns
every connection of :mod:`repro.serve`, so a single blocking call inside
an ``async def`` — ``time.sleep``, synchronous file IO, a subprocess
wait — stalls *all* tenants at once, exactly the head-of-line blocking
the admission controller exists to prevent.  Blocking work belongs on
the executor (``loop.run_in_executor``) or behind the asyncio
equivalents (``asyncio.sleep``, stream APIs).
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, register

__all__ = ["NnzScratchAllocationRule", "AsyncBlockingCallRule"]

#: Allocation constructors the rule watches.
_ALLOCATORS = {"zeros", "empty"}


def _mentions_nnz(node: ast.AST) -> bool:
    """True when the expression references ``nnz`` (name or attribute)."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "nnz":
            return True
        if isinstance(sub, ast.Name) and sub.id == "nnz":
            return True
    return False


def _is_nnz_allocation(node: ast.Call) -> bool:
    """``np.zeros``/``np.empty`` whose shape expression mentions ``nnz``."""
    func = node.func
    if not (
        isinstance(func, ast.Attribute)
        and func.attr in _ALLOCATORS
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return False
    shape = node.args[0] if node.args else None
    if shape is None:
        for kw in node.keywords:
            if kw.arg == "shape":
                shape = kw.value
                break
    return shape is not None and _mentions_nnz(shape)


@register
class NnzScratchAllocationRule(Rule):
    """RD105: per-call nnz-proportional scratch in workspace-less kernels.

    Flags ``np.zeros``/``np.empty`` calls whose size expression mentions
    ``nnz`` inside a kernel function that (itself or via an enclosing
    function) accepts no ``workspace`` parameter.  Such scratch is the
    exact allocation the workspace pool exists to amortise; either thread
    ``workspace=`` through the function and lease the buffer, or carry a
    justified suppression (reference oracles do).
    """

    code = "RD105"
    name = "nnz-scratch-without-workspace"
    summary = (
        "per-call np.zeros/np.empty of nnz-proportional scratch in a kernel "
        "without a workspace parameter; lease it from repro.util.workspace"
    )
    scope_key = "workspace-scratch-paths"

    @staticmethod
    def _has_workspace_param(fn: ast.AST) -> bool:
        args = fn.args
        every = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
        return any(arg.arg == "workspace" for arg in every)

    def _walk(self, ctx: FileContext, node: ast.AST, pooled: bool):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            pooled = pooled or self._has_workspace_param(node)
        elif (
            not pooled
            and isinstance(node, ast.Call)
            and _is_nnz_allocation(node)
        ):
            yield ctx.finding(
                node, self.code,
                "nnz-proportional scratch allocated per call; accept a "
                "workspace parameter and lease the buffer from "
                "repro.util.workspace instead",
            )
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, child, pooled)

    def visit(self, ctx: FileContext):
        """Flag nnz-sized allocations outside workspace-threaded code.

        Module-level allocations are ignored: they run once at import,
        not per kernel call.
        """
        for top in ast.iter_child_nodes(ctx.tree):
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                yield from self._walk(ctx, top, False)


#: ``module.attr`` call targets that block the calling thread.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"),
    ("io", "open"),
    ("os", "system"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("socket", "create_connection"),
    ("shutil", "copy"),
    ("shutil", "copy2"),
    ("shutil", "copytree"),
    ("shutil", "rmtree"),
}

#: Method names that are synchronous file IO wherever they appear
#: (``Path.read_text`` and friends); scoped to attribute calls so a
#: local helper named ``read_text`` still flags — in an async frame it
#: is equally suspect.
_BLOCKING_METHODS = {
    "read_text",
    "read_bytes",
    "write_text",
    "write_bytes",
}


def _blocking_call_name(node: ast.Call) -> str | None:
    """The dotted name of a blocking call, or ``None``."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open"
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            pair = (func.value.id, func.attr)
            if pair in _BLOCKING_MODULE_CALLS:
                return f"{pair[0]}.{pair[1]}"
        if func.attr in _BLOCKING_METHODS:
            return f"<expr>.{func.attr}"
    return None


@register
class AsyncBlockingCallRule(Rule):
    """RD108: blocking calls inside ``async def`` on serve paths.

    Flags ``time.sleep``, synchronous file IO (``open``,
    ``Path.read_text``/``write_bytes``/...), subprocess invocations and
    other thread-blocking calls lexically inside an ``async def`` body.
    Nested *synchronous* ``def``s are excluded — they are exactly what
    gets shipped to ``loop.run_in_executor``, where blocking is fine.
    """

    code = "RD108"
    name = "blocking-call-in-async"
    summary = (
        "blocking call inside async def stalls the entire event loop; use "
        "the asyncio equivalent or move it to loop.run_in_executor"
    )
    scope_key = "async-blocking-paths"

    def _walk(self, ctx: FileContext, node: ast.AST, in_async: bool):
        if isinstance(node, ast.AsyncFunctionDef):
            in_async = True
        elif isinstance(node, (ast.FunctionDef, ast.Lambda)):
            # A nested sync function is executor-bound, not loop-bound.
            in_async = False
        elif in_async and isinstance(node, ast.Call):
            name = _blocking_call_name(node)
            if name is not None:
                yield ctx.finding(
                    node, self.code,
                    f"{name} blocks the event loop for every connection; "
                    "await the asyncio equivalent or dispatch through "
                    "loop.run_in_executor",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._walk(ctx, child, in_async)

    def visit(self, ctx: FileContext):
        """Flag blocking calls reachable from async frames in this file."""
        yield from self._walk(ctx, ctx.tree, False)
