"""The reprolint rule set.

Importing this package registers every rule into
:data:`repro.analysis.core.REGISTRY`.  Rules are grouped by code band:

* :mod:`repro.analysis.rules.determinism` — RD101-RD104, plus RD107
  (direct monotonic-clock calls that bypass clock injection)
* :mod:`repro.analysis.rules.performance` — RD105 (hot-path allocations)
* :mod:`repro.analysis.rules.numerical` — RD2xx
* :mod:`repro.analysis.rules.hygiene` — RD3xx, plus RD106 (broad except
  handlers that would swallow resilience-layer control exceptions)
* :mod:`repro.analysis.rules.dataflow` — RD4xx/RD5xx/RD6xx, the
  inter-procedural project rules backed by :mod:`repro.analysis.dataflow`
"""

from repro.analysis.rules import dataflow, determinism, hygiene, numerical, performance

__all__ = ["determinism", "performance", "numerical", "hygiene", "dataflow"]
