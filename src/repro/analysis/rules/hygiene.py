"""RD3xx — hygiene rules (plus RD106, the resilience-contract catch rule).

General Python failure modes that have outsized blast radius in a
numerical library: bare ``except`` swallowing ``KeyboardInterrupt`` and
real bugs, mutable default arguments shared across calls, ``print`` in
library code bypassing logging, and CLI handlers that surface raw
tracebacks instead of structured :mod:`repro.errors` exit codes.

RD106 lives here too despite its band number: broad ``except Exception``
handlers in library code silently swallow the resilience layer's control
exceptions (:class:`repro.errors.TimeoutExceeded`,
:class:`repro.errors.WorkspaceExhausted`, injected faults), which defeats
the degradation ladder and makes chaos runs nondeterministic — hence the
determinism-band code.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, register

__all__ = [
    "BroadExceptRule",
    "BareExceptRule",
    "MutableDefaultRule",
    "PrintInLibraryRule",
    "UnroutedCliHandlerRule",
]


@register
class BroadExceptRule(Rule):
    """RD106: ``except Exception``/``except BaseException`` outside the
    resilience layer.

    The resilience layer signals through exceptions — ``TimeoutExceeded``
    drives the degradation ladder, ``WorkspaceExhausted`` drives the
    kernel-session fallback, and the chaos suite injects faults that must
    surface.  A broad catch anywhere else in the library absorbs those
    signals and turns a controlled degradation into a silent wrong path.
    Catch named exception types; where capture really is the job (e.g. a
    pool worker marshalling failures), suppress with
    ``# reprolint: disable=RD106 -- <why>``.  Bare ``except`` (broader
    still) is RD301.
    """

    code = "RD106"
    name = "broad-except"
    summary = (
        "except Exception/BaseException swallows resilience-layer control "
        "exceptions; catch named types"
    )

    scope_key = "library-paths"
    exempt_key = "resilience-exempt-paths"

    _BROAD = ("Exception", "BaseException")

    def _broad_names(self, type_node: ast.AST):
        """Yield the broad names appearing in an ``except`` type expression."""
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        for node in nodes:
            if isinstance(node, ast.Name) and node.id in self._BROAD:
                yield node.id

    def visit(self, ctx: FileContext):
        """Flag handlers whose type mentions ``Exception``/``BaseException``."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or node.type is None:
                continue
            for name in self._broad_names(node.type):
                yield ctx.finding(
                    node, self.code,
                    f"except {name} swallows TimeoutExceeded/WorkspaceExhausted "
                    "and injected faults, defeating the degradation ladder; "
                    "catch named exception types",
                )


@register
class BareExceptRule(Rule):
    """RD301: bare ``except:`` clause."""

    code = "RD301"
    name = "bare-except"
    summary = "bare except catches SystemExit/KeyboardInterrupt; name the exception"

    def visit(self, ctx: FileContext):
        """Flag ``except:`` handlers with no exception type."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    node, self.code,
                    "bare except also catches SystemExit/KeyboardInterrupt; "
                    "catch a named exception (ReproError for library errors)",
                )


@register
class MutableDefaultRule(Rule):
    """RD302: mutable default argument values."""

    code = "RD302"
    name = "mutable-default-argument"
    summary = "list/dict/set default argument is shared across calls; use None"

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray")
        )

    def visit(self, ctx: FileContext):
        """Flag function defaults that evaluate to mutable containers."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield ctx.finding(
                        default, self.code,
                        f"mutable default argument in {name}() is shared "
                        "across calls; default to None and construct inside",
                    )


@register
class PrintInLibraryRule(Rule):
    """RD303: ``print`` in library code (CLI front ends are exempt)."""

    code = "RD303"
    name = "print-in-library"
    summary = "print() in library code; use repro.util.log or return the text"

    scope_key = "library-paths"
    exempt_key = "print-exempt-paths"

    def visit(self, ctx: FileContext):
        """Flag ``print(...)`` calls."""
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(
                    node, self.code,
                    "print() in library code; log via repro.util.log or "
                    "return the text to the caller",
                )


@register
class UnroutedCliHandlerRule(Rule):
    """RD304: CLI handler not routed through the structured-error layer.

    ``repro.cli`` handlers (``_cmd_*``) must be registered with the
    ``@cli_handler`` decorator so ``main()`` maps :mod:`repro.errors`
    exceptions to exit codes instead of surfacing raw tracebacks.
    """

    code = "RD304"
    name = "unrouted-cli-handler"
    summary = (
        "CLI handler function lacks the @cli_handler decorator and will "
        "surface raw tracebacks"
    )
    scope_key = "cli-paths"

    def visit(self, ctx: FileContext):
        """Flag ``_cmd_*`` functions without ``@cli_handler``."""
        module = ctx.tree
        if not isinstance(module, ast.Module):
            return
        for stmt in module.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            if not stmt.name.startswith("_cmd_"):
                continue
            routed = False
            for deco in stmt.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                if isinstance(target, ast.Name) and target.id == "cli_handler":
                    routed = True
                if isinstance(target, ast.Attribute) and target.attr == "cli_handler":
                    routed = True
            if not routed:
                yield ctx.finding(
                    stmt, self.code,
                    f"{stmt.name}() is not registered via @cli_handler; "
                    "errors will escape as raw tracebacks",
                )
