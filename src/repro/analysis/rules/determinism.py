"""RD1xx — determinism rules.

The reordering pipeline must be bit-deterministic for a given seed: plans
are content-addressed by the plan store and compared across processes in
CI.  These rules flag the constructs that have actually broken that
property in practice — unseeded generators, Python ``set`` iteration
(ordering depends on ``PYTHONHASHSEED`` for ``str`` elements), and
wall-clock reads inside code whose *outputs* must not depend on time.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, register

__all__ = [
    "UnseededGeneratorRule",
    "LegacyNumpyRandomRule",
    "SetIterationRule",
    "WallClockRule",
    "InjectableClockRule",
]

#: Legacy ``np.random.*`` module-level API (global-state RNG).  The modern
#: ``default_rng`` / ``Generator`` / ``SeedSequence`` names are allowed.
_LEGACY_RANDOM = {
    "rand", "randn", "randint", "random", "random_sample", "ranf", "sample",
    "seed", "get_state", "set_state", "choice", "shuffle", "permutation",
    "uniform", "normal", "standard_normal", "binomial", "poisson", "beta",
    "gamma", "exponential", "RandomState",
}

#: Wall-clock (and monotonic-clock) reads whose results leak timing into
#: outputs when called from transformation code.
_WALL_CLOCK_ATTRS = {
    "time": {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    },
    "datetime": {"now", "utcnow", "today"},
}


def _is_np_random(node: ast.AST) -> bool:
    """True for an expression spelling ``np.random`` / ``numpy.random``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


@register
class UnseededGeneratorRule(Rule):
    """RD101: ``default_rng()`` with no (or ``None``) seed is nondeterministic."""

    code = "RD101"
    name = "unseeded-default-rng"
    summary = (
        "np.random.default_rng() called without a seed outside util/rng.py; "
        "thread a seed or Generator through util.rng.as_generator"
    )
    exempt_key = "rng-exempt-paths"

    def visit(self, ctx: FileContext):
        """Flag seedless ``default_rng`` calls."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            named = (
                isinstance(func, ast.Name) and func.id == "default_rng"
            ) or (
                isinstance(func, ast.Attribute)
                and func.attr == "default_rng"
                and _is_np_random(func.value)
            )
            if not named:
                continue
            seedless = not node.args and not node.keywords
            none_seed = (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if seedless or none_seed:
                yield ctx.finding(
                    node, self.code,
                    "default_rng() without a seed is nondeterministic; pass "
                    "a seed or route through repro.util.rng.as_generator",
                )


@register
class LegacyNumpyRandomRule(Rule):
    """RD102: legacy global-state ``np.random.*`` API outside util/rng.py."""

    code = "RD102"
    name = "legacy-np-random"
    summary = (
        "legacy np.random.<fn> global-state API used outside util/rng.py; "
        "use a seeded Generator instead"
    )
    exempt_key = "rng-exempt-paths"

    def visit(self, ctx: FileContext):
        """Flag attribute access on the legacy ``np.random`` surface."""
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _LEGACY_RANDOM
                and _is_np_random(node.value)
            ):
                yield ctx.finding(
                    node, self.code,
                    f"legacy np.random.{node.attr} uses hidden global state; "
                    "use a seeded np.random.Generator",
                )


@register
class SetIterationRule(Rule):
    """RD103: iterating a ``set`` in plan/ordering-producing code.

    Set iteration order depends on element hashes — for strings, on
    ``PYTHONHASHSEED`` — so any ordering derived from it silently varies
    between processes.  Iterate ``sorted(...)`` instead.
    """

    code = "RD103"
    name = "set-iteration-in-ordering-code"
    summary = (
        "iteration over a set in plan- or ordering-producing code; wrap in "
        "sorted() for a deterministic order"
    )
    scope_key = "ordered-iteration-paths"

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def visit(self, ctx: FileContext):
        """Flag ``for``-loops and comprehensions whose iterable is a set."""
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters = [gen.iter for gen in node.generators]
            for it in iters:
                if self._is_set_expr(it):
                    yield ctx.finding(
                        it, self.code,
                        "iteration order of a set depends on element hashes "
                        "(PYTHONHASHSEED); iterate sorted(...) instead",
                    )


@register
class WallClockRule(Rule):
    """RD104: clock reads inside kernel/tiling/clustering code.

    Timing belongs to the callers (``util.timing``); a clock read inside a
    transformation lets measurement perturb results, the failure mode the
    reordering-effectiveness literature warns about.
    """

    code = "RD104"
    name = "wall-clock-in-kernel-code"
    summary = (
        "clock read inside kernels/aspt/clustering; time at the call site "
        "with repro.util.timing instead"
    )
    scope_key = "wallclock-paths"

    def visit(self, ctx: FileContext):
        """Flag ``time.*`` / ``datetime.now``-family calls in scoped code."""
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            base = func.value
            for module, attrs in _WALL_CLOCK_ATTRS.items():
                base_named = (
                    isinstance(base, ast.Name) and base.id == module
                ) or (
                    isinstance(base, ast.Attribute) and base.attr == module
                )
                if base_named and func.attr in attrs:
                    yield ctx.finding(
                        node, self.code,
                        f"{module}.{func.attr}() inside transformation code; "
                        "move timing to the caller (repro.util.timing)",
                    )
                    break


#: Monotonic-clock reads RD107 requires to be injected rather than called
#: directly (passing ``time.perf_counter`` as a default *reference* is the
#: sanctioned pattern; *calling* it inline defeats clock injection).
_MONOTONIC_CLOCK_FNS = {
    "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns",
}


@register
class InjectableClockRule(Rule):
    """RD107: direct monotonic-clock *calls* in library code.

    Tracing, timing and deadline code all take an injectable ``clock``
    callable so tests can drive time deterministically (golden traces,
    deadline unit tests).  A direct ``time.perf_counter()`` call bypasses
    that seam: the caller can no longer substitute a fake clock, and the
    measurement silently diverges from every traced/timed sibling.
    Reference the clock (``clock=time.perf_counter``) and call the
    injected name instead.  The observability package — the layer that
    *owns* the default clock — is exempt.
    """

    code = "RD107"
    name = "direct-monotonic-clock-call"
    summary = (
        "time.perf_counter()/time.monotonic() called directly in library "
        "code; accept an injectable clock=time.perf_counter parameter and "
        "call that instead"
    )
    scope_key = "clock-injection-paths"
    exempt_key = "clock-exempt-paths"

    def visit(self, ctx: FileContext):
        """Flag direct calls of the ``time`` module's monotonic clocks."""
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            func = node.func
            base = func.value
            base_named = (
                isinstance(base, ast.Name) and base.id == "time"
            ) or (
                isinstance(base, ast.Attribute) and base.attr == "time"
            )
            if base_named and func.attr in _MONOTONIC_CLOCK_FNS:
                yield ctx.finding(
                    node, self.code,
                    f"direct time.{func.attr}() call; take an injectable "
                    "clock parameter (clock=time.perf_counter) and call "
                    "the injected name",
                )
