"""RD4xx/RD5xx/RD6xx — inter-procedural dataflow rules.

These are :class:`~repro.analysis.core.ProjectRule` subclasses: the
runner builds one :class:`~repro.analysis.dataflow.Project` per session
(call graph + per-function summaries, see :mod:`repro.analysis.dataflow`)
and each rule reads its code's findings out of the shared analysis
results.  Scoping and inline suppressions are applied per finding by the
runner, against the file each finding lands in.
"""

from __future__ import annotations

from repro.analysis.core import ProjectRule, register

__all__ = [
    "HashTaintRule",
    "KernelTaintRule",
    "ImplicitUpcastRule",
    "ImpureContractTargetRule",
    "EffectBeforeFaultRule",
]


class _DataflowRule(ProjectRule):
    """Shared ``analyze``: pull this rule's code from the project results."""

    def analyze(self, project):
        """Yield the project's findings carrying this rule's code."""
        yield from project.results().get(self.code, ())


@register
class HashTaintRule(_DataflowRule):
    """RD401: nondeterminism taint reaching a hash/fingerprint sink."""

    code = "RD401"
    name = "tainted-fingerprint"
    summary = (
        "a nondeterministic value (clock, unseeded RNG, os.urandom, id(), "
        "set/dict iteration order) flows into stable_digest/fingerprint "
        "hashing — cache keys would differ across runs"
    )
    scope_key = "taint-paths"


@register
class KernelTaintRule(_DataflowRule):
    """RD402: nondeterminism taint reaching kernel output or codegen."""

    code = "RD402"
    name = "tainted-kernel-output"
    summary = (
        "a nondeterministic value flows into a kernel return value or "
        "generated/exec'd source — results would not be bitwise-reproducible"
    )
    scope_key = "taint-paths"


@register
class ImplicitUpcastRule(_DataflowRule):
    """RD501: float32 data silently widened by a hard float64 value."""

    code = "RD501"
    name = "implicit-float64-upcast"
    summary = (
        "a float32/dtype-preserving value meets a hard float64 value "
        "(e.g. np.zeros without dtype=) and silently upcasts — doubles "
        "memory traffic on the GPU path"
    )
    scope_key = "dtype-paths"


@register
class ImpureContractTargetRule(_DataflowRule):
    """RD601: ``@checked`` contract target with observable side effects."""

    code = "RD601"
    name = "impure-contract-target"
    summary = (
        "a validator referenced by @checked/validates/invokes mutates "
        "state or performs I/O — toggling REPRO_CONTRACTS would change "
        "behaviour"
    )
    scope_key = "purity-paths"


@register
class EffectBeforeFaultRule(_DataflowRule):
    """RD602: observable side effect preceding a ``fault_point`` probe."""

    code = "RD602"
    name = "effect-before-fault-point"
    summary = (
        "an observable side effect executes before a fault_point() call "
        "in the same function — an injected fault would leave partial "
        "state behind"
    )
    scope_key = "purity-paths"
