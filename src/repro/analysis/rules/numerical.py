"""RD2xx — numerical-safety rules.

The plan-store work demonstrated two silent data-corruption modes this
band guards against: column indices truncated by a narrowing ``astype``
and float comparisons that are exact by accident.  RD203 additionally
enforces the project contract that public entry points of the sparse
layers validate their operands (directly via ``check_*`` / ``validate()``
or through a :func:`repro.contracts.checked` decorator).
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, register

__all__ = [
    "FloatEqualityRule",
    "ImplicitUpcastAllocRule",
    "IndexNarrowingRule",
    "UncheckedEntryPointRule",
]

#: Integer dtypes narrower than the library's canonical int64 indices.
_NARROW_INTS = {
    "int8", "int16", "int32", "uint8", "uint16", "uint32",
    "intc", "short", "byte", "ubyte", "ushort", "uintc",
}

#: Parameter names treated as sparse/array operands by RD203.
_OPERAND_PARAMS = {
    "csr", "csc", "coo", "matrix", "mat", "mats", "matrices",
    "perm", "order", "tiled", "panels", "X", "Y", "x", "dense",
}


def _float_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, float)
    )


@register
class FloatEqualityRule(Rule):
    """RD201: ``==`` / ``!=`` against a float literal."""

    code = "RD201"
    name = "float-equality"
    summary = (
        "exact == / != comparison with a float literal; use math.isclose / "
        "np.isclose or an integer sentinel"
    )

    def visit(self, ctx: FileContext):
        """Flag equality comparisons where any operand is a float literal."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(_float_constant(o) for o in (node.left, right)):
                    yield ctx.finding(
                        node, self.code,
                        "exact float comparison; prefer math.isclose / "
                        "np.isclose (or an integer/None sentinel)",
                    )
                    break
            del operands


@register
class IndexNarrowingRule(Rule):
    """RD202: ``astype`` to an integer dtype narrower than int64.

    Column indices and row pointers are int64 by invariant; a narrowing
    cast silently wraps on matrices past 2³¹ non-zeros.
    """

    code = "RD202"
    name = "index-narrowing-astype"
    summary = (
        "astype to a sub-int64 integer dtype can silently truncate indices; "
        "keep indices int64 or bounds-check first"
    )

    @staticmethod
    def _names_narrow_dtype(node: ast.AST) -> str | None:
        if isinstance(node, ast.Attribute) and node.attr in _NARROW_INTS:
            return node.attr
        if isinstance(node, ast.Name) and node.id in _NARROW_INTS:
            return node.id
        if isinstance(node, ast.Constant) and node.value in _NARROW_INTS:
            return str(node.value)
        return None

    def visit(self, ctx: FileContext):
        """Flag ``x.astype(<narrow int dtype>)`` calls."""
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                continue
            targets = list(node.args[:1]) + [
                kw.value for kw in node.keywords if kw.arg == "dtype"
            ]
            for target in targets:
                dtype = self._names_narrow_dtype(target)
                if dtype is not None:
                    yield ctx.finding(
                        node, self.code,
                        f"astype({dtype}) narrows below int64 and can "
                        "silently truncate index values",
                    )
                    break


#: Allocation constructors whose dtype silently defaults to float64.
_DEFAULT_FLOAT64_ALLOCS = {"empty", "zeros", "ones", "full"}


@register
class ImplicitUpcastAllocRule(Rule):
    """RD204: dtype-less array allocation in compiled-backend code.

    ``np.empty``/``zeros``/``ones``/``full`` default to float64.  Backend
    kernels are dtype-polymorphic (the differential matrix runs them at
    float32 *and* float64), so a dtype-less allocation silently upcasts
    every float32 cell — the results then differ from the numpy reference
    at exactly the ULP the tests pin.  The fix is always to name the
    dtype: ``dtype=X.dtype`` to follow the operand, or ``np.float64``
    when widening is the contract (as for SpMM outputs).
    """

    code = "RD204"
    name = "implicit-upcast-alloc"
    summary = (
        "array allocation without an explicit dtype defaults to float64 "
        "and silently upcasts float32 backend kernels"
    )
    scope_key = "backend-paths"

    def visit(self, ctx: FileContext):
        """Flag ``np.empty/zeros/ones/full(...)`` calls without ``dtype``."""
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DEFAULT_FLOAT64_ALLOCS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("np", "numpy")
            ):
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            # np.full's second positional is the fill value, never a
            # dtype; for the others a dtype may ride as the second
            # positional argument.
            if node.func.attr != "full" and len(node.args) >= 2:
                continue
            yield ctx.finding(
                node, self.code,
                f"np.{node.func.attr}(...) without dtype= allocates float64; "
                "backend kernels must name the dtype explicitly "
                "(dtype=X.dtype, or np.float64 when widening is intended)",
            )


@register
class UncheckedEntryPointRule(Rule):
    """RD203: public sparse entry point without operand validation.

    Applies to module-level public functions of the scoped packages whose
    parameters include a recognised operand name (``csr``, ``perm``,
    ``X``, …).  Each such parameter must be argument to a ``check_*`` call,
    receiver of a ``.validate()`` call, or the function must carry a
    ``@checked(...)`` contract decorator.
    """

    code = "RD203"
    name = "unchecked-entry-point"
    summary = (
        "public entry point takes a sparse/dense operand but neither "
        "check_*-validates it nor carries a @checked contract"
    )
    scope_key = "entrypoint-paths"

    @staticmethod
    def _has_checked_decorator(fn: ast.FunctionDef) -> bool:
        for deco in fn.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if isinstance(target, ast.Name) and target.id == "checked":
                return True
            if isinstance(target, ast.Attribute) and target.attr == "checked":
                return True
        return False

    @staticmethod
    def _validated_names(fn: ast.FunctionDef) -> set:
        """Names passed to ``check_*`` calls or receiving ``.validate()``."""
        names: set = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id.startswith("check_"):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if isinstance(arg, ast.Name):
                        names.add(arg.id)
                    elif isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        names.add(arg.value)
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "validate"
                and isinstance(func.value, ast.Name)
            ):
                names.add(func.value.id)
        return names

    def visit(self, ctx: FileContext):
        """Flag unvalidated operand parameters of public entry points."""
        module = ctx.tree
        if not isinstance(module, ast.Module):
            return
        for stmt in module.body:
            if not isinstance(stmt, ast.FunctionDef) or stmt.name.startswith("_"):
                continue
            params = [
                a.arg
                for a in (
                    stmt.args.posonlyargs + stmt.args.args + stmt.args.kwonlyargs
                )
            ]
            operands = [p for p in params if p in _OPERAND_PARAMS]
            if not operands:
                continue
            if self._has_checked_decorator(stmt):
                continue
            validated = self._validated_names(stmt)
            for param in operands:
                if param not in validated:
                    yield ctx.finding(
                        stmt, self.code,
                        f"public entry point {stmt.name}() does not validate "
                        f"operand {param!r}; add @checked(validates({param!r})) "
                        "or a check_* call",
                    )
