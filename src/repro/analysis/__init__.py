"""reprolint — codebase-specific static analysis for the repro library.

An AST-based lint pass enforcing the invariants this reproduction's
results depend on but Python cannot type-check: bit-deterministic
reordering (RD1xx), numerically safe index/value handling (RD2xx),
library hygiene (RD3xx), and the inter-procedural dataflow families
(RD4xx nondeterminism taint, RD5xx dtype propagation, RD6xx purity —
see :mod:`repro.analysis.dataflow` and ``docs/ANALYSIS.md``).
Configured through ``[tool.reprolint]`` in ``pyproject.toml``;
individual findings are silenced inline with
``# reprolint: disable=RD103 -- justification``.

Run it as ``repro lint src/ tests/`` or ``python -m repro.analysis``;
programmatic use::

    from repro.analysis import lint_paths, load_config
    findings = lint_paths(["src"], load_config())

The runtime complement is :mod:`repro.contracts`, which executes the same
``validate()`` / ``check_*`` machinery at function boundaries when
``REPRO_CONTRACTS=1``.
"""

from repro.analysis.config import DEFAULT_SCOPES, LintConfig, load_config
from repro.analysis.core import REGISTRY, Finding, ProjectRule, Rule, all_rules
from repro.analysis.report import render_json, render_text
from repro.analysis.runner import lint_file, lint_paths, lint_session, lint_source

__all__ = [
    "Finding",
    "Rule",
    "ProjectRule",
    "REGISTRY",
    "all_rules",
    "LintConfig",
    "DEFAULT_SCOPES",
    "load_config",
    "lint_paths",
    "lint_file",
    "lint_source",
    "lint_session",
    "render_text",
    "render_json",
]
