"""Row-similarity substrate: exact Jaccard and MinHash/LSH.

The paper (§3.2) defines row similarity as the Jaccard similarity of the
rows' column-index sets and uses MinHash + banded locality-sensitive hashing
to generate candidate pairs without computing all :math:`N^2` similarities.
This package implements both the exact measures (:mod:`repro.similarity.jaccard`)
and the approximate machinery (:mod:`repro.similarity.minhash`,
:mod:`repro.similarity.lsh`).
"""

from repro.similarity.jaccard import (
    average_consecutive_similarity,
    consecutive_similarities,
    jaccard_for_pairs,
    jaccard_rows,
    pairwise_jaccard_dense,
)
from repro.similarity.measures import MEASURES, similarity_for_pairs
from repro.similarity.minhash import minhash_signatures
from repro.similarity.lsh import LSHIndex, lsh_candidate_pairs

__all__ = [
    "average_consecutive_similarity",
    "consecutive_similarities",
    "jaccard_for_pairs",
    "jaccard_rows",
    "pairwise_jaccard_dense",
    "MEASURES",
    "similarity_for_pairs",
    "minhash_signatures",
    "LSHIndex",
    "lsh_candidate_pairs",
]
