"""Banded locality-sensitive hashing over MinHash signatures.

The signature matrix is split into ``siglen / bsize`` bands of ``bsize``
rows each (the paper's ``bsize``; they use 2).  Rows whose signatures agree
on *all* positions of at least one band land in the same bucket of that band
and become a candidate pair.  With band size :math:`b` the probability that
two rows of Jaccard similarity :math:`s` become candidates in one band is
:math:`s^b`, so smaller ``bsize`` admits less-similar pairs — exactly the
paper's description ("the smaller the bsize, the more likely two nodes will
be hashed into the same bucket").

The expensive part — grouping equal band-slices — is vectorised: each band
slice is compressed to one ``int64`` key with a random linear hash, then a
single ``argsort`` groups equal keys.  Linear-hash collisions can produce
false-positive candidates; that is harmless because every candidate pair is
re-scored with the *exact* similarity measure before clustering.

Buckets larger than ``bucket_cap`` are not expanded quadratically (a single
degenerate bucket — e.g. all empty rows — would otherwise produce millions
of pairs); instead each member is paired with the next ``bucket_cap``
members in bucket order, which keeps the candidate graph connected inside
the bucket while bounding the pair count.  ``bucket_cap=None`` disables the
cap for exact-recall experiments.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.observability.metrics import METRICS
from repro.observability.tracing import span
from repro.similarity.minhash import EMPTY_ROW_SENTINEL, minhash_signatures
from repro.sparse.csr import CSRMatrix
from repro.util.rng import as_generator
from repro.util.validation import check_positive

__all__ = [
    "lsh_candidate_pairs",
    "LSHIndex",
    "band_mixers",
    "band_keys_matrix",
    "pairs_from_band_keys",
]


def band_mixers(siglen: int, bsize: int, seed=None) -> np.ndarray:
    """The ``(nbands, bsize)`` band-compression mix vectors for ``seed``.

    Drawn in exactly the per-band order :func:`lsh_candidate_pairs` draws
    them, so keys computed from these mixers are identical to the keys of
    a from-scratch banding pass — the contract the incremental
    :mod:`repro.streaming` state relies on.
    """
    bsize = check_positive("bsize", bsize)
    if siglen % bsize != 0:
        raise ValidationError(f"bsize={bsize} must divide siglen={siglen}")
    rng = as_generator(seed)
    nbands = siglen // bsize
    # One draw per band, in band order — consumes the generator stream in
    # exactly the chunks the historical per-band loop consumed it, so the
    # mixers (and therefore every bucket key) are bit-identical to what
    # any previously built plan used.
    return np.stack(
        [rng.integers(1, 2**61, size=bsize, dtype=np.int64) for _ in range(nbands)]
    )


def band_keys_matrix(signatures: np.ndarray, mixers: np.ndarray) -> np.ndarray:
    """Per-band bucket keys for every signature row.

    Returns an ``(n_rows, nbands)`` int64 matrix whose column ``b`` holds
    the band-``b`` bucket key of each row — two rows share an LSH bucket
    in band ``b`` exactly when their keys agree (modulo the harmless
    linear-hash collisions noted in the module docstring).  Row ``i``'s
    keys depend only on ``signatures[i]``, which is what makes dirty-row
    re-bucketing in :mod:`repro.streaming` exact.
    """
    signatures = np.asarray(signatures)
    nbands, bsize = mixers.shape
    banded = signatures.reshape(signatures.shape[0], nbands, bsize)
    # Overflowing multiply-add is fine: wrap-around keeps the map
    # deterministic, and modular int64 addition is order-independent so
    # the batched sum matches a per-band loop bit for bit.
    with np.errstate(over="ignore"):
        return (banded * mixers[None, :, :]).sum(axis=2, dtype=np.int64)


def pairs_from_band_keys(
    keys: np.ndarray,
    rows: np.ndarray,
    n_rows: int,
    *,
    bucket_cap: int | None = 64,
    deadline=None,
) -> np.ndarray:
    """Expand an ``(m, nbands)`` band-key matrix into candidate pairs.

    ``keys[i]`` are the per-band bucket keys of ``rows[i]`` (an int64 map
    back to original row ids, after any empty-row filtering); ``n_rows``
    is the full matrix height used to canonicalise/deduplicate pairs.
    This is the exact tail of :func:`lsh_candidate_pairs` — bucketing by
    stable argsort per band, capped expansion, then global dedupe — so a
    caller that maintains ``keys`` incrementally gets the same pairs a
    from-scratch pass would produce.
    """
    chunks: list[np.ndarray] = []
    for band_idx in range(keys.shape[1]):
        if deadline is not None:
            deadline.check("lsh")
        band_keys = keys[:, band_idx]
        order = np.argsort(band_keys, kind="stable")
        sorted_keys = band_keys[order]
        boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [sorted_keys.size]])
        chunks.extend(_pairs_in_buckets(order, starts, ends, bucket_cap))

    if not chunks:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.concatenate(chunks, axis=0)
    # Map local (post-filter) indices back to original row ids and
    # canonicalise as (min, max).
    pairs = rows[pairs]
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    pair_keys = lo * np.int64(n_rows) + hi
    uniq = np.unique(pair_keys)
    return np.stack([uniq // n_rows, uniq % n_rows], axis=1)


#: Cache of ``np.triu_indices(size, k=1)`` results.  Buckets are small and
#: sizes repeat constantly (profiling showed >170K triu_indices calls per
#: corpus matrix), so memoising removes the dominant preprocessing cost.
#: The cache is module-global and therefore shared by every thread of the
#: serving path: access is serialised by a lock, and the entry count is
#: bounded (distinct bucket sizes could otherwise grow without limit over
#: a long-lived process) — on overflow the oldest entries are dropped,
#: FIFO, which is plenty since real workloads cycle through a small set
#: of small sizes.
_TRIU_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}
_TRIU_CACHE_LOCK = threading.Lock()
_TRIU_CACHE_MAX_ENTRIES = 512
_TRIU_CACHE_MAX_SIZE = 4096  # don't keep giant one-off buckets alive


def _triu(size: int) -> tuple[np.ndarray, np.ndarray]:
    """Memoised upper-triangle index pairs for a ``size``-member bucket."""
    with _TRIU_CACHE_LOCK:
        cached = _TRIU_CACHE.get(size)
    if cached is None:
        cached = np.triu_indices(size, k=1)
        if size <= _TRIU_CACHE_MAX_SIZE:
            with _TRIU_CACHE_LOCK:
                while len(_TRIU_CACHE) >= _TRIU_CACHE_MAX_ENTRIES:
                    _TRIU_CACHE.pop(next(iter(_TRIU_CACHE)))
                _TRIU_CACHE[size] = cached
    return cached


def _pairs_in_buckets(order: np.ndarray, starts: np.ndarray, ends: np.ndarray,
                      bucket_cap: int | None) -> list[np.ndarray]:
    """Expand sorted buckets ``order[starts[k]:ends[k]]`` into index pairs.

    Vectorised by *bucket size*: all buckets of size ``z`` (below the cap)
    are expanded in one batched gather — corpus matrices produce ~100K
    tiny buckets per band set, so per-bucket NumPy calls dominate if
    expanded one at a time (measured: ~5 s/matrix before batching).
    """
    sizes = ends - starts
    chunks: list[np.ndarray] = []

    small = sizes >= 2
    if bucket_cap is not None:
        small &= sizes <= bucket_cap
    small_sizes = sizes[small]
    small_starts = starts[small]
    for z in np.unique(small_sizes).tolist():
        bucket_starts = small_starts[small_sizes == z]
        # (n_buckets, z) member matrix, then one gather per triangle side.
        members = order[bucket_starts[:, None] + np.arange(z, dtype=np.int64)]
        ii, jj = _triu(z)
        pairs = np.empty((bucket_starts.size * ii.size, 2), dtype=np.int64)
        pairs[:, 0] = members[:, ii].ravel()
        pairs[:, 1] = members[:, jj].ravel()
        chunks.append(pairs)

    if bucket_cap is not None:
        for s, e in zip(starts[sizes > bucket_cap].tolist(),
                        ends[sizes > bucket_cap].tolist()):
            members = order[s:e]
            # Sliding-window pairing: member k pairs with the next
            # `bucket_cap` members.  Produces O(size * cap) pairs.
            parts = []
            for d in range(1, bucket_cap + 1):
                parts.append(np.stack([members[:-d], members[d:]], axis=1))
            chunks.append(np.concatenate(parts, axis=0))
    return chunks


def lsh_candidate_pairs(
    signatures: np.ndarray,
    bsize: int,
    *,
    seed=None,
    bucket_cap: int | None = 64,
    skip_empty_sentinel: bool = True,
    deadline=None,
) -> np.ndarray:
    """Generate candidate row pairs from a MinHash signature matrix.

    Parameters
    ----------
    signatures:
        ``(n_rows, siglen)`` int64 signature matrix.
    bsize:
        Band size; must divide ``siglen``.
    seed:
        RNG for the band-compression hash.
    bucket_cap:
        Cap on quadratic bucket expansion (see module docstring).
    skip_empty_sentinel:
        Drop rows whose whole signature is the empty-row sentinel (they have
        no columns, hence zero similarity to everything).
    deadline:
        Optional :class:`repro.resilience.Deadline`, polled once per band
        (each band is a complete unit of work, so cancellation is clean).

    Returns
    -------
    numpy.ndarray
        ``(E, 2)`` int64 array of unique pairs with ``i < j``, sorted
        lexicographically.
    """
    signatures = np.asarray(signatures)
    if signatures.ndim != 2:
        raise ValidationError(f"signatures must be 2-D, got shape {signatures.shape}")
    n_rows, siglen = signatures.shape
    bsize = check_positive("bsize", bsize)
    if siglen % bsize != 0:
        raise ValidationError(f"bsize={bsize} must divide siglen={siglen}")
    if n_rows < 2:
        return np.empty((0, 2), dtype=np.int64)

    rows = np.arange(n_rows, dtype=np.int64)
    if skip_empty_sentinel:
        nonempty = ~(signatures == EMPTY_ROW_SENTINEL).all(axis=1)
        rows = rows[nonempty]
        signatures = signatures[nonempty]
        if rows.size < 2:
            return np.empty((0, 2), dtype=np.int64)

    mixers = band_mixers(siglen, bsize, seed)
    keys = band_keys_matrix(signatures, mixers)
    return pairs_from_band_keys(
        keys, rows, n_rows, bucket_cap=bucket_cap, deadline=deadline
    )


@dataclass(frozen=True)
class LSHIndex:
    """Convenience wrapper bundling the paper's LSH parameters.

    Mirrors the black-box ``LSH(S, siglen, bsize)`` call of Alg. 3: given a
    CSR matrix, produce candidate pairs and their *exact* similarities
    (Jaccard by default), optionally filtered by a minimum similarity.

    Attributes
    ----------
    siglen:
        Signature length (paper default 128).
    bsize:
        Band size (paper default 2).
    seed:
        Seed for both MinHash and band hashing (deterministic preprocessing).
    bucket_cap:
        See :func:`lsh_candidate_pairs`.
    min_similarity:
        Candidates with exact similarity strictly below this are dropped.
        The default 0 keeps everything LSH returned (the paper filters only
        implicitly through the banding probability).
    measure:
        Scoring measure for candidate pairs (``"jaccard"`` — the paper's
        choice — or any of :data:`repro.similarity.MEASURES`).  MinHash
        banding always approximates *Jaccard* recall; alternative measures
        only re-rank the candidates it returns.
    """

    siglen: int = 128
    bsize: int = 2
    seed: int = 0
    bucket_cap: int | None = 64
    min_similarity: float = 0.0
    measure: str = "jaccard"

    def candidate_pairs(
        self, csr: CSRMatrix, *, deadline=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(pairs, similarities)`` for ``csr``.

        ``pairs`` is ``(E, 2)`` int64 with ``i < j``; ``similarities`` the
        matching exact values under :attr:`measure`.  Pairs with zero
        similarity (pure LSH/banding false positives) are always dropped —
        they can never improve data reuse.  ``deadline`` is threaded into
        both the MinHash and banding passes (see
        :class:`repro.resilience.Deadline`).
        """
        signatures = minhash_signatures(
            csr, self.siglen, seed=self.seed, deadline=deadline
        )
        with span("lsh", rows=csr.n_rows, bsize=self.bsize):
            pairs = lsh_candidate_pairs(
                signatures,
                self.bsize,
                seed=self.seed + 1,
                bucket_cap=self.bucket_cap,
                deadline=deadline,
            )
        if pairs.shape[0] == 0:
            return pairs, np.zeros(0, dtype=np.float64)
        from repro.similarity.measures import similarity_for_pairs

        with span("score_pairs", pairs=int(pairs.shape[0])):
            sims = similarity_for_pairs(csr, pairs, self.measure)
        METRICS.counter(
            "clustering.pairs_scored", "similarity evaluations during clustering"
        ).inc(int(pairs.shape[0]))
        threshold = max(self.min_similarity, np.finfo(np.float64).tiny)
        keep = sims >= threshold
        return pairs[keep], sims[keep]
