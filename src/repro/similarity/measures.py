"""Alternative set-similarity measures (extension beyond the paper).

The paper scores candidate pairs with Jaccard similarity.  Any monotone
set-overlap measure could drive the clustering, and the choice shifts which
pairs merge first: *cosine* favours overlaps between rows of different
lengths less harshly than Jaccard, and the *overlap coefficient* favours
subset relations (a short row fully contained in a long one scores 1.0).
``benchmarks/bench_ablation_similarity.py`` compares them as reordering
drivers.

All measures here are structural (computed on the stored column supports)
and share the vectorised batch machinery of :mod:`repro.similarity.jaccard`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.similarity.jaccard import _intersection_sizes
from repro.sparse.csr import CSRMatrix

__all__ = ["similarity_for_pairs", "MEASURES"]

#: Names accepted by :func:`similarity_for_pairs`.
MEASURES = ("jaccard", "cosine", "overlap", "dice")


def similarity_for_pairs(
    csr: CSRMatrix, pairs: np.ndarray, measure: str = "jaccard"
) -> np.ndarray:
    """Batch similarity of row pairs under the chosen measure.

    =========  =====================================================
    measure    definition for supports A, B
    =========  =====================================================
    jaccard    ``|A ∩ B| / |A ∪ B|``
    cosine     ``|A ∩ B| / sqrt(|A| |B|)``
    overlap    ``|A ∩ B| / min(|A|, |B|)``  (overlap coefficient)
    dice       ``2 |A ∩ B| / (|A| + |B|)``  (Sørensen–Dice)
    =========  =====================================================

    Pairs involving an empty row score 0 under every measure.
    """
    if measure not in MEASURES:
        raise ValidationError(
            f"unknown measure {measure!r}; expected one of {MEASURES}"
        )
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or (pairs.size and pairs.shape[1] != 2):
        raise ValidationError(f"pairs must have shape (E, 2), got {pairs.shape}")
    if pairs.shape[0] == 0:
        return np.zeros(0, dtype=np.float64)

    left, right = pairs[:, 0], pairs[:, 1]
    if pairs.size and (pairs.min() < 0 or pairs.max() >= csr.n_rows):
        raise ValidationError("pair index out of range")
    inter = _intersection_sizes(csr, left, right).astype(np.float64)
    lengths = csr.row_lengths().astype(np.float64)
    a, b = lengths[left], lengths[right]

    out = np.zeros(pairs.shape[0], dtype=np.float64)
    if measure == "jaccard":
        denom = a + b - inter
    elif measure == "cosine":
        denom = np.sqrt(a * b)
    elif measure == "overlap":
        denom = np.minimum(a, b)
    else:  # dice
        denom = a + b
        inter = 2.0 * inter
    nz = denom > 0
    out[nz] = inter[nz] / denom[nz]
    return out
