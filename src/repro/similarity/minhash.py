"""MinHash signatures of sparse-matrix rows.

MinHash approximates Jaccard similarity: for a random hash function ``h``
over the column universe, :math:`\\Pr[\\min h(S_i) = \\min h(S_j)] =
J(S_i, S_j)`.  A *signature* stacks ``siglen`` independent minima, so the
fraction of agreeing signature positions is an unbiased estimator of the
Jaccard similarity (Leskovec, Rajaraman & Ullman, "Mining of Massive
Datasets", ch. 3 — the paper's reference [28]).

Implementation notes (this is the embarrassingly parallel half of the
paper's preprocessing, which they parallelise with OpenMP; we vectorise it
with NumPy instead): hash functions are the classic universal family
``h(c) = (a*c + b) mod p`` with a Mersenne prime ``p = 2^31 - 1``.  Products
stay below :math:`2^{62}` so plain ``int64`` arithmetic is exact.  Each of
the ``siglen`` functions costs one ``O(nnz)`` vectorised pass using
``np.minimum.reduceat`` over the CSR row segments.
"""

from __future__ import annotations

import numpy as np

from repro.observability.tracing import span
from repro.resilience.faults import fault_point
from repro.sparse.csr import CSRMatrix
from repro.util.rng import as_generator
from repro.util.validation import check_positive

__all__ = ["minhash_signatures", "MERSENNE_PRIME", "EMPTY_ROW_SENTINEL"]

#: Hash functions evaluated per blocked pass.  Bounds the ``(block, nnz)``
#: scratch while amortising the per-function NumPy call overhead; 32
#: functions x a corpus-scale nnz stays well inside the last-level cache.
HASH_BLOCK = 32

#: Modulus of the universal hash family.  2**31 - 1 keeps a*c + b < 2**62.
MERSENNE_PRIME = np.int64(2**31 - 1)

#: Signature value assigned to empty rows.  Equal to the modulus, hence
#: unreachable by any real hash value, so empty rows never collide with
#: non-empty rows (and deliberately *do* collide with each other — grouping
#: empty rows together is harmless).
EMPTY_ROW_SENTINEL = np.int64(MERSENNE_PRIME)


def minhash_signatures(
    csr: CSRMatrix, siglen: int, seed=None, *, deadline=None
) -> np.ndarray:
    """Compute MinHash signatures for every row of ``csr``.

    Parameters
    ----------
    csr:
        Input matrix; each row's support set is hashed.
    siglen:
        Number of hash functions (the paper's ``siglen``; they use 128).
    seed:
        Anything accepted by :func:`repro.util.rng.as_generator`.
    deadline:
        Optional :class:`repro.resilience.Deadline`, polled once per hash
        block (between complete ``O(nnz)`` passes, so cancellation never
        leaves partial state).

    Returns
    -------
    numpy.ndarray
        ``int64`` array of shape ``(n_rows, siglen)``.
    """
    siglen = check_positive("siglen", siglen)
    fault_point("clustering.minhash")
    with span("minhash", rows=csr.n_rows, nnz=csr.nnz, siglen=siglen):
        rng = as_generator(seed)
        n_rows = csr.n_rows
        out = np.empty((n_rows, siglen), dtype=np.int64)
        if n_rows == 0:
            return out

        p = MERSENNE_PRIME
        # a must be non-zero mod p for the family to be universal.
        a = rng.integers(1, int(p), size=siglen, dtype=np.int64)
        b = rng.integers(0, int(p), size=siglen, dtype=np.int64)

        cols = csr.colidx % p  # column universe folded into the field
        lengths = csr.row_lengths()
        empty = lengths == 0
        nonempty = np.flatnonzero(lengths > 0)
        if nonempty.size:
            starts = np.ascontiguousarray(csr.rowptr[:-1][nonempty])
            # Hash functions are evaluated in blocks of HASH_BLOCK: one
            # broadcast multiply-add-mod produces a (block, nnz) matrix whose
            # *rows* are contiguous, so the per-row segment minima reduce
            # along contiguous memory.  ``a*c + b < 2**62``, so the blocked
            # int64 arithmetic is exact — signatures are identical to the
            # one-function-at-a-time evaluation.
            block = max(1, min(HASH_BLOCK, siglen))
            hashed = np.empty((block, csr.nnz), dtype=np.int64)
            for k0 in range(0, siglen, block):
                if deadline is not None:
                    deadline.check("minhash")
                k1 = min(k0 + block, siglen)
                h = hashed[: k1 - k0]
                np.multiply(a[k0:k1, None], cols[None, :], out=h)
                h += b[k0:k1, None]
                h %= p
                out[nonempty, k0:k1] = np.minimum.reduceat(h, starts, axis=1).T
        if empty.any():
            out[empty, :] = EMPTY_ROW_SENTINEL
        return out
