"""Exact Jaccard similarity between sparse-matrix rows.

A row :math:`i` is viewed as the set :math:`S_i` of its column indices; the
paper defines

.. math:: J(S_i, S_j) = \\frac{|S_i \\cap S_j|}{|S_i \\cup S_j|}.

Three access patterns are needed by the rest of the library and each gets a
dedicated, fully vectorised implementation:

* a single pair (:func:`jaccard_rows`) — merge of two sorted views;
* a batch of pairs (:func:`jaccard_for_pairs`) — used on LSH candidate
  pairs; one lexsort over the concatenated supports, no Python loop over
  pairs;
* all consecutive pairs (:func:`consecutive_similarities`) — the §4
  "is this matrix already clustered?" indicator.

The convention for empty sets follows the natural limit: two empty rows have
similarity 0 (there is no data reuse between them either way, so treating
them as dissimilar is both safe and what the heuristics expect).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_integer_array

__all__ = [
    "jaccard_rows",
    "jaccard_for_pairs",
    "consecutive_similarities",
    "average_consecutive_similarity",
    "pairwise_jaccard_dense",
]


def jaccard_rows(csr: CSRMatrix, i: int, j: int) -> float:
    """Exact Jaccard similarity between rows ``i`` and ``j``."""
    a = csr.row_cols(i)
    b = csr.row_cols(j)
    if a.size == 0 and b.size == 0:
        return 0.0
    inter = np.intersect1d(a, b, assume_unique=True).size
    union = a.size + b.size - inter
    return inter / union


def _intersection_sizes(csr: CSRMatrix, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Vectorised ``|S_left[k] ∩ S_right[k]|`` for parallel index arrays.

    Strategy: tag every column index of every involved row with its pair id,
    concatenate both sides, sort by (pair, column) and count adjacent equal
    (pair, column) entries.  Because rows are canonical (no duplicate columns
    within a row), an adjacent duplicate can only arise from one column
    present on *both* sides of a pair.
    """
    lengths = csr.row_lengths()
    nl = lengths[left]
    nr = lengths[right]
    total = int(nl.sum() + nr.sum())
    if total == 0:
        return np.zeros(left.size, dtype=np.int64)

    pair_ids = np.empty(total, dtype=np.int64)
    cols = np.empty(total, dtype=np.int64)
    # Gather the supports of the left rows then the right rows.
    pos = 0
    for rows, counts in ((left, nl), (right, nr)):
        chunk = int(counts.sum())
        if chunk == 0:
            continue
        from repro.util.arrayops import counts_to_offsets, offsets_to_row_ids

        offsets = counts_to_offsets(counts)
        which_pair = offsets_to_row_ids(offsets)
        starts = csr.rowptr[:-1][rows]
        gather = starts[which_pair] + (
            np.arange(chunk, dtype=np.int64) - offsets[:-1][which_pair]
        )
        pair_ids[pos : pos + chunk] = which_pair
        cols[pos : pos + chunk] = csr.colidx[gather]
        pos += chunk

    order = np.lexsort((cols, pair_ids))
    p = pair_ids[order]
    c = cols[order]
    dup = (p[1:] == p[:-1]) & (c[1:] == c[:-1])
    inter = np.zeros(left.size, dtype=np.int64)
    if dup.any():
        np.add.at(inter, p[1:][dup], 1)
    return inter


def jaccard_for_pairs(csr: CSRMatrix, pairs: np.ndarray) -> np.ndarray:
    """Exact Jaccard similarity for each row pair in ``pairs``.

    Parameters
    ----------
    csr:
        The sparse matrix whose rows are compared.
    pairs:
        Integer array of shape ``(E, 2)``.

    Returns
    -------
    numpy.ndarray
        ``float64`` array of length ``E``.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or (pairs.size and pairs.shape[1] != 2):
        raise ValueError(f"pairs must have shape (E, 2), got {pairs.shape}")
    if pairs.size == 0:
        return np.zeros(0, dtype=np.float64)
    left = check_integer_array("pairs[:,0]", pairs[:, 0], min_value=0, max_value=csr.n_rows - 1)
    right = check_integer_array("pairs[:,1]", pairs[:, 1], min_value=0, max_value=csr.n_rows - 1)
    inter = _intersection_sizes(csr, left, right)
    lengths = csr.row_lengths()
    union = lengths[left] + lengths[right] - inter
    out = np.zeros(pairs.shape[0], dtype=np.float64)
    nonzero = union > 0
    out[nonzero] = inter[nonzero] / union[nonzero]
    return out


def consecutive_similarities(csr: CSRMatrix) -> np.ndarray:
    """Jaccard similarity of each pair of consecutive rows.

    Returns an array of length ``n_rows - 1`` (empty for matrices with fewer
    than two rows).
    """
    n = csr.n_rows
    if n < 2:
        return np.zeros(0, dtype=np.float64)
    idx = np.arange(n - 1, dtype=np.int64)
    pairs = np.stack([idx, idx + 1], axis=1)
    return jaccard_for_pairs(csr, pairs)


def average_consecutive_similarity(csr: CSRMatrix) -> float:
    """The §4 clustering indicator: mean Jaccard over consecutive row pairs.

    The paper skips the second reordering round when this exceeds 0.1
    (the rows are already well clustered).  Returns 0.0 for matrices with
    fewer than two rows.
    """
    sims = consecutive_similarities(csr)
    return float(sims.mean()) if sims.size else 0.0


def pairwise_jaccard_dense(csr: CSRMatrix) -> np.ndarray:
    """Full ``n_rows x n_rows`` Jaccard matrix.

    Quadratic in both time and memory — this exists for tests, for tiny
    matrices, and as the brute-force oracle against which LSH recall is
    measured.  The diagonal is 1 for non-empty rows and 0 for empty ones.
    """
    n = csr.n_rows
    # Structural pattern from the *stored* entries (explicit zeros are
    # stored entries and count towards the support, consistently with
    # :func:`jaccard_rows`).
    pattern = np.zeros(csr.shape, dtype=np.float64)
    if csr.nnz:
        pattern[csr.row_ids(), csr.colidx] = 1.0
    inter = pattern @ pattern.T
    sizes = pattern.sum(axis=1)
    union = sizes[:, None] + sizes[None, :] - inter
    out = np.zeros((n, n), dtype=np.float64)
    nz = union > 0
    out[nz] = inter[nz] / union[nz]
    return out
