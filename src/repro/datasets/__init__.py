"""Synthetic dataset generators and the evaluation corpus.

The paper evaluates on 1084 real matrices (SuiteSparse + Network
Repository, filtered to >= 10K rows, >= 10K columns, >= 100K non-zeros).
Without network access this package provides generators for the structure
classes those repositories contain, and :func:`repro.datasets.build_corpus`
assembles a named, seeded corpus spanning them:

* *scattered* matrices (diagonal / banded / uniform-random) where no row
  reordering can help — the paper's Fig. 7b class;
* *pre-clustered* matrices where ASpT alone already captures the reuse and
  the §4 gates must skip reordering — the Fig. 7a class;
* *hidden-cluster* matrices (clustered rows shuffled into random order) —
  the class motivating the paper;
* *power-law graphs* (R-MAT), *small-world* graphs and *bipartite
  rating-style* matrices — the typical repository population in between.

Real ``.mtx`` files can be mixed in through
:func:`repro.sparse.read_matrix_market`; the experiment runner accepts any
``(name, matrix)`` iterable.
"""

from repro.datasets.synthetic import (
    banded,
    block_diagonal,
    diagonal,
    power_law_rows,
    staircase,
    uniform_random,
)
from repro.datasets.clustered import hidden_clusters, preclustered
from repro.datasets.graphs import rmat, small_world, bipartite_ratings, stochastic_block_model
from repro.datasets.corpus import CorpusEntry, build_corpus, corpus_summary
from repro.datasets.registry import GENERATORS, get_generator, list_generators
from repro.datasets.streams import MatrixStream, edge_stream, stream_corpus

__all__ = [
    "banded",
    "block_diagonal",
    "diagonal",
    "power_law_rows",
    "staircase",
    "uniform_random",
    "hidden_clusters",
    "preclustered",
    "rmat",
    "small_world",
    "bipartite_ratings",
    "stochastic_block_model",
    "CorpusEntry",
    "build_corpus",
    "corpus_summary",
    "GENERATORS",
    "get_generator",
    "list_generators",
    "MatrixStream",
    "edge_stream",
    "stream_corpus",
]
