"""Name-based generator registry (CLI support).

``repro generate hidden_clusters --args ...`` and the examples look
generators up by name here instead of importing modules directly.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.clustered import hidden_clusters, preclustered
from repro.datasets.graphs import bipartite_ratings, rmat, small_world, stochastic_block_model
from repro.datasets.synthetic import (
    banded,
    block_diagonal,
    diagonal,
    power_law_rows,
    staircase,
    uniform_random,
)
from repro.errors import DatasetError

__all__ = ["GENERATORS", "get_generator", "list_generators"]

#: Public registry: name -> generator callable.
GENERATORS: dict[str, Callable] = {
    "uniform_random": uniform_random,
    "banded": banded,
    "diagonal": diagonal,
    "block_diagonal": block_diagonal,
    "power_law_rows": power_law_rows,
    "staircase": staircase,
    "hidden_clusters": hidden_clusters,
    "preclustered": preclustered,
    "rmat": rmat,
    "small_world": small_world,
    "stochastic_block_model": stochastic_block_model,
    "bipartite_ratings": bipartite_ratings,
}


def get_generator(name: str) -> Callable:
    """Look up a generator by name, raising :class:`DatasetError` on miss."""
    try:
        return GENERATORS[name]
    except KeyError:
        raise DatasetError(
            f"unknown generator {name!r}; available: {', '.join(sorted(GENERATORS))}"
        ) from None


def list_generators() -> list[str]:
    """Sorted generator names."""
    return sorted(GENERATORS)
