"""Graph-shaped matrix generators (from scratch).

Real repository matrices are dominated by graphs; three canonical families
are generated here without external dependencies:

* :func:`rmat` — the R-MAT/Kronecker recursive generator behind the
  Graph500 benchmark (power-law degrees, community-ish structure);
* :func:`small_world` — Watts–Strogatz ring rewiring (strong neighbour
  locality, i.e. naturally pre-clustered);
* :func:`bipartite_ratings` — user x item rating-style rectangular
  matrices with item popularity skew and user-taste clusters (the
  collaborative-filtering workload motivating the paper's SDDMM use case).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.util.rng import as_generator
from repro.util.validation import check_in_range, check_positive

__all__ = ["rmat", "small_world", "bipartite_ratings", "stochastic_block_model"]


def rmat(
    scale: int,
    edge_factor: int = 8,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed=None,
) -> CSRMatrix:
    """R-MAT graph: ``2**scale`` vertices, ``edge_factor`` edges per vertex.

    Each edge picks its (row, column) bits independently with quadrant
    probabilities ``(a, b, c, d=1-a-b-c)`` — the standard recursive
    construction, fully vectorised (one ``(edges, scale)`` random matrix
    per coordinate bit-plane).
    """
    scale = check_positive("scale", scale)
    edge_factor = check_positive("edge_factor", edge_factor)
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError(f"quadrant probabilities must be non-negative, got d={d}")
    rng = as_generator(seed)
    n = 1 << scale
    n_edges = n * edge_factor
    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)
    for _bit in range(scale):
        r = rng.random(n_edges)
        # Quadrants in (row_bit, col_bit) order: a=(0,0) b=(0,1) c=(1,0) d=(1,1)
        row_bit = (r >= a + b).astype(np.int64)
        col_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(np.int64)
        rows = (rows << 1) | row_bit
        cols = (cols << 1) | col_bit
    values = rng.uniform(0.5, 1.5, size=n_edges)
    return COOMatrix.from_arrays((n, n), rows, cols, values).to_csr()


def small_world(n: int, k: int, p: float = 0.1, seed=None) -> CSRMatrix:
    """Watts–Strogatz graph: ring lattice of degree ``2k`` with rewiring
    probability ``p``.

    Low ``p`` keeps strong neighbour locality (pre-clustered); high ``p``
    approaches a random graph.
    """
    n = check_positive("n", n)
    k = check_positive("k", k)
    check_in_range("p", p, 0.0, 1.0)
    if 2 * k >= n:
        raise ValueError(f"need 2k < n, got k={k}, n={n}")
    rng = as_generator(seed)
    base = np.arange(n, dtype=np.int64)
    rows_list, cols_list = [], []
    for offset in range(1, k + 1):
        targets = (base + offset) % n
        rewire = rng.random(n) < p
        targets = targets.copy()
        targets[rewire] = rng.integers(0, n, size=int(rewire.sum()))
        rows_list.append(base)
        cols_list.append(targets)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    # Symmetrise (undirected) and drop self-loops from rewiring.
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    keep = all_rows != all_cols
    all_rows, all_cols = all_rows[keep], all_cols[keep]
    values = rng.uniform(0.5, 1.5, size=all_rows.size)
    return COOMatrix.from_arrays((n, n), all_rows, all_cols, values).to_csr()


def bipartite_ratings(
    n_users: int,
    n_items: int,
    mean_ratings: int,
    *,
    n_taste_groups: int = 8,
    concentration: float = 0.7,
    seed=None,
) -> CSRMatrix:
    """User x item rating matrix with taste clusters and popularity skew.

    Each user belongs to a taste group; a fraction ``concentration`` of a
    user's ratings fall inside the group's item pool (hidden cluster
    structure over *rows*), the rest are drawn from global popularity.
    """
    n_users = check_positive("n_users", n_users)
    n_items = check_positive("n_items", n_items)
    mean_ratings = check_positive("mean_ratings", mean_ratings)
    check_positive("n_taste_groups", n_taste_groups)
    check_in_range("concentration", concentration, 0.0, 1.0)
    rng = as_generator(seed)

    pool_size = max(1, n_items // n_taste_groups)
    pools = [
        rng.choice(n_items, size=pool_size, replace=False)
        for _ in range(n_taste_groups)
    ]
    group_of_user = rng.integers(0, n_taste_groups, size=n_users)

    lengths = np.maximum(1, rng.poisson(mean_ratings, size=n_users)).astype(np.int64)
    lengths = np.minimum(lengths, n_items)
    rows = np.repeat(np.arange(n_users, dtype=np.int64), lengths)
    total = int(lengths.sum())
    in_pool = rng.random(total) < concentration
    cols = np.empty(total, dtype=np.int64)
    # Global popularity: Zipf-ranked.
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    cdf = np.cumsum(ranks ** (-1.0))
    cdf /= cdf[-1]
    cols[~in_pool] = np.searchsorted(cdf, rng.random(int((~in_pool).sum())))
    # Pool picks: index into the user's group pool.
    pool_rows = rows[in_pool]
    pool_pick = rng.integers(0, pool_size, size=int(in_pool.sum()))
    pool_matrix = np.stack(pools)  # (groups, pool_size)
    cols[in_pool] = pool_matrix[group_of_user[pool_rows], pool_pick]
    cols = np.minimum(cols, n_items - 1)
    values = rng.uniform(0.5, 1.5, size=total)
    return COOMatrix.from_arrays((n_users, n_items), rows, cols, values).to_csr()


def stochastic_block_model(
    n_blocks: int,
    block_size: int,
    *,
    p_in: float = 0.2,
    p_out: float = 0.002,
    shuffle: bool = True,
    seed=None,
) -> CSRMatrix:
    """Stochastic block model: community graph with optional label shuffle.

    Vertices split into ``n_blocks`` communities of ``block_size``; an edge
    appears with probability ``p_in`` inside a community and ``p_out``
    across.  With ``shuffle=True`` the vertex labels are randomly permuted,
    hiding the community structure from consecutive-row heuristics — the
    graph analogue of :func:`repro.datasets.hidden_clusters` and the
    typical input for GNN workloads on social/citation networks.
    """
    check_positive("n_blocks", n_blocks)
    check_positive("block_size", block_size)
    check_in_range("p_in", p_in, 0.0, 1.0)
    check_in_range("p_out", p_out, 0.0, 1.0)
    rng = as_generator(seed)
    n = n_blocks * block_size

    rows_list, cols_list = [], []
    # Intra-community edges: dense sampling per block (block_size is small).
    for b in range(n_blocks):
        base = b * block_size
        mask = rng.random((block_size, block_size)) < p_in
        r, c = np.nonzero(mask)
        rows_list.append(base + r)
        cols_list.append(base + c)
    # Inter-community edges: sparse global sampling.
    expected_out = int(p_out * n * n)
    if expected_out:
        r = rng.integers(0, n, size=expected_out)
        c = rng.integers(0, n, size=expected_out)
        keep = (r // block_size) != (c // block_size)
        rows_list.append(r[keep])
        cols_list.append(c[keep])
    rows = np.concatenate(rows_list).astype(np.int64)
    cols = np.concatenate(cols_list).astype(np.int64)
    # Symmetrise and drop self-loops.
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    off_diag = all_rows != all_cols
    all_rows, all_cols = all_rows[off_diag], all_cols[off_diag]
    if shuffle:
        relabel = rng.permutation(n).astype(np.int64)
        all_rows = relabel[all_rows]
        all_cols = relabel[all_cols]
    values = rng.uniform(0.5, 1.5, size=all_rows.size)
    return COOMatrix.from_arrays((n, n), all_rows, all_cols, values).to_csr()
