"""Timestamped edge streams: the corpus for the streaming pipeline.

The streaming subsystem (:mod:`repro.streaming`) is exercised against
matrices that *drift* — graphs gaining edges, rating matrices gaining
users.  This module turns any generated matrix into such a workload:
:func:`edge_stream` decomposes it into a timestamped, exactly-replayable
:class:`MatrixStream`, and :func:`stream_corpus` assembles a named,
seeded set of streams spanning the same structure classes as the static
:func:`~repro.datasets.build_corpus`.

Exact replay is inherited from
:func:`~repro.streaming.split_into_deltas`: every non-zero is emitted by
exactly one delta, so folding the stream reproduces ``final`` bit for
bit — which is what lets the test battery compare an incrementally
maintained plan against a from-scratch build on the very same matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sparse.csr import CSRMatrix
from repro.streaming.delta import DeltaBatch, split_into_deltas
from repro.util.validation import check_positive

__all__ = ["MatrixStream", "edge_stream", "stream_corpus"]


@dataclass(frozen=True)
class MatrixStream:
    """One replayable delta stream: ``base`` + ``deltas`` -> ``final``.

    Attributes
    ----------
    name:
        Human-readable stream identity (corpus key).
    base:
        The matrix before the first event batch.
    deltas:
        The timestamped :class:`~repro.streaming.DeltaBatch` sequence, in
        event-time order (monotonically increasing ``timestamp``).
    final:
        The matrix after the whole stream — replaying ``deltas`` on
        ``base`` reproduces it bit for bit.
    """

    name: str
    base: CSRMatrix
    deltas: tuple
    final: CSRMatrix

    @property
    def n_batches(self) -> int:
        """Number of delta batches in the stream."""
        return len(self.deltas)

    @property
    def n_events(self) -> int:
        """Total non-zero events across all batches."""
        return sum(d.n_entries for d in self.deltas)

    def matrices(self):
        """Yield the matrix after each batch (ends at ``final``)."""
        csr = self.base
        for delta in self.deltas:
            csr = delta.apply_to(csr)
            yield csr


def edge_stream(
    csr: CSRMatrix,
    n_batches: int,
    *,
    name: str = "stream",
    seed=0,
    grow_rows: bool = True,
    start_time: float = 0.0,
    dt: float = 1.0,
) -> MatrixStream:
    """Decompose ``csr`` into a timestamped :class:`MatrixStream`.

    Batch ``b`` is stamped ``start_time + b * dt`` (event seconds,
    caller-defined epoch).  With ``grow_rows=True`` (the default
    workload) the stream starts from an empty matrix and appends row
    blocks with a trickle of later insertions into existing rows; with
    ``grow_rows=False`` the shape is fixed and batches only insert
    non-zeros.  Deterministic for a fixed ``(csr, n_batches, seed)``.
    """
    check_positive("n_batches", n_batches)
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt}")
    base, deltas = split_into_deltas(csr, n_batches, seed=seed, grow_rows=grow_rows)
    stamped = tuple(
        replace(d, timestamp=float(start_time) + i * float(dt))
        for i, d in enumerate(deltas)
    )
    return MatrixStream(name=name, base=base, deltas=stamped, final=csr)


def stream_corpus(seed=0, *, n_batches: int = 12) -> list[MatrixStream]:
    """A small named corpus of streams over the static structure classes.

    One stream per drifting-workload family the ROADMAP north-star
    serves: a power-law graph gaining edges (``rmat-growing``), a rating
    matrix gaining users (``ratings-growing``) and a pre-clustered
    small-world graph receiving in-place edge insertions at fixed shape
    (``small-world-infill``).  Deterministic for a fixed ``seed``.
    """
    from repro.datasets.graphs import bipartite_ratings, rmat, small_world

    seed = int(seed)
    specs = [
        ("rmat-growing", rmat(7, 8, seed=seed), True),
        (
            "ratings-growing",
            bipartite_ratings(384, 192, 10, seed=seed + 1),
            True,
        ),
        ("small-world-infill", small_world(256, 4, 0.05, seed=seed + 2), False),
    ]
    return [
        edge_stream(
            csr,
            n_batches,
            name=name,
            seed=seed + 10 + i,
            grow_rows=grow,
        )
        for i, (name, csr, grow) in enumerate(specs)
    ]
