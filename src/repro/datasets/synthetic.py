"""Basic synthetic matrix generators.

All generators take a ``seed`` (anything accepted by
:func:`repro.util.rng.as_generator`) and return a canonical
:class:`repro.sparse.CSRMatrix`.  Values are drawn uniform in ``[0.5, 1.5)``
— non-zero, O(1) magnitude, so kernels are numerically well-behaved.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.util.rng import as_generator
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["uniform_random", "banded", "diagonal", "block_diagonal", "power_law_rows", "staircase"]


def _values(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.uniform(0.5, 1.5, size=n)


def uniform_random(m: int, n: int, nnz_per_row: int, seed=None) -> CSRMatrix:
    """Erdős–Rényi-style matrix: each row draws ``nnz_per_row`` columns
    uniformly (with replacement, then deduplicated — actual row lengths may
    be slightly below the target)."""
    m = check_positive("m", m)
    n = check_positive("n", n)
    nnz_per_row = check_positive("nnz_per_row", nnz_per_row)
    rng = as_generator(seed)
    rows = np.repeat(np.arange(m, dtype=np.int64), nnz_per_row)
    cols = rng.integers(0, n, size=m * nnz_per_row, dtype=np.int64)
    return COOMatrix.from_arrays((m, n), rows, cols, _values(rng, rows.size)).to_csr()


def banded(n: int, band: int, seed=None) -> CSRMatrix:
    """Band matrix: entries at ``|i - j| <= band`` (dense band)."""
    n = check_positive("n", n)
    band = check_nonnegative("band", band)
    rng = as_generator(seed)
    offsets = np.arange(-band, band + 1, dtype=np.int64)
    rows = np.repeat(np.arange(n, dtype=np.int64), offsets.size)
    cols = rows + np.tile(offsets, n)
    keep = (cols >= 0) & (cols < n)
    rows, cols = rows[keep], cols[keep]
    return COOMatrix.from_arrays((n, n), rows, cols, _values(rng, rows.size)).to_csr()


def diagonal(n: int, seed=None) -> CSRMatrix:
    """The paper's Fig. 7b extreme: a diagonal matrix (no inter-row reuse)."""
    n = check_positive("n", n)
    rng = as_generator(seed)
    idx = np.arange(n, dtype=np.int64)
    return COOMatrix.from_arrays((n, n), idx, idx.copy(), _values(rng, n)).to_csr()


def block_diagonal(n_blocks: int, block_size: int, fill: float = 0.5, seed=None) -> CSRMatrix:
    """Block-diagonal matrix with random fill inside each block.

    A naturally pre-clustered structure: consecutive rows share columns, so
    ASpT without reordering already performs well.
    """
    n_blocks = check_positive("n_blocks", n_blocks)
    block_size = check_positive("block_size", block_size)
    if not 0.0 < fill <= 1.0:
        raise ValueError(f"fill must be in (0, 1], got {fill}")
    rng = as_generator(seed)
    n = n_blocks * block_size
    rows_list, cols_list = [], []
    for b in range(n_blocks):
        base = b * block_size
        mask = rng.random((block_size, block_size)) < fill
        r, c = np.nonzero(mask)
        rows_list.append(base + r)
        cols_list.append(base + c)
    rows = np.concatenate(rows_list).astype(np.int64)
    cols = np.concatenate(cols_list).astype(np.int64)
    return COOMatrix.from_arrays((n, n), rows, cols, _values(rng, rows.size)).to_csr()


def power_law_rows(m: int, n: int, mean_nnz: int, alpha: float = 1.8, seed=None) -> CSRMatrix:
    """Matrix with Zipf-distributed row lengths *and* column popularity.

    Mimics web/social matrices: a few very long rows, a few very popular
    columns.  Row lengths follow a clipped Zipf with the requested mean;
    columns are drawn from a Zipf-ranked popularity distribution.
    """
    m = check_positive("m", m)
    n = check_positive("n", n)
    mean_nnz = check_positive("mean_nnz", mean_nnz)
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1, got {alpha}")
    rng = as_generator(seed)
    raw = rng.zipf(alpha, size=m).astype(np.float64)
    lengths = np.clip(raw, 1, 50 * mean_nnz)
    lengths = np.maximum(1, np.round(lengths * (mean_nnz / lengths.mean()))).astype(np.int64)
    lengths = np.minimum(lengths, n)
    total = int(lengths.sum())
    rows = np.repeat(np.arange(m, dtype=np.int64), lengths)
    # Column popularity ~ rank^(-alpha'), sampled via inverse CDF.
    ranks = np.arange(1, n + 1, dtype=np.float64)
    pop = ranks ** (-0.8)
    cdf = np.cumsum(pop)
    cdf /= cdf[-1]
    cols = np.searchsorted(cdf, rng.random(total)).astype(np.int64)
    # Random per-column relabeling so popular columns are spread out.
    relabel = rng.permutation(n).astype(np.int64)
    cols = relabel[np.minimum(cols, n - 1)]
    return COOMatrix.from_arrays((m, n), rows, cols, _values(rng, total)).to_csr()


def staircase(m: int, width: int, seed=None) -> CSRMatrix:
    """Staircase matrix: row ``i`` holds the ``width`` consecutive columns
    ``[i*width, (i+1)*width)`` — every column has exactly one non-zero.

    The structure is maximally *spatially* local (adjacent rows touch
    adjacent columns) while having **zero row similarity** (no two rows
    share a column).  It is the cleanest separator of the paper's §1
    argument: a spatial (vertex-style) reordering restores SpMV locality
    on a scrambled staircase, but no reordering of any kind can help SpMM
    because the dense operand's rows are each read exactly once.
    """
    m = check_positive("m", m)
    width = check_positive("width", width)
    rng = as_generator(seed)
    rows = np.repeat(np.arange(m, dtype=np.int64), width)
    cols = np.arange(m * width, dtype=np.int64)
    return COOMatrix.from_arrays((m, m * width), rows, cols, _values(rng, rows.size)).to_csr()
