"""Cluster-structured generators — the matrices the paper is about.

:func:`hidden_clusters` produces the motivating class: groups of rows share
a column pattern (high intra-cluster Jaccard) but the groups are shuffled
through the matrix, so ASpT's consecutive-row panels see almost no reuse
until row reordering regroups them.  :func:`preclustered` is the same
structure *without* the shuffle — the Fig. 7a class where the §4 gates must
skip reordering.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.util.rng import as_generator
from repro.util.validation import check_in_range, check_positive

__all__ = ["hidden_clusters", "preclustered"]


def _clustered_coo(
    rng: np.random.Generator,
    n_clusters: int,
    rows_per_cluster: int,
    n_cols: int,
    pattern_nnz: int,
    noise: float,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Rows/cols arrays of a cluster-structured matrix in *grouped* order."""
    m = n_clusters * rows_per_cluster
    rows_list, cols_list = [], []
    for c in range(n_clusters):
        pattern = rng.choice(n_cols, size=min(pattern_nnz, n_cols), replace=False)
        for r in range(rows_per_cluster):
            row_cols = pattern.copy()
            if noise > 0:
                flip = rng.random(row_cols.size) < noise
                row_cols[flip] = rng.integers(0, n_cols, size=int(flip.sum()))
            rows_list.append(np.full(row_cols.size, c * rows_per_cluster + r, dtype=np.int64))
            cols_list.append(row_cols.astype(np.int64))
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    return rows, cols, m


def hidden_clusters(
    n_clusters: int,
    rows_per_cluster: int,
    n_cols: int,
    pattern_nnz: int,
    *,
    noise: float = 0.1,
    seed=None,
) -> CSRMatrix:
    """Cluster-structured rows in a *random* row order.

    Parameters
    ----------
    n_clusters, rows_per_cluster:
        Cluster layout; the matrix has ``n_clusters * rows_per_cluster``
        rows.
    n_cols:
        Number of columns.
    pattern_nnz:
        Non-zeros per cluster pattern (per row, up to noise).
    noise:
        Fraction of each row's entries moved to random columns —
        intra-cluster Jaccard decays with noise, exercising the LSH
        threshold behaviour.
    """
    check_positive("n_clusters", n_clusters)
    check_positive("rows_per_cluster", rows_per_cluster)
    check_positive("n_cols", n_cols)
    check_positive("pattern_nnz", pattern_nnz)
    check_in_range("noise", noise, 0.0, 1.0)
    rng = as_generator(seed)
    rows, cols, m = _clustered_coo(
        rng, n_clusters, rows_per_cluster, n_cols, pattern_nnz, noise
    )
    shuffle = rng.permutation(m).astype(np.int64)
    rows = shuffle[rows]
    values = rng.uniform(0.5, 1.5, size=rows.size)
    return COOMatrix.from_arrays((m, n_cols), rows, cols, values).to_csr()


def preclustered(
    n_clusters: int,
    rows_per_cluster: int,
    n_cols: int,
    pattern_nnz: int,
    *,
    noise: float = 0.1,
    seed=None,
) -> CSRMatrix:
    """Cluster-structured rows already grouped (Fig. 7a class).

    Same construction as :func:`hidden_clusters` but without the final
    shuffle: consecutive rows are similar, ASpT alone captures the reuse
    and the §4 gates should skip reordering.
    """
    check_positive("n_clusters", n_clusters)
    check_positive("rows_per_cluster", rows_per_cluster)
    check_positive("n_cols", n_cols)
    check_positive("pattern_nnz", pattern_nnz)
    check_in_range("noise", noise, 0.0, 1.0)
    rng = as_generator(seed)
    rows, cols, m = _clustered_coo(
        rng, n_clusters, rows_per_cluster, n_cols, pattern_nnz, noise
    )
    values = rng.uniform(0.5, 1.5, size=rows.size)
    return COOMatrix.from_arrays((m, n_cols), rows, cols, values).to_csr()
