"""The evaluation corpus — stand-in for the paper's 1084 matrices.

The corpus is assembled from the generator families with parameter grids
chosen to cover every region of the paper's Fig. 9 effectiveness plane:

=================  =======================================  ================
category           generator                                expected benefit
=================  =======================================  ================
``diagonal``       :func:`repro.datasets.diagonal`          none (Fig. 7b)
``banded``         :func:`repro.datasets.banded`            none
``uniform``        :func:`repro.datasets.uniform_random`    none/low
``powerlaw``       :func:`repro.datasets.power_law_rows`    low/medium
``rmat``           :func:`repro.datasets.rmat`              medium
``smallworld``     :func:`repro.datasets.small_world`       low (local)
``preclustered``   :func:`repro.datasets.preclustered`      none (Fig. 7a)
``hidden``         :func:`repro.datasets.hidden_clusters`   high
``sbm``            :func:`repro.datasets.stochastic_block_model` medium
``bipartite``      :func:`repro.datasets.bipartite_ratings` medium/high
=================  =======================================  ================

Scale: the paper filters for >= 10K rows and >= 100K non-zeros; running
1084 such matrices through a pure-Python model is not a laptop-scale job,
so the default ``scale="small"`` shrinks each dimension by ~5x while
preserving every structural property the experiments depend on (the L2
capacity in the device model is what matters relative to matrix size, and
the experiments exercise both regimes).  ``scale="paper"`` produces
paper-sized matrices for spot checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.datasets.clustered import hidden_clusters, preclustered
from repro.datasets.graphs import bipartite_ratings, rmat, small_world, stochastic_block_model
from repro.datasets.synthetic import (
    banded,
    diagonal,
    power_law_rows,
    uniform_random,
)
from repro.errors import DatasetError
from repro.sparse.csr import CSRMatrix
from repro.sparse.properties import structural_summary

__all__ = ["CorpusEntry", "build_corpus", "corpus_summary"]

_SCALES = {"tiny": 0.25, "small": 1.0, "medium": 2.0, "paper": 6.0}


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus matrix: a name, its category, and the built matrix."""

    name: str
    category: str
    expected_benefit: str  #: "none", "low", "medium" or "high"
    matrix: CSRMatrix
    params: dict = field(default_factory=dict, repr=False)


def _specs(s: float) -> list[tuple]:
    """(name, category, expected_benefit, factory) parameter grid.

    ``s`` is the linear scale factor; row counts multiply by ``s``.
    """
    def r(x: float) -> int:  # scaled row count
        return max(64, int(x * s))

    specs: list[tuple[str, str, str, Callable]] = []

    # --- scattered: no possible benefit --------------------------------
    for n in (1600, 2400):
        specs.append(
            (f"diagonal_n{n}", "diagonal", "none",
             lambda n=n, seed=None: diagonal(r(n), seed=seed))
        )
    for n, band in ((1600, 1), (2000, 2), (2400, 3)):
        specs.append(
            (f"banded_n{n}_b{band}", "banded", "none",
             lambda n=n, band=band, seed=None: banded(r(n), band, seed=seed))
        )
    for m, nnz in ((1600, 5), (2000, 8), (2400, 12), (3000, 6)):
        specs.append(
            (f"uniform_m{m}_d{nnz}", "uniform", "low",
             lambda m=m, nnz=nnz, seed=None: uniform_random(r(m), r(m), nnz, seed=seed))
        )

    # --- power-law / graphs --------------------------------------------
    for m, mean in ((2000, 10), (2800, 14), (3600, 8)):
        specs.append(
            (f"powerlaw_m{m}_d{mean}", "powerlaw", "low",
             lambda m=m, mean=mean, seed=None: power_law_rows(r(m), r(m), mean, seed=seed))
        )
    for scale_exp, ef in ((10, 8), (10, 16), (11, 8), (11, 12)):
        specs.append(
            (f"rmat_s{scale_exp}_e{ef}", "rmat", "medium",
             lambda se=scale_exp, ef=ef, seed=None: rmat(
                 se + (1 if s >= 2.0 else 0), ef, seed=seed))
        )
    for n, k, p in ((2000, 4, 0.05), (2400, 6, 0.1), (2000, 4, 0.4)):
        specs.append(
            (f"smallworld_n{n}_k{k}_p{int(p*100)}", "smallworld", "low",
             lambda n=n, k=k, p=p, seed=None: small_world(r(n), k, p, seed=seed))
        )

    # --- pre-clustered: Fig. 7a class -----------------------------------
    # Many small clusters of near-identical rows, already grouped: the §4
    # gates must skip reordering here.
    for nc, rp, nnz in ((200, 10, 24), (256, 8, 16), (160, 12, 32)):
        specs.append(
            (f"preclustered_c{nc}_r{rp}", "preclustered", "none",
             lambda nc=nc, rp=rp, nnz=nnz, seed=None: preclustered(
                 max(8, int(nc * s)), rp, r(2048), nnz, noise=0.05, seed=seed))
        )

    # --- hidden clusters: the motivating class --------------------------
    # Cluster count >> panel height so random panels rarely hold two rows
    # of the same cluster (low original dense ratio), exactly the regime
    # where the paper's reordering shines.
    for nc, rp, nnz, noise in (
        (240, 8, 24, 0.0),
        (256, 8, 20, 0.1),
        (320, 6, 28, 0.1),
        (384, 5, 16, 0.2),
        (200, 10, 24, 0.3),
    ):
        specs.append(
            (f"hidden_c{nc}_r{rp}_n{int(noise*100)}", "hidden", "high",
             lambda nc=nc, rp=rp, nnz=nnz, noise=noise, seed=None: hidden_clusters(
                 max(8, int(nc * s)), rp, r(6144), nnz, noise=noise, seed=seed))
        )

    # --- community graphs (SBM): hidden structure over a graph ----------
    for nb, bs, p_in in ((128, 16, 0.30), (160, 12, 0.40), (96, 20, 0.25)):
        specs.append(
            (f"sbm_b{nb}_s{bs}", "sbm", "medium",
             lambda nb=nb, bs=bs, p_in=p_in, seed=None: stochastic_block_model(
                 max(4, int(nb * s)), bs, p_in=p_in, p_out=0.0008, seed=seed))
        )

    # --- bipartite rating matrices --------------------------------------
    for nu, ni, mean, conc in (
        (2000, 1600, 16, 0.8),
        (2400, 2000, 12, 0.6),
        (3000, 1600, 20, 0.9),
    ):
        specs.append(
            (f"bipartite_u{nu}_i{ni}_c{int(conc*100)}", "bipartite", "medium",
             lambda nu=nu, ni=ni, mean=mean, conc=conc, seed=None: bipartite_ratings(
                 r(nu), r(ni), mean, concentration=conc, seed=seed))
        )

    return specs


def build_corpus(
    scale: str = "small",
    *,
    seed: int = 2020,
    repeats: int = 2,
    categories: tuple[str, ...] | None = None,
) -> list[CorpusEntry]:
    """Assemble the corpus.

    Parameters
    ----------
    scale:
        ``"tiny"`` (fast tests), ``"small"`` (default benches),
        ``"medium"``, or ``"paper"`` (paper-sized rows).
    seed:
        Master seed; each entry derives an independent stream, so the
        corpus is reproducible regardless of iteration order.
    repeats:
        Seeded replicas per specification (the paper's population has many
        near-siblings; replicas give the band tables smoother mass).
    categories:
        Optional filter (e.g. ``("hidden", "rmat")``).

    Returns
    -------
    list[CorpusEntry]
    """
    if scale not in _SCALES:
        raise DatasetError(f"unknown scale {scale!r}; expected one of {sorted(_SCALES)}")
    if repeats < 1:
        raise DatasetError(f"repeats must be >= 1, got {repeats}")
    from repro.util.rng import spawn_generators

    specs = _specs(_SCALES[scale])
    if categories is not None:
        specs = [sp for sp in specs if sp[1] in categories]
        if not specs:
            raise DatasetError(f"no corpus specs match categories {categories!r}")
    rngs = spawn_generators(seed, len(specs) * repeats)
    entries: list[CorpusEntry] = []
    k = 0
    for name, category, benefit, factory in specs:
        for rep in range(repeats):
            matrix = factory(seed=rngs[k])
            k += 1
            entries.append(
                CorpusEntry(
                    name=f"{name}_rep{rep}",
                    category=category,
                    expected_benefit=benefit,
                    matrix=matrix,
                    params={"scale": scale, "rep": rep},
                )
            )
    return entries


def corpus_summary(entries: list[CorpusEntry]) -> list[dict]:
    """Structural summary of every corpus entry (for reports)."""
    out = []
    for e in entries:
        row = {"name": e.name, "category": e.category, "expected_benefit": e.expected_benefit}
        row.update(structural_summary(e.matrix).as_dict())
        out.append(row)
    return out
