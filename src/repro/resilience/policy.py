"""The degradation ladder and the per-plan resilience policy.

The ladder generalises the paper's §4 skip heuristics into a recovery
strategy: when a rung of the planning pipeline fails (stage deadline,
injected fault, memory pressure), :func:`repro.reorder.build_plan` drops
to the next-cheaper rung instead of aborting:

``full``
    The normal Fig. 5 workflow — both reordering rounds, gated by §4.
``round1-only``
    Round 2 forced off; the expensive remainder reordering is skipped.
``identity``
    Both rounds forced off; no MinHash/LSH/clustering at all, only the
    ASpT tiling split (this is exactly the ASpT-NR baseline).
``untiled-csr``
    Identity ordering *and* a dense threshold no panel column can reach,
    so every non-zero lands in the sparse remainder and multiplication
    runs the plain CSR kernel.  Nothing on this rung can time out; it is
    the ladder's floor.

Every attempted rung is recorded in the plan's provenance (and the
cached :class:`repro.planstore.PlanDecisions`), and settling below
``full`` emits a :class:`repro.errors.DegradedExecution` warning — the
run stays correct, the report says it was degraded.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.observability.metrics import METRICS
from repro.resilience.deadline import Deadline

__all__ = ["ResiliencePolicy", "LADDER_RUNGS", "ladder_rungs"]

#: Ladder rung labels, strongest first.
LADDER_RUNGS: tuple = ("full", "round1-only", "identity", "untiled-csr")

# Canonical declaration of the resilience instruments (incremented at the
# fault/retry/ladder sites) so a registry snapshot lists them even before
# any failure has happened.
METRICS.counter("resilience.fault_fired", "injected faults that actually fired")
METRICS.counter("resilience.retry", "transient-IO retry attempts")
METRICS.counter(
    "resilience.degradation_rung", "plan builds settled below the full ladder rung"
)


def ladder_rungs(config) -> list:
    """The ``(label, rung_config)`` ladder for a ``ReorderConfig``.

    Rungs that cannot differ from an earlier one are dropped (e.g. when
    the caller already forces round 2 off, ``round1-only`` adds
    nothing), so the ladder never retries an identical configuration.
    """
    rungs = [("full", config)]
    if config.force_round2 is not False:
        rungs.append(("round1-only", replace(config, force_round2=False)))
    if config.force_round1 is not False:
        rungs.append(
            ("identity", replace(config, force_round1=False, force_round2=False))
        )
    # No column inside a panel_height-row panel can hold more than
    # panel_height entries, so this threshold keeps every non-zero in
    # the sparse remainder: the plan multiplies through the plain CSR
    # kernel (and builds with no LSH, clustering or dense split work).
    rungs.append(
        (
            "untiled-csr",
            replace(
                config,
                force_round1=False,
                force_round2=False,
                dense_threshold=config.panel_height + 1,
            ),
        )
    )
    return rungs


@dataclass(frozen=True)
class ResiliencePolicy:
    """How much failure a plan build may absorb.

    Attributes
    ----------
    deadline_s:
        Per-rung stage budget in seconds (``None`` = unlimited).  Each
        rung gets a fresh deadline; the final ``untiled-csr`` rung runs
        without one so the ladder always has an escape that cannot time
        out.
    ladder:
        When ``False``, failures propagate instead of degrading (the
        deadline still applies — useful for hard-real-time callers that
        prefer an error over a slower plan).
    io_attempts, io_backoff_s:
        Bounded-retry parameters applied around dataset and plan-store
        IO (see :func:`repro.resilience.retry_io`).
    """

    deadline_s: float | None = None
    ladder: bool = True
    io_attempts: int = 3
    io_backoff_s: float = 0.02

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ValueError(f"deadline_s must be >= 0, got {self.deadline_s}")
        if self.io_attempts < 1:
            raise ValueError(f"io_attempts must be >= 1, got {self.io_attempts}")

    def new_deadline(self) -> Deadline | None:
        """A fresh per-rung deadline (``None`` when unlimited)."""
        if self.deadline_s is None:
            return None
        return Deadline.after(self.deadline_s)
