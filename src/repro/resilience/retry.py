"""Bounded retry-with-backoff for transient filesystem errors.

Dataset reads and plan-store IO sit on network filesystems and shared
caches in the production-scale deployment; a single ``EIO`` or ``EAGAIN``
there must not abort a 1084-matrix sweep.  :func:`retry_io` retries the
operation a bounded number of times with exponential backoff, while
*non-transient* errors — missing files, permission problems, paths that
are directories — fail immediately (retrying cannot fix them and only
adds latency).

The sleeper is injectable so chaos tests run at full speed, and the
backoff sequence is deterministic (``backoff_s * 2**attempt``, no
jitter) so retry timing never perturbs reproducibility.
"""

from __future__ import annotations

import time

from repro.observability.metrics import METRICS
from repro.util.log import get_logger

__all__ = ["retry_io", "NON_TRANSIENT_OS_ERRORS"]

_log = get_logger("resilience")

#: OS errors that retrying cannot fix: fail fast on these.
NON_TRANSIENT_OS_ERRORS: tuple = (
    FileNotFoundError,
    NotADirectoryError,
    IsADirectoryError,
    PermissionError,
)


def retry_io(
    fn,
    *,
    attempts: int = 3,
    backoff_s: float = 0.02,
    label: str = "",
    retry_on: tuple = (OSError,),
    sleep=time.sleep,
):
    """Call ``fn()``; retry transient failures up to ``attempts`` times.

    Parameters
    ----------
    fn:
        Zero-argument callable performing the IO.
    attempts:
        Total tries (``1`` disables retrying).
    backoff_s:
        Base backoff; try ``i`` (0-based) sleeps ``backoff_s * 2**i``
        after failing, so defaults cost at most ~60 ms of waiting.
    label:
        Operation name for the retry log line (e.g. the path).
    retry_on:
        Exception types considered potentially transient.  Members of
        :data:`NON_TRANSIENT_OS_ERRORS` are *always* re-raised
        immediately, even when they match ``retry_on``.
    sleep:
        Injectable sleeper (chaos tests pass a no-op).

    Returns
    -------
    Whatever ``fn`` returns.  The last exception is re-raised when every
    attempt fails.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    for attempt in range(attempts):
        try:
            return fn()
        except NON_TRANSIENT_OS_ERRORS:
            raise
        except retry_on as exc:
            if attempt == attempts - 1:
                raise
            METRICS.counter(
                "resilience.retry", "transient-IO retry attempts"
            ).inc()
            delay = backoff_s * (2.0**attempt)
            _log.warning(
                "retrying %s after %s: %s (attempt %d/%d, backoff %.3fs)",
                label or "operation",
                type(exc).__name__,
                exc,
                attempt + 1,
                attempts,
                delay,
            )
            if delay > 0:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
