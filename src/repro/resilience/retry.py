"""Bounded retry-with-backoff for transient filesystem errors.

Dataset reads and plan-store IO sit on network filesystems and shared
caches in the production-scale deployment; a single ``EIO`` or ``EAGAIN``
there must not abort a 1084-matrix sweep.  :func:`retry_io` retries the
operation a bounded number of times with exponentially growing, *fully
jittered* backoff, while *non-transient* errors — missing files,
permission problems, paths that are directories — fail immediately
(retrying cannot fix them and only adds latency).

Full jitter (sleep a uniform fraction of the exponential ceiling) is the
standard cure for retry synchronisation: when many workers hit the same
shared-cache hiccup simultaneously, unjittered exponential backoff has
them all retry at the same instants and collide again.  The jitter here
is **deterministic** — derived from BLAKE2b over ``(label, attempt,
sequence)`` exactly like the fault-injection streams, never from
:mod:`random` — so a chaos run's retry timing is still exactly
reproducible and the library RNGs are untouched.  Pass ``jitter=0.0``
for the legacy fixed schedule.

The sleeper is injectable so chaos tests run at full speed; every real
delay is recorded on the ``retry.sleep_s`` histogram.
"""

from __future__ import annotations

import hashlib
import itertools
import time

from repro.observability.metrics import METRICS
from repro.util.log import get_logger

__all__ = ["retry_io", "NON_TRANSIENT_OS_ERRORS"]

_log = get_logger("resilience")

#: OS errors that retrying cannot fix: fail fast on these.
NON_TRANSIENT_OS_ERRORS: tuple = (
    FileNotFoundError,
    NotADirectoryError,
    IsADirectoryError,
    PermissionError,
)

#: Process-wide retry sequence number: makes successive retry *bursts*
#: of the same label draw different jitter, while a fixed call sequence
#: still reproduces exactly.
_SEQ = itertools.count()

# Sub-10ms buckets matter here: the default backoff ceiling is 80 ms.
_SLEEP_BUCKETS = (0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)


def _jitter_fraction(label: str, attempt: int, seq: int) -> float:
    """Deterministic uniform in ``[0, 1)`` for one backoff draw."""
    digest = hashlib.blake2b(
        f"{label}:{attempt}:{seq}".encode("utf-8", "replace"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2.0**64


def retry_io(
    fn,
    *,
    attempts: int = 3,
    backoff_s: float = 0.02,
    label: str = "",
    retry_on: tuple = (OSError,),
    sleep=time.sleep,
    jitter: float = 1.0,
):
    """Call ``fn()``; retry transient failures up to ``attempts`` times.

    Parameters
    ----------
    fn:
        Zero-argument callable performing the IO.
    attempts:
        Total tries (``1`` disables retrying).
    backoff_s:
        Base backoff; try ``i`` (0-based) waits up to
        ``backoff_s * 2**i`` after failing, so defaults cost at most
        ~60 ms of waiting.
    label:
        Operation name for the retry log line (e.g. the path); also keys
        the deterministic jitter stream.
    retry_on:
        Exception types considered potentially transient.  Members of
        :data:`NON_TRANSIENT_OS_ERRORS` are *always* re-raised
        immediately, even when they match ``retry_on``.
    sleep:
        Injectable sleeper (chaos tests pass a no-op).
    jitter:
        Fraction of each delay drawn uniformly (full jitter): the actual
        sleep is ``ceiling * (1 - jitter + jitter * u)`` for a
        deterministic ``u`` in ``[0, 1)``.  ``1.0`` (default) is classic
        full jitter; ``0.0`` restores the fixed exponential schedule.

    Returns
    -------
    Whatever ``fn`` returns.  The last exception is re-raised when every
    attempt fails.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError(f"jitter must be in [0, 1], got {jitter}")
    for attempt in range(attempts):
        try:
            return fn()
        except NON_TRANSIENT_OS_ERRORS:
            raise
        except retry_on as exc:
            if attempt == attempts - 1:
                raise
            METRICS.counter(
                "resilience.retry", "transient-IO retry attempts"
            ).inc()
            ceiling = backoff_s * (2.0**attempt)
            delay = ceiling
            if jitter > 0.0 and ceiling > 0.0:
                u = _jitter_fraction(label, attempt, next(_SEQ))
                delay = ceiling * (1.0 - jitter + jitter * u)
            _log.warning(
                "retrying %s after %s: %s (attempt %d/%d, backoff %.3fs)",
                label or "operation",
                type(exc).__name__,
                exc,
                attempt + 1,
                attempts,
                delay,
            )
            if delay > 0:
                METRICS.histogram(
                    "retry.sleep_s",
                    "seconds slept between IO retry attempts",
                    bounds=_SLEEP_BUCKETS,
                ).observe(delay)
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
