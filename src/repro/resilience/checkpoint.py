"""Crash-safe, resumable sweep checkpoints.

A :class:`SweepJournal` is an append-only JSON-lines manifest alongside a
sweep's output file.  Every event is one line, written with a single
``write`` call and flushed (plus ``fsync``) before the sweep moves on,
so a ``kill -9`` at any instant leaves at worst one torn *final* line —
which the tolerant reader simply drops.  Completed matrices therefore
survive any crash, and ``repro run --resume`` recomputes only the
matrices that were in flight or never started.

Event grammar (one JSON object per line)::

    {"event": "header", "version": 1, "config": <digest>, "total": M}
    {"event": "start", "key": "<i>:<name>"}
    {"event": "done",  "key": "<i>:<name>", "records": [...]}
    {"event": "interrupt"}          # Ctrl-C flushed the manifest
    {"event": "complete"}           # the sweep finished normally

The header pins a digest of the experiment configuration and the corpus
size; resuming against a journal written under a different configuration
raises :class:`repro.errors.ConfigError` instead of silently mixing
records from incompatible runs.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

from repro.errors import ConfigError, FormatError
from repro.util.hashing import stable_digest
from repro.util.log import get_logger

__all__ = ["SweepJournal", "journal_status", "sweep_config_digest"]

_log = get_logger("resilience")

JOURNAL_VERSION = 1


def sweep_config_digest(config, n_entries: int) -> str:
    """Stable digest of an :class:`ExperimentConfig` + corpus size.

    Serialised as sorted ``name=repr(value)`` pairs (nested dataclasses
    flattened by :func:`dataclasses.asdict`), so any change to any field
    — ks, scale, reorder parameters, resilience policy — changes the
    digest and blocks cross-configuration resumes.
    """
    fields = dataclasses.asdict(config)
    parts = [f"{name}={fields[name]!r}".encode("utf-8") for name in sorted(fields)]
    parts.append(f"n_entries={n_entries}".encode("ascii"))
    return stable_digest(*parts)


def _parse_lines(path: Path) -> list:
    """Parse journal lines tolerantly: a torn final line is dropped."""
    events = []
    with open(path, encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()
    for number, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines) - 1:
                _log.warning(
                    "journal %s: dropping torn final line (crash mid-append)",
                    path.name,
                )
                break
            raise FormatError(
                f"journal {path}: unreadable line {number + 1} "
                "(not the final line, so not a torn append)"
            )
        if not isinstance(event, dict) or "event" not in event:
            raise FormatError(f"journal {path}: line {number + 1} is not an event")
        events.append(event)
    return events


def journal_status(path) -> dict:
    """Summarise a journal for ``repro doctor`` / resume decisions.

    Returns a dict with ``exists``, ``valid``, and — when valid —
    ``config``, ``total``, ``completed`` (list of keys), ``in_flight``
    (started but never finished), ``interrupted`` and ``complete``.
    """
    path = Path(path)
    if not path.exists():
        return {"exists": False, "valid": False}
    try:
        events = _parse_lines(path)
    except (OSError, FormatError) as exc:
        return {"exists": True, "valid": False, "error": f"{type(exc).__name__}: {exc}"}
    if not events or events[0].get("event") != "header":
        return {"exists": True, "valid": False, "error": "missing header line"}
    header = events[0]
    started: list = []
    completed: list = []
    interrupted = False
    complete = False
    for event in events[1:]:
        kind = event.get("event")
        if kind == "start":
            started.append(event.get("key"))
        elif kind == "done":
            completed.append(event.get("key"))
        elif kind == "interrupt":
            interrupted = True
        elif kind == "complete":
            complete = True
    done = set(completed)
    return {
        "exists": True,
        "valid": True,
        "version": header.get("version"),
        "config": header.get("config"),
        "total": header.get("total"),
        "completed": completed,
        "in_flight": [key for key in started if key not in done],
        "interrupted": interrupted,
        "complete": complete,
    }


class SweepJournal:
    """Append-only checkpoint manifest for one experiment sweep.

    Create with :meth:`start_sweep` (truncates any stale journal) or
    :meth:`resume_sweep` (validates the header and returns the completed
    records so the runner can skip them).  Use as a context manager; the
    file handle is flushed per event regardless.
    """

    def __init__(self, path, fh, config_digest: str) -> None:
        self.path = Path(path)
        self._fh = fh
        self.config_digest = config_digest

    # ------------------------------------------------------------------
    @classmethod
    def start_sweep(cls, path, config, n_entries: int) -> "SweepJournal":
        """Begin a fresh journal (overwrites any previous one)."""
        path = Path(path)
        digest = sweep_config_digest(config, n_entries)
        fh = open(path, "w", encoding="utf-8")
        journal = cls(path, fh, digest)
        journal._append(
            {
                "event": "header",
                "version": JOURNAL_VERSION,
                "config": digest,
                "total": n_entries,
            }
        )
        return journal

    @classmethod
    def resume_sweep(cls, path, config, n_entries: int) -> tuple:
        """Reopen ``path`` for appending; return ``(journal, done)``.

        ``done`` maps completed entry keys to their saved record dicts.
        Raises :class:`ConfigError` when the journal was written under a
        different configuration (or corpus size), and falls back to a
        fresh journal when the file is missing.
        """
        path = Path(path)
        if not path.exists():
            return cls.start_sweep(path, config, n_entries), {}
        digest = sweep_config_digest(config, n_entries)
        status = journal_status(path)
        if not status["valid"]:
            raise ConfigError(
                f"cannot resume from {path}: {status.get('error', 'invalid journal')}"
            )
        if status["config"] != digest:
            raise ConfigError(
                f"cannot resume from {path}: it was written by a different "
                "experiment configuration (config digest mismatch); rerun "
                "without --resume to start over"
            )
        done: dict = {}
        for event in _parse_lines(path):
            if event.get("event") == "done":
                done[event["key"]] = event.get("records", [])
        fh = open(path, "a", encoding="utf-8")
        return cls(path, fh, digest), done

    # ------------------------------------------------------------------
    def _append(self, event: dict) -> None:
        """One atomic-append event: single write, flush, fsync."""
        self._fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:  # fsync unsupported (pipes, some CI tmpfs) — flushed is enough
            pass

    def mark_started(self, key: str) -> None:
        """Record that ``key`` is now in flight."""
        self._append({"event": "start", "key": key})

    def mark_done(self, key: str, records: list) -> None:
        """Record ``key`` complete with its result records (as dicts)."""
        self._append({"event": "done", "key": key, "records": records})

    def mark_interrupted(self) -> None:
        """Record a flushed mid-sweep interrupt (Ctrl-C)."""
        self._append({"event": "interrupt"})

    def mark_complete(self) -> None:
        """Record normal end-of-sweep."""
        self._append({"event": "complete"})

    def close(self) -> None:
        """Close the underlying handle (idempotent)."""
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
