"""Resilience layer: fault injection, deadlines, retries, ladders, journals.

The paper's §4 heuristics already define a graceful-degradation story —
skip reordering rounds when the gates say they will not pay off, fall
back to trial-and-error autotuning — and this package makes
degraded-but-correct execution a first-class citizen of the pipeline:

* :class:`FaultInjector` / :func:`fault_point` — deterministic, seedable
  chaos injection at named sites (``io.read``, ``planstore.read``,
  ``planstore.write``, ``clustering.minhash``, ``clustering.cluster``,
  ``workspace.take``, ``session.run``), driving the chaos test suite and
  the CI ``chaos`` job.
* :class:`Deadline` — a cooperative stage budget threaded through
  MinHash, LSH and clustering; polling points raise
  :class:`repro.errors.TimeoutExceeded` when the budget expires.
* :class:`ResiliencePolicy` — per-plan budget plus the degradation
  ladder ``full -> round1-only -> identity -> untiled-csr`` consumed by
  :func:`repro.reorder.build_plan`.
* :func:`retry_io` — bounded retry-with-backoff for transient
  filesystem errors around dataset and plan-store IO.
* :class:`SweepJournal` — crash-safe, append-only checkpoint manifest
  that makes :func:`repro.experiments.run_experiment` resumable
  (``repro run --resume``).
* :func:`store_health` / :func:`heal_store` / :func:`journal_status` —
  the ``repro doctor`` diagnostics.

See ``docs/RESILIENCE.md`` for the full semantics.
"""

from repro.resilience.checkpoint import SweepJournal, journal_status
from repro.resilience.deadline import Deadline
from repro.resilience.doctor import (
    doctor_report,
    format_doctor_report,
    heal_store,
    store_health,
)
from repro.resilience.faults import (
    FAULT_SITES,
    FaultInjector,
    active_injector,
    fault_point,
)
from repro.resilience.policy import LADDER_RUNGS, ResiliencePolicy, ladder_rungs
from repro.resilience.retry import NON_TRANSIENT_OS_ERRORS, retry_io

__all__ = [
    "Deadline",
    "FaultInjector",
    "FAULT_SITES",
    "fault_point",
    "active_injector",
    "ResiliencePolicy",
    "LADDER_RUNGS",
    "ladder_rungs",
    "retry_io",
    "NON_TRANSIENT_OS_ERRORS",
    "SweepJournal",
    "journal_status",
    "store_health",
    "heal_store",
    "doctor_report",
    "format_doctor_report",
]
