"""Deterministic, seedable fault injection at named sites.

Production code calls :func:`fault_point` at the places where the real
world can hurt it — file reads, plan-store (de)serialisation, long
clustering loops, workspace leases.  When no injector is installed the
call is one module-global ``None`` check (measured well under the bench
gate's noise floor); when a :class:`FaultInjector` is active, each site
consults a deterministic per-site Bernoulli stream and raises the site's
characteristic exception at the configured rate.

Determinism contract: for a fixed ``(seed, rate)`` the decision for the
``n``-th arrival at a site depends only on ``(seed, site, n)`` — never on
wall clock, interleaving with other sites, or process state — so a chaos
run is exactly reproducible and bisectable.  The stream is derived from
BLAKE2b, not :mod:`random`, so it cannot perturb (or be perturbed by)
any library RNG.
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter

from repro.errors import (
    BackendUnavailable,
    CorruptStoreError,
    ReproIOError,
    TimeoutExceeded,
    WorkspaceExhausted,
)
from repro.observability.metrics import METRICS

__all__ = ["FAULT_SITES", "FaultInjector", "fault_point", "active_injector"]


def _io_fault() -> Exception:
    return ReproIOError("injected fault: transient IO read error")


def _corrupt_fault() -> Exception:
    return CorruptStoreError("injected fault: corrupt plan-store bytes")


def _write_fault() -> Exception:
    return ReproIOError("injected fault: plan-store write error")


def _minhash_timeout() -> Exception:
    return TimeoutExceeded(
        "injected fault: MinHash stage deadline", stage="minhash"
    )


def _cluster_timeout() -> Exception:
    return TimeoutExceeded(
        "injected fault: clustering stage deadline", stage="cluster"
    )


def _pool_fault() -> Exception:
    return WorkspaceExhausted("injected fault: workspace pool exhausted")


def _backend_compile_fault() -> Exception:
    return BackendUnavailable("injected fault: backend kernel compile failure")


def _streaming_update_fault() -> Exception:
    return TimeoutExceeded(
        "injected fault: streaming update interrupted", stage="streaming.update"
    )


def _pool_evict_fault() -> Exception:
    return ReproIOError("injected fault: session teardown failed during eviction")


def _accept_fault() -> Exception:
    return ReproIOError("injected fault: connection dropped at accept")


#: Registered injection sites and the exception each one raises.  The
#: sites live at the real failure surfaces: adding a site means adding a
#: ``fault_point(...)`` call in the production module it names.
FAULT_SITES: dict = {
    "io.read": _io_fault,
    "planstore.read": _corrupt_fault,
    "planstore.write": _write_fault,
    "clustering.minhash": _minhash_timeout,
    "clustering.cluster": _cluster_timeout,
    "workspace.take": _pool_fault,
    "session.run": _pool_fault,
    "backend.compile": _backend_compile_fault,
    "streaming.update": _streaming_update_fault,
    "serve.pool_evict": _pool_evict_fault,
    "serve.accept": _accept_fault,
}

#: The active injector (``None`` = injection disabled, the production
#: default).  A single global keeps the disabled-path cost at one load
#: and one identity comparison.
_ACTIVE: "FaultInjector | None" = None
_ACTIVE_LOCK = threading.Lock()


class FaultInjector:
    """Deterministic Bernoulli fault source for the registered sites.

    Parameters
    ----------
    rate:
        Default injection probability per :func:`fault_point` arrival,
        in ``[0, 1]``.
    seed:
        Stream seed; fixed seed + fixed rate reproduce the exact same
        fault pattern.
    sites:
        Optional iterable restricting injection to a subset of
        :data:`FAULT_SITES` (others never fire).
    rates:
        Optional per-site rate overrides, ``{site: rate}``.
    max_faults:
        Optional global cap on the number of faults raised (useful for
        "exactly one fault" tests); ``None`` means unbounded.

    Use as a context manager to install/uninstall::

        with FaultInjector(rate=0.1, seed=42):
            run_experiment(...)

    The ``fired``/``checked`` counters record per-site activity for
    assertions and for the chaos report.
    """

    def __init__(
        self,
        rate: float = 0.1,
        seed: int = 0,
        *,
        sites=None,
        rates=None,
        max_faults: int | None = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        unknown = set(sites or ()) - set(FAULT_SITES)
        unknown |= set(rates or {}) - set(FAULT_SITES)
        if unknown:
            raise ValueError(
                f"unknown fault site(s) {sorted(unknown)}; "
                f"registered: {sorted(FAULT_SITES)}"
            )
        self.rate = float(rate)
        self.seed = int(seed)
        self.sites = frozenset(sites) if sites is not None else None
        self.rates = dict(rates or {})
        self.max_faults = max_faults
        self.checked: Counter = Counter()
        self.fired: Counter = Counter()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def rate_for(self, site: str) -> float:
        """The effective injection rate at ``site``."""
        if self.sites is not None and site not in self.sites:
            return 0.0
        return float(self.rates.get(site, self.rate))

    def _uniform(self, site: str, n: int) -> float:
        """The ``n``-th deterministic uniform draw for ``site``."""
        digest = hashlib.blake2b(
            f"{self.seed}:{site}:{n}".encode("ascii"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "little") / 2.0**64

    def check(self, site: str) -> None:
        """Consume one draw at ``site``; raise its fault when it fires."""
        rate = self.rate_for(site)
        with self._lock:
            n = self.checked[site]
            self.checked[site] += 1
            total_fired = sum(self.fired.values())
            fire = (
                rate > 0.0
                and (self.max_faults is None or total_fired < self.max_faults)
                and self._uniform(site, n) < rate
            )
            if fire:
                self.fired[site] += 1
        if fire:
            METRICS.counter(
                "resilience.fault_fired", "injected faults that actually fired"
            ).inc()
            raise FAULT_SITES[site]()

    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Make this the process-wide active injector."""
        global _ACTIVE
        with _ACTIVE_LOCK:
            if _ACTIVE is not None and _ACTIVE is not self:
                raise RuntimeError("another FaultInjector is already active")
            _ACTIVE = self
        return self

    def uninstall(self) -> None:
        """Deactivate injection (idempotent)."""
        global _ACTIVE
        with _ACTIVE_LOCK:
            if _ACTIVE is self:
                _ACTIVE = None

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()

    def summary(self) -> dict:
        """Per-site ``{site: (checked, fired)}`` counter snapshot."""
        with self._lock:
            return {
                site: (self.checked[site], self.fired[site])
                for site in sorted(set(self.checked) | set(self.fired))
            }


def active_injector() -> FaultInjector | None:
    """The currently installed injector, or ``None``."""
    return _ACTIVE


def fault_point(site: str) -> None:
    """Declare a fault-injection site; raises when an injector fires.

    The disabled path (no active injector) is a single global check, so
    production code may call this on warm paths without measurable cost
    (asserted by the ``repro bench --gate`` suites).
    """
    injector = _ACTIVE
    if injector is None:
        return
    injector.check(site)
