"""Cooperative stage deadlines.

A :class:`Deadline` is a wall-clock budget threaded through the
long-running preprocessing stages (MinHash, LSH banding, the clustering
loop).  Those stages *poll* — at block, band and loop-iteration
granularity — and abort cleanly with
:class:`repro.errors.TimeoutExceeded` when the budget is spent, leaving
no partial state behind (every polling point sits between complete
units of work).  There is no preemption and no signal handling: a stage
that never polls can never be cancelled, which is exactly the
determinism-friendly trade the pipeline wants.

Polling sites accept ``deadline=None`` (the default everywhere) and
guard with one ``is not None`` check, so the disabled path costs
nothing measurable (asserted by ``repro bench --gate``).

The clock is injectable for tests: pass ``clock=`` a zero-argument
callable returning seconds (defaults to :func:`time.monotonic`).
"""

from __future__ import annotations

import time

from repro.errors import TimeoutExceeded

__all__ = ["Deadline"]


class Deadline:
    """A monotonic-clock budget with a stage-labelled ``check``.

    Examples
    --------
    >>> d = Deadline.after(3600.0)
    >>> d.expired()
    False
    >>> d.check("cluster1")  # no-op while budget remains
    """

    __slots__ = ("_t_end", "budget_s", "_clock", "_expired")

    def __init__(self, t_end: float, budget_s: float, clock=time.monotonic) -> None:
        self._t_end = float(t_end)
        self.budget_s = float(budget_s)
        self._clock = clock
        # Latched on first observation: an expired deadline never
        # un-expires, even when the injected clock moves backwards (the
        # transition is monotone False -> True, so the unlocked write is
        # race-free for every reader).
        self._expired = False

    @classmethod
    def after(cls, seconds: float, *, clock=time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        if seconds < 0:
            raise ValueError(f"deadline budget must be >= 0, got {seconds}")
        return cls(clock() + seconds, seconds, clock)

    # ------------------------------------------------------------------
    def remaining(self) -> float:
        """Seconds left on the budget (negative once expired)."""
        return self._t_end - self._clock()

    def expired(self) -> bool:
        """Whether the budget is spent (latched: never un-expires)."""
        if not self._expired and self._clock() >= self._t_end:
            self._expired = True
        return self._expired

    def check(self, stage: str = "") -> None:
        """Raise :class:`TimeoutExceeded` when expired; no-op otherwise.

        ``stage`` names the polling site (e.g. ``"cluster1"``) so the
        failure — and the degradation-ladder provenance derived from it
        — says *where* the budget went.
        """
        if self.expired():
            label = stage or "stage"
            raise TimeoutExceeded(
                f"{label} exceeded its {self.budget_s:g}s deadline",
                stage=label,
                budget_s=self.budget_s,
            )
