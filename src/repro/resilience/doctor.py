"""Health checks behind the ``repro doctor`` CLI command.

``repro doctor`` inspects the two pieces of durable state a sweep leaves
behind — the on-disk plan cache and the checkpoint journal — and reports
what it finds: live entry counts, quarantined (``*.corrupt``) files, and
how far an interrupted sweep got.  With ``--heal`` it additionally asks
the plan store to re-validate quarantined entries and restore the ones
whose checksums still verify (see
:meth:`repro.planstore.disk.DiskPlanStore.heal`).

The plan store is imported lazily: :mod:`repro.planstore.disk` itself
uses this package's fault-injection and retry helpers, and importing it
at module scope would require :mod:`repro.resilience` to be fully
initialised first.
"""

from __future__ import annotations

from pathlib import Path

from repro.resilience.checkpoint import journal_status

__all__ = [
    "store_health",
    "heal_store",
    "serve_health",
    "format_doctor_report",
    "doctor_report",
]


def store_health(cache_dir) -> dict:
    """Inspect a plan-cache directory without modifying it.

    Returns
    -------
    dict
        ``exists`` (directory present), ``path``, ``entries`` (live
        entry count) and ``quarantined`` — a list of ``(name, bytes)``
        pairs for each ``*.corrupt`` file awaiting inspection or heal.
    """
    root = Path(cache_dir)
    if not root.is_dir():
        return {"exists": False, "path": str(root), "entries": 0, "quarantined": []}
    from repro.planstore.disk import DiskPlanStore

    store = DiskPlanStore(root)
    quarantined = []
    for path in store.quarantined():
        try:
            size = path.stat().st_size
        except OSError:
            size = -1
        quarantined.append((path.name, size))
    return {
        "exists": True,
        "path": str(root),
        "entries": len(store),
        "quarantined": quarantined,
    }


def heal_store(cache_dir) -> dict:
    """Re-validate and restore quarantined plan-cache entries.

    Delegates to :meth:`repro.planstore.disk.DiskPlanStore.heal`; a
    missing cache directory heals vacuously.
    """
    root = Path(cache_dir)
    if not root.is_dir():
        return {"restored": [], "dropped": [], "unrecoverable": []}
    from repro.planstore.disk import DiskPlanStore

    return DiskPlanStore(root).heal()


def serve_health(address: str) -> dict:
    """Probe a running ``repro serve`` instance's health endpoint.

    ``address`` is a ``host:port`` pair or a UNIX socket path (the same
    forms ``repro serve`` listens on).  Returns the server's health
    document plus ``reachable``; an unreachable server yields
    ``{"reachable": False, "error": ...}`` instead of raising, so the
    doctor report always renders.
    """
    from repro.errors import ReproError, ReproIOError
    from repro.serve.client import ServeClient, parse_address

    try:
        with ServeClient(parse_address(address), timeout=5.0) as client:
            health = client.health()
    except (ReproError, ReproIOError, OSError) as exc:
        return {"reachable": False, "address": address, "error": str(exc)}
    health["reachable"] = True
    health["address"] = address
    return health


def _serve_lines(health: dict) -> list:
    addr = health.get("address", "?")
    if not health.get("reachable"):
        return [f"serve {addr}: UNREACHABLE ({health.get('error', 'unknown error')})"]
    pool = health.get("pool", {})
    admission = health.get("admission", {})
    breaker = health.get("breaker", {})
    state = "ready" if health.get("ready") else (
        "draining" if health.get("draining") else "not ready"
    )
    lines = [
        f"serve {addr}: {state} (protocol v{health.get('version', '?')})",
        f"  pool: {pool.get('entries', 0)}/{pool.get('capacity', '?')} warm "
        f"sessions, {pool.get('pinned', 0)} pinned",
        f"  admission: {admission.get('in_flight', 0)}/"
        f"{admission.get('max_inflight', '?')} in flight",
    ]
    tenants = admission.get("tenants", {})
    if tenants:
        balances = ", ".join(f"{t}={v}" for t, v in sorted(tenants.items()))
        lines.append(f"  quota tokens: {balances}")
    breaker_line = f"  compile breaker: {breaker.get('state', '?')}"
    if breaker.get("state") == "open":
        breaker_line += (
            f" (open {breaker.get('open_for_s', '?')}s of "
            f"{breaker.get('reset_s', '?')}s)"
        )
    elif breaker.get("consecutive_failures"):
        breaker_line += f" ({breaker['consecutive_failures']} consecutive failures)"
    lines.append(breaker_line)
    p95 = health.get("shed", {}).get("p95_s")
    if p95 is not None:
        lines.append(f"  p95 latency: {p95:.4f}s")
    return lines


def _journal_lines(status: dict, path: str) -> list:
    if not status.get("exists"):
        return [f"journal {path}: not found"]
    if not status.get("valid"):
        return [f"journal {path}: INVALID ({status.get('error', 'unknown error')})"]
    total = status.get("total")
    done = len(status.get("completed", []))
    lines = [f"journal {path}: {done}/{total} matrices completed"]
    in_flight = status.get("in_flight", [])
    if in_flight:
        lines.append(
            f"  in flight at last write (will be recomputed on --resume): "
            f"{', '.join(in_flight)}"
        )
    if status.get("complete"):
        lines.append("  sweep finished normally")
    elif status.get("interrupted"):
        lines.append("  sweep was interrupted (Ctrl-C flushed the manifest)")
    else:
        lines.append("  sweep did not finish (crash or still running)")
    return lines


def format_doctor_report(
    *,
    store: dict | None = None,
    journal: dict | None = None,
    journal_path: str = "",
    healed: dict | None = None,
    serve: dict | None = None,
) -> str:
    """Render doctor findings as a human-readable multi-line report."""
    lines: list = []
    if store is not None:
        if not store["exists"]:
            lines.append(f"plan cache {store['path']}: not found")
        else:
            lines.append(
                f"plan cache {store['path']}: {store['entries']} entries, "
                f"{len(store['quarantined'])} quarantined"
            )
            for name, size in store["quarantined"]:
                size_part = f"{size} bytes" if size >= 0 else "size unknown"
                lines.append(f"  quarantined: {name} ({size_part})")
    if healed is not None:
        lines.append(
            f"heal: {len(healed['restored'])} restored, "
            f"{len(healed['dropped'])} dropped (already rebuilt), "
            f"{len(healed['unrecoverable'])} unrecoverable"
        )
        for name in healed["restored"]:
            lines.append(f"  restored: {name}")
        for name in healed["dropped"]:
            lines.append(f"  dropped: {name}")
        for name, reason in healed["unrecoverable"]:
            lines.append(f"  unrecoverable: {name} ({reason})")
    if journal is not None:
        lines.extend(_journal_lines(journal, journal_path))
    if serve is not None:
        lines.extend(_serve_lines(serve))
    if not lines:
        lines.append(
            "nothing to check (pass --plan-cache-dir, --checkpoint and/or --serve)"
        )
    return "\n".join(lines)


def doctor_report(
    *,
    cache_dir=None,
    checkpoint=None,
    heal: bool = False,
    serve_address=None,
) -> tuple:
    """Run all requested checks; return ``(report_text, problems_found)``.

    ``problems_found`` is ``True`` when quarantined entries remain after
    an (optional) heal, the journal is invalid, or a probed server is
    unreachable / not ready — the CLI maps it to a non-zero exit so
    scripts can gate on doctor health.
    """
    store = store_health(cache_dir) if cache_dir is not None else None
    healed = heal_store(cache_dir) if (heal and cache_dir is not None) else None
    if healed is not None:
        store = store_health(cache_dir)  # re-scan: heal changed the directory
    journal = journal_status(checkpoint) if checkpoint is not None else None
    serve = serve_health(serve_address) if serve_address is not None else None
    problems = False
    if store is not None and store["quarantined"]:
        problems = True
    if journal is not None and journal.get("exists") and not journal.get("valid"):
        problems = True
    if serve is not None and not (serve.get("reachable") and serve.get("ready")):
        problems = True
    text = format_doctor_report(
        store=store,
        journal=journal,
        journal_path=str(checkpoint) if checkpoint is not None else "",
        healed=healed,
        serve=serve,
    )
    return text, problems
