"""Health checks behind the ``repro doctor`` CLI command.

``repro doctor`` inspects the two pieces of durable state a sweep leaves
behind — the on-disk plan cache and the checkpoint journal — and reports
what it finds: live entry counts, quarantined (``*.corrupt``) files, and
how far an interrupted sweep got.  With ``--heal`` it additionally asks
the plan store to re-validate quarantined entries and restore the ones
whose checksums still verify (see
:meth:`repro.planstore.disk.DiskPlanStore.heal`).

The plan store is imported lazily: :mod:`repro.planstore.disk` itself
uses this package's fault-injection and retry helpers, and importing it
at module scope would require :mod:`repro.resilience` to be fully
initialised first.
"""

from __future__ import annotations

from pathlib import Path

from repro.resilience.checkpoint import journal_status

__all__ = ["store_health", "heal_store", "format_doctor_report", "doctor_report"]


def store_health(cache_dir) -> dict:
    """Inspect a plan-cache directory without modifying it.

    Returns
    -------
    dict
        ``exists`` (directory present), ``path``, ``entries`` (live
        entry count) and ``quarantined`` — a list of ``(name, bytes)``
        pairs for each ``*.corrupt`` file awaiting inspection or heal.
    """
    root = Path(cache_dir)
    if not root.is_dir():
        return {"exists": False, "path": str(root), "entries": 0, "quarantined": []}
    from repro.planstore.disk import DiskPlanStore

    store = DiskPlanStore(root)
    quarantined = []
    for path in store.quarantined():
        try:
            size = path.stat().st_size
        except OSError:
            size = -1
        quarantined.append((path.name, size))
    return {
        "exists": True,
        "path": str(root),
        "entries": len(store),
        "quarantined": quarantined,
    }


def heal_store(cache_dir) -> dict:
    """Re-validate and restore quarantined plan-cache entries.

    Delegates to :meth:`repro.planstore.disk.DiskPlanStore.heal`; a
    missing cache directory heals vacuously.
    """
    root = Path(cache_dir)
    if not root.is_dir():
        return {"restored": [], "dropped": [], "unrecoverable": []}
    from repro.planstore.disk import DiskPlanStore

    return DiskPlanStore(root).heal()


def _journal_lines(status: dict, path: str) -> list:
    if not status.get("exists"):
        return [f"journal {path}: not found"]
    if not status.get("valid"):
        return [f"journal {path}: INVALID ({status.get('error', 'unknown error')})"]
    total = status.get("total")
    done = len(status.get("completed", []))
    lines = [f"journal {path}: {done}/{total} matrices completed"]
    in_flight = status.get("in_flight", [])
    if in_flight:
        lines.append(
            f"  in flight at last write (will be recomputed on --resume): "
            f"{', '.join(in_flight)}"
        )
    if status.get("complete"):
        lines.append("  sweep finished normally")
    elif status.get("interrupted"):
        lines.append("  sweep was interrupted (Ctrl-C flushed the manifest)")
    else:
        lines.append("  sweep did not finish (crash or still running)")
    return lines


def format_doctor_report(
    *,
    store: dict | None = None,
    journal: dict | None = None,
    journal_path: str = "",
    healed: dict | None = None,
) -> str:
    """Render doctor findings as a human-readable multi-line report."""
    lines: list = []
    if store is not None:
        if not store["exists"]:
            lines.append(f"plan cache {store['path']}: not found")
        else:
            lines.append(
                f"plan cache {store['path']}: {store['entries']} entries, "
                f"{len(store['quarantined'])} quarantined"
            )
            for name, size in store["quarantined"]:
                size_part = f"{size} bytes" if size >= 0 else "size unknown"
                lines.append(f"  quarantined: {name} ({size_part})")
    if healed is not None:
        lines.append(
            f"heal: {len(healed['restored'])} restored, "
            f"{len(healed['dropped'])} dropped (already rebuilt), "
            f"{len(healed['unrecoverable'])} unrecoverable"
        )
        for name in healed["restored"]:
            lines.append(f"  restored: {name}")
        for name in healed["dropped"]:
            lines.append(f"  dropped: {name}")
        for name, reason in healed["unrecoverable"]:
            lines.append(f"  unrecoverable: {name} ({reason})")
    if journal is not None:
        lines.extend(_journal_lines(journal, journal_path))
    if not lines:
        lines.append("nothing to check (pass --plan-cache-dir and/or --checkpoint)")
    return "\n".join(lines)


def doctor_report(
    *,
    cache_dir=None,
    checkpoint=None,
    heal: bool = False,
) -> tuple:
    """Run all requested checks; return ``(report_text, problems_found)``.

    ``problems_found`` is ``True`` when quarantined entries remain after
    an (optional) heal or the journal is invalid — the CLI maps it to a
    non-zero exit so scripts can gate on doctor health.
    """
    store = store_health(cache_dir) if cache_dir is not None else None
    healed = heal_store(cache_dir) if (heal and cache_dir is not None) else None
    if healed is not None:
        store = store_health(cache_dir)  # re-scan: heal changed the directory
    journal = journal_status(checkpoint) if checkpoint is not None else None
    problems = False
    if store is not None and store["quarantined"]:
        problems = True
    if journal is not None and journal.get("exists") and not journal.get("valid"):
        problems = True
    text = format_doctor_report(
        store=store,
        journal=journal,
        journal_path=str(checkpoint) if checkpoint is not None else "",
        healed=healed,
    )
    return text, problems
