"""The paper's core contribution: LSH-clustered row reordering for SpMM/SDDMM.

:func:`repro.reorder.build_plan` runs the Fig. 5 workflow — round-1 row
reordering of the whole matrix, ASpT tiling, round-2 reordering of the
sparse remainder — gated by the §4 skip heuristics, and returns an
:class:`repro.reorder.ExecutionPlan` that can multiply in *original*
coordinates (the reordering is an internal detail, exactly as the paper
argues: row reordering never touches the dense operand's indexing).

:func:`repro.reorder.autotune` implements the paper's §4 trial-and-error
strategy: build the reordered plan, compare its modelled cost against the
non-reordered one, keep the winner.
"""

from repro.reorder.heuristics import (
    HeuristicDecision,
    should_reorder_round1,
    should_reorder_round2,
)
from repro.reorder.pipeline import (
    ExecutionPlan,
    PlanStats,
    ReorderConfig,
    attach_backend,
    build_plan,
    reorder_rows,
)
from repro.reorder.autotune import AutotuneResult, autotune
from repro.reorder.online import OnlineReorderer

__all__ = [
    "HeuristicDecision",
    "should_reorder_round1",
    "should_reorder_round2",
    "ExecutionPlan",
    "PlanStats",
    "ReorderConfig",
    "build_plan",
    "reorder_rows",
    "attach_backend",
    "AutotuneResult",
    "autotune",
    "OnlineReorderer",
]
