"""Trial-and-error selection (paper §4, last paragraph).

"A simple method to determine whether to do row-reordering in real
applications is by trial-and-error ... do SpMM or SDDMM on both the
reordered matrix and the original matrix.  If the reordered matrix is
faster, keep the row-reordering for the rest of iterations."

Here "run both and time them" means evaluating both candidates under the
GPU performance model; with a real device the same interface would wrap
wall-clock timing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.contracts import checked, validates
from repro.errors import ValidationError
from repro.gpu.costmodel import KernelCost
from repro.gpu.executor import GPUExecutor
from repro.reorder.pipeline import ExecutionPlan, ReorderConfig, build_plan
from repro.sparse.csr import CSRMatrix

__all__ = ["AutotuneResult", "autotune"]

_OPS = ("spmm", "sddmm")


@dataclass(frozen=True)
class AutotuneResult:
    """Outcome of the trial-and-error selection.

    Attributes
    ----------
    plan:
        The chosen execution plan.  When reordering loses, this is a plan
        built with both rounds forced off (i.e. plain ASpT-NR).
    use_reordering:
        Whether the reordered candidate won.
    cost_reordered / cost_plain:
        Modelled kernel costs of the two candidates.
    """

    plan: ExecutionPlan
    use_reordering: bool
    cost_reordered: KernelCost
    cost_plain: KernelCost

    @property
    def speedup(self) -> float:
        """Reordered over plain (>1 means reordering wins)."""
        return self.cost_plain.time_s / self.cost_reordered.time_s


@checked(validates("csr"))
def autotune(
    csr: CSRMatrix,
    k: int,
    *,
    op: str = "spmm",
    executor: GPUExecutor | None = None,
    config: ReorderConfig | None = None,
) -> AutotuneResult:
    """Build both candidates, cost them, keep the faster.

    Parameters
    ----------
    csr:
        The sparse matrix.
    k:
        Dense-operand width the application will use.
    op:
        ``"spmm"`` or ``"sddmm"``.
    executor:
        Performance model (defaults to a P100 with the frozen constants).
    config:
        Reordering parameters.

    Returns
    -------
    AutotuneResult
    """
    if op not in _OPS:
        raise ValidationError(f"op must be one of {_OPS}, got {op!r}")
    executor = executor or GPUExecutor()
    config = config or ReorderConfig()

    plan_rr = build_plan(csr, config)
    # The plain candidate is ASpT with no reordering at all.
    plain_config = ReorderConfig(
        **{
            **config.__dict__,
            "force_round1": False,
            "force_round2": False,
        }
    )
    plan_nr = build_plan(csr, plain_config)

    cost_fn = executor.spmm_cost if op == "spmm" else executor.sddmm_cost
    cost_rr = cost_fn(plan_rr.cost_view(), k, "aspt")
    cost_nr = cost_fn(plan_nr.cost_view(), k, "aspt")

    if cost_rr.time_s <= cost_nr.time_s:
        return AutotuneResult(
            plan=plan_rr, use_reordering=True, cost_reordered=cost_rr, cost_plain=cost_nr
        )
    return AutotuneResult(
        plan=plan_nr, use_reordering=False, cost_reordered=cost_rr, cost_plain=cost_nr
    )
