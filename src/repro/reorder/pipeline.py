"""The Fig. 5 workflow: reorder -> tile -> reorder the remainder.

``build_plan`` is the main entry point of the library.  It takes a CSR
matrix and produces an :class:`ExecutionPlan` containing

* the round-1 row permutation (or identity when skipped by the §4 gate),
* the ASpT tiling of the (possibly) reordered matrix,
* the round-2 permutation of the sparse remainder (or identity),
* the Fig. 9 effectiveness statistics (ΔDenseRatio, ΔAvgSim),
* a wall-clock breakdown of the preprocessing stages.

The plan multiplies in **original coordinates**: ``plan.spmm(X)`` equals
``S @ X`` for the original ``S`` bit-for-bit in pattern terms — the row
reordering is purely an execution-order optimisation, never a semantic
change (this is the paper's central distinction from vertex reordering).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace

import numpy as np

from repro.aspt.tiles import TiledMatrix, tile_matrix
from repro.clustering.hierarchical import cluster_rows
from repro.contracts import checked, validates
from repro.errors import BackendUnavailable, DegradedExecution, TimeoutExceeded
from repro.kernels.aspt_sddmm import sddmm_tiled
from repro.kernels.aspt_spmm import _panel_dense_spmm
from repro.kernels.spmm import spmm
from repro.kernels.sddmm import sddmm
from repro.observability.metrics import METRICS
from repro.observability.tracing import span
from repro.reorder.heuristics import should_reorder_round1, should_reorder_round2
from repro.similarity.jaccard import average_consecutive_similarity
from repro.similarity.lsh import LSHIndex
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import permute_csr_rows
from repro.util.arrayops import rank_of_permutation
from repro.util.timing import timed
from repro.util.validation import check_dense, check_positive

__all__ = [
    "ReorderConfig",
    "PlanStats",
    "ExecutionPlan",
    "build_plan",
    "reorder_rows",
    "attach_backend",
]


@dataclass(frozen=True)
class ReorderConfig:
    """Parameters of the reordering pipeline.

    Defaults follow the paper: ``siglen=128``, ``bsize=2``,
    ``threshold_size=256``, skip thresholds of 10% dense ratio and 0.1
    average similarity.  ``panel_height`` is the ASpT row-panel height
    (the worked example uses 3; GPU-scale runs use thread-block-sized
    panels).
    """

    siglen: int = 128
    bsize: int = 2
    threshold_size: int = 256
    panel_height: int = 64
    dense_threshold: int = 2
    max_dense_cols: int | None = None
    dense_ratio_skip: float = 0.10
    avg_sim_skip: float = 0.10
    lsh_seed: int = 0
    bucket_cap: int | None = 64
    measure: str = "jaccard"  #: candidate-scoring measure (extension; paper uses Jaccard)
    force_round1: bool | None = None  #: override the §4 gate (None = use gate)
    force_round2: bool | None = None
    #: Compiled kernel backend the plan's multiplies should run through
    #: (see :mod:`repro.kernels.backends`).  Must be a *registered* name
    #: ("numpy", "codegen", "numba"); availability is checked at plan
    #: build, where an unavailable backend degrades to numpy with
    #: provenance rather than failing.  Part of the plan cache key.
    backend: str = "numpy"

    def __post_init__(self):
        check_positive("siglen", self.siglen)
        check_positive("bsize", self.bsize)
        check_positive("threshold_size", self.threshold_size)
        check_positive("panel_height", self.panel_height)
        check_positive("dense_threshold", self.dense_threshold)
        # Registered-name check only (never an availability probe): a
        # typo fails loudly here, a missing optional dependency degrades
        # later at resolve time.
        from repro.kernels.backends import get_backend

        get_backend(self.backend)

    def lsh_index(self) -> LSHIndex:
        """The LSH configuration as an index object."""
        return LSHIndex(
            siglen=self.siglen,
            bsize=self.bsize,
            seed=self.lsh_seed,
            bucket_cap=self.bucket_cap,
            measure=self.measure,
        )


@dataclass(frozen=True)
class PlanStats:
    """Effectiveness statistics (the axes of the paper's Fig. 9).

    ``delta_dense_ratio`` is the change in the fraction of non-zeros inside
    dense tiles caused by round 1; ``delta_avg_sim`` the change in average
    consecutive-row Jaccard of the sparse remainder caused by round 2.
    """

    dense_ratio_before: float
    dense_ratio_after: float
    avg_sim_before: float
    avg_sim_after: float
    round1_applied: bool
    round2_applied: bool
    n_candidates_round1: int = 0
    n_candidates_round2: int = 0

    @property
    def delta_dense_ratio(self) -> float:
        """Fig. 9 x-axis: change in dense-tile non-zero fraction."""
        return self.dense_ratio_after - self.dense_ratio_before

    @property
    def delta_avg_sim(self) -> float:
        """Fig. 9 y-axis: change in remainder consecutive-row similarity."""
        return self.avg_sim_after - self.avg_sim_before


@dataclass(frozen=True)
class ExecutionPlan:
    """A reordered-and-tiled matrix ready for repeated multiplication.

    Attributes
    ----------
    original:
        The input matrix, untouched.
    row_order:
        Round-1 permutation (new position -> original row).
    tiled:
        ASpT split of the row-1-reordered matrix.
    remainder:
        The sparse remainder with round-2 row ordering applied — the
        matrix the remainder kernel actually walks.
    remainder_order:
        Round-2 permutation over the reordered matrix's row space.
    stats:
        Fig. 9 effectiveness statistics.
    preprocess_seconds:
        Wall-clock breakdown: ``lsh1``, ``cluster1``, ``permute1``,
        ``tile``, ``sim2``, ``lsh2``, ``cluster2``, ``total``.
    provenance:
        Degradation-ladder history when the plan was built under a
        :class:`repro.resilience.ResiliencePolicy` — one entry per
        attempted rung, e.g. ``("full: TimeoutExceeded: cluster1
        exceeded its 2s deadline", "round1-only: ok")``.  Empty for
        plans built without a policy.
    backend:
        The compiled kernel backend the plan's sessions execute through
        (the *resolved* backend — after any degradation).  Defaults to
        the ``numpy`` reference.
    backend_provenance:
        Degradation history for the backend choice, e.g.
        ``("backend:numba->numpy: numba is not importable (...)",)``.
        Kept separate from :attr:`provenance` on purpose: a missing
        optional JIT must not mark the *plan* degraded (degraded plans
        are never cached, and the reordering decisions are unaffected).
    artifact:
        Compiled-artifact descriptor — flat ``"key=value"`` strings from
        :meth:`repro.kernels.backends.CompiledKernel.descriptor`,
        including the specialization fingerprint that keys the
        process-global artifact cache.  Stored in the plan store next to
        the decisions so warm sessions know the artifact without
        re-deriving it.  Empty when the backend resolved to ``numpy``
        without compiling.
    revision:
        Streaming update counter: 0 for a freshly built plan, bumped by
        one each time :func:`repro.streaming.apply_delta` produces the
        plan's successor.  Session memos and serve pools key on it so a
        patched plan — whose *pattern* fingerprint may be unchanged when
        only values drifted — can never be served through a stale
        session pinned on the predecessor's data.
    """

    original: CSRMatrix
    row_order: np.ndarray
    tiled: TiledMatrix
    remainder: CSRMatrix
    remainder_order: np.ndarray
    stats: PlanStats
    preprocess_seconds: dict = field(default_factory=dict, repr=False)
    provenance: tuple = ()
    backend: str = "numpy"
    backend_provenance: tuple = ()
    artifact: tuple = ()
    revision: int = 0

    @property
    def degraded(self) -> bool:
        """Whether the plan settled below the ``full`` ladder rung."""
        return bool(self.provenance) and not self.provenance[-1].startswith("full:")

    @property
    def backend_degraded(self) -> bool:
        """Whether the requested backend degraded to the numpy reference."""
        return bool(self.backend_provenance)

    # ------------------------------------------------------------------
    @property
    def preprocessing_time(self) -> float:
        """Total preprocessing wall-clock in seconds."""
        return self.preprocess_seconds.get("total", 0.0)

    def cost_view(self) -> TiledMatrix:
        """A :class:`TiledMatrix` view for the performance model.

        Identical to :attr:`tiled` except that ``sparse_part`` carries the
        round-2 row ordering, so the executor's remainder access stream
        reflects the order the kernel really processes.  Note this view is
        for *cost estimation only*: its dense/sparse parts are no longer a
        row-aligned partition of ``original`` (``validate()`` would fail).
        """
        return TiledMatrix(
            original=self.tiled.original,
            dense_part=self.tiled.dense_part,
            sparse_part=self.remainder,
            spec=self.tiled.spec,
            dense_threshold=self.tiled.dense_threshold,
            panel_dense_cols=self.tiled.panel_dense_cols,
        )

    # ------------------------------------------------------------------
    # multiplication in original coordinates
    # ------------------------------------------------------------------
    def spmm(self, X: np.ndarray) -> np.ndarray:
        """``original @ X`` computed through the reordered execution plan."""
        X = check_dense("X", X, rows=self.original.n_cols)
        k = X.shape[1]
        m = self.original.n_rows
        # Accumulate in round-1 (reordered) row space.
        y_reordered = np.zeros((m, k), dtype=np.float64)
        _panel_dense_spmm(
            self.tiled.dense_part,
            X,
            self.tiled.panel_dense_cols,
            self.tiled.spec.panel_height,
            y_reordered,
        )
        if self.remainder.nnz:
            y_rem = spmm(self.remainder, X)
            # remainder row r is reordered-space row remainder_order[r].
            y_reordered[self.remainder_order] += y_rem
        # Scatter back: reordered row r is original row row_order[r].
        out = np.empty_like(y_reordered)
        out[self.row_order] = y_reordered
        return out

    def sddmm(self, X: np.ndarray, Y: np.ndarray) -> CSRMatrix:
        """``(Y @ X.T) .* original`` computed through the plan.

        ``X``/``Y`` are indexed by the *original* columns/rows.
        """
        X = check_dense("X", X, rows=self.original.n_cols)
        Y = check_dense("Y", Y, rows=self.original.n_rows, cols=X.shape[1])
        # Work in reordered row space, then permute the result rows back.
        result_reordered = sddmm_tiled(self.tiled, X, Y[self.row_order])
        inverse = rank_of_permutation(self.row_order)
        return permute_csr_rows(result_reordered, inverse)

    # ------------------------------------------------------------------
    # persistence (the paper's offline-deployment scenario)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the plan's decisions to an ``.npz`` file.

        The paper's deployment story is offline: reorder once, reuse the
        ordering for every future multiplication.  Only the *decisions*
        (the two permutations, the tiling parameters, the stats) are
        stored — the tiled structures are recomputed deterministically by
        :meth:`load`, so the file stays small and version-stable.
        """
        np.savez_compressed(
            path,
            row_order=self.row_order,
            remainder_order=self.remainder_order,
            panel_height=np.int64(self.tiled.spec.panel_height),
            dense_threshold=np.int64(self.tiled.dense_threshold),
            stats=np.array(
                [
                    self.stats.dense_ratio_before,
                    self.stats.dense_ratio_after,
                    self.stats.avg_sim_before,
                    self.stats.avg_sim_after,
                    float(self.stats.round1_applied),
                    float(self.stats.round2_applied),
                    float(self.stats.n_candidates_round1),
                    float(self.stats.n_candidates_round2),
                ]
            ),
            preprocess_total=np.float64(self.preprocessing_time),
            backend=np.str_(self.backend),
            artifact=np.array(list(self.artifact), dtype=np.str_),
        )

    @classmethod
    def load(cls, path, original: CSRMatrix) -> "ExecutionPlan":
        """Rebuild a plan saved with :meth:`save` for ``original``.

        ``original`` must be the same matrix the plan was built from (the
        permutations are checked for shape; content equality is the
        caller's contract, exactly as with any persisted preprocessing).
        """
        with np.load(path) as data:
            row_order = data["row_order"].astype(np.int64)
            remainder_order = data["remainder_order"].astype(np.int64)
            panel_height = int(data["panel_height"])
            dense_threshold = int(data["dense_threshold"])
            raw = data["stats"]
            preprocess_total = float(data["preprocess_total"])
            # Tolerant read: files written before the backend fields
            # existed load as numpy-backed plans.
            backend = str(data["backend"]) if "backend" in data.files else "numpy"
            artifact = (
                tuple(str(s) for s in data["artifact"].tolist())
                if "artifact" in data.files
                else ()
            )
        if row_order.size != original.n_rows:
            raise ValueError(
                f"plan was saved for {row_order.size} rows; matrix has "
                f"{original.n_rows}"
            )
        reordered = permute_csr_rows(original, row_order)
        tiled = tile_matrix(reordered, panel_height, dense_threshold)
        remainder = permute_csr_rows(tiled.sparse_part, remainder_order)
        stats = PlanStats(
            dense_ratio_before=float(raw[0]),
            dense_ratio_after=float(raw[1]),
            avg_sim_before=float(raw[2]),
            avg_sim_after=float(raw[3]),
            round1_applied=bool(raw[4]),
            round2_applied=bool(raw[5]),
            n_candidates_round1=int(raw[6]),
            n_candidates_round2=int(raw[7]),
        )
        return cls(
            original=original,
            row_order=row_order,
            tiled=tiled,
            remainder=remainder,
            remainder_order=remainder_order,
            stats=stats,
            preprocess_seconds={"total": preprocess_total},
            backend=backend,
            artifact=artifact,
        )

    def session(self, **kwargs):
        """A :class:`~repro.kernels.KernelSession` pinned on this plan.

        The session multiplies in original coordinates exactly like
        :meth:`spmm` (bitwise — asserted by :meth:`validate`) but hoists
        the per-call panel remaps and scratch allocation, so it is the
        preferred interface for repeated multiplies against one plan.
        Keyword arguments are forwarded to the session constructor.
        """
        from repro.kernels import KernelSession

        return KernelSession(self, **kwargs)

    def validate(self, X: np.ndarray | None = None, seed: int = 0) -> None:
        """Self-check: plan results must match the direct kernels."""
        rng = np.random.default_rng(seed)
        if X is None:
            X = rng.normal(size=(self.original.n_cols, 4))
        np.testing.assert_allclose(
            self.spmm(X), spmm(self.original, X), rtol=1e-10, atol=1e-9
        )
        # The pinned-session path must agree with the one-shot plan
        # multiply bit for bit (same products, same accumulation order).
        np.testing.assert_array_equal(self.session().run(X), self.spmm(X))
        Y = rng.normal(size=(self.original.n_rows, X.shape[1]))
        got = self.sddmm(X, Y)
        want = sddmm(self.original, X, Y)
        assert got.same_pattern(want)
        np.testing.assert_allclose(got.values, want.values, rtol=1e-10, atol=1e-9)


def attach_backend(plan: ExecutionPlan, config: ReorderConfig) -> ExecutionPlan:
    """Resolve ``config.backend`` and pin its artifact descriptor on ``plan``.

    Runs at the end of every plan build *and* on every cache
    materialisation, so the choice always reflects the current
    environment — a plan cached on a machine with numba does not pin a
    numba requirement onto a machine without it, and vice versa.  Two
    degradation layers:

    * *unavailable* backends degrade inside
      :func:`repro.kernels.backends.resolve_backend` (counter, warning,
      provenance entry);
    * *compile failures* (e.g. the injected ``backend.compile`` fault)
      are caught here and degrade the same way.

    Either way the result lands in :attr:`ExecutionPlan.backend` /
    ``backend_provenance`` — never in the ladder :attr:`~ExecutionPlan.provenance`,
    so a missing optional JIT does not mark the plan degraded (degraded
    plans are never cached).
    """
    from repro.kernels.backends import resolve_backend, specialize

    backend, provenance = resolve_backend(config.backend)
    provenance = list(provenance)
    artifact: tuple = ()
    if backend.name != "numpy":
        try:
            spec = specialize(plan, kernel="spmm")
            compiled = backend.artifact(spec)
        except BackendUnavailable as exc:
            METRICS.counter(
                "kernels.backend_fallback",
                "backend requests degraded to the numpy reference",
            ).inc()
            provenance.append(
                f"backend:{backend.name}->numpy: compile failed: {exc}"
            )
            warnings.warn(
                f"kernel backend {backend.name!r} failed to compile ({exc}); "
                "plan falling back to the numpy reference (results unchanged)",
                DegradedExecution,
                stacklevel=2,
            )
            from repro.kernels.backends import get_backend

            backend = get_backend("numpy")
        else:
            artifact = compiled.descriptor()
            plan.preprocess_seconds.setdefault(
                "backend_compile", compiled.compile_seconds
            )
    return replace(
        plan,
        backend=backend.name,
        backend_provenance=tuple(provenance),
        artifact=artifact,
    )


@checked(validates("csr"))
def reorder_rows(csr: CSRMatrix, config: ReorderConfig | None = None) -> np.ndarray:
    """One round of LSH + clustering row reordering (paper Alg. 3).

    Returns the permutation (new position -> original row).  This is the
    bare reordering primitive; most callers want :func:`build_plan`.
    """
    config = config or ReorderConfig()
    pairs, sims = config.lsh_index().candidate_pairs(csr)
    result = cluster_rows(
        csr, pairs, sims,
        threshold_size=config.threshold_size,
        measure=config.measure,
    )
    return result.order


@checked(validates("csr"))
def build_plan(
    csr: CSRMatrix,
    config: ReorderConfig | None = None,
    *,
    cache=None,
    resilience=None,
) -> ExecutionPlan:
    """Run the full Fig. 5 workflow and return an :class:`ExecutionPlan`.

    The §4 gates decide per round whether reordering runs; set
    ``config.force_round1`` / ``force_round2`` to override (used by the
    autotuner and the ablation benches).

    ``cache`` accepts a :class:`repro.planstore.PlanStore` (or anything
    with the same ``get``/``put``/``key_for`` surface).  On a hit the
    expensive stages (MinHash, LSH, clustering) are skipped entirely and
    the plan is re-materialised from the cached decisions against *this*
    matrix's values; the timing breakdown then contains ``cache_lookup``
    and ``materialise`` instead of the stage keys.  On a miss the plan is
    built normally and its decisions written through the cache.

    ``resilience`` accepts a :class:`repro.resilience.ResiliencePolicy`.
    With one, each preprocessing attempt runs under a per-rung stage
    deadline, and a rung that times out (or hits memory pressure) drops
    down the degradation ladder ``full -> round1-only -> identity ->
    untiled-csr`` instead of failing the build.  Every attempted rung is
    recorded in :attr:`ExecutionPlan.provenance`; settling below ``full``
    emits a :class:`repro.errors.DegradedExecution` warning, and degraded
    plans are never written to the cache (a transient failure must not
    pin a weaker plan under the original config's key).
    """
    config = config or ReorderConfig()
    if resilience is not None:
        return _build_plan_resilient(csr, config, cache, resilience)
    if cache is None:
        return _build_plan_uncached(csr, config)
    return _build_plan_cached(csr, config, cache, None)


def _build_plan_cached(csr, config, cache, deadline) -> ExecutionPlan:
    """The cache-wrapped build (hit -> materialise, miss -> build + put)."""
    from repro.planstore.decisions import PlanDecisions

    times: dict[str, float] = {}
    plan = None
    with timed(times, "total"):
        key = cache.key_for(csr, config)
        with span("cache_lookup"), timed(times, "cache_lookup"):
            decisions = cache.get(key)
        if decisions is not None:
            with span("materialise"), timed(times, "materialise"):
                plan = decisions.materialise(csr, config)
        else:
            plan = _build_plan_uncached(csr, config, deadline=deadline)
            cache.put(key, PlanDecisions.from_plan(plan))
    if "materialise" in times:  # warm hit: breakdown is lookup+materialise
        plan.preprocess_seconds.update(times)
    else:  # cold build: keep the stage breakdown, note the lookup cost
        plan.preprocess_seconds["cache_lookup"] = times["cache_lookup"]
    return plan


def _build_plan_resilient(csr, config, cache, policy) -> ExecutionPlan:
    """Walk the degradation ladder until a rung succeeds.

    Rung 0 (``full``) goes through the cache when one is given; the
    degraded rungs never touch it.  The final rung runs without a
    deadline, so a laddered build always terminates with *some* plan;
    with ``policy.ladder`` off the first failure propagates.
    """
    from repro.resilience.policy import ladder_rungs

    rungs = ladder_rungs(config) if policy.ladder else [("full", config)]
    provenance: list = []
    for index, (label, rung_config) in enumerate(rungs):
        floor = policy.ladder and index == len(rungs) - 1
        deadline = None if floor else policy.new_deadline()
        try:
            with span("plan_rung", rung=label):
                if index == 0 and cache is not None:
                    plan = _build_plan_cached(csr, rung_config, cache, deadline)
                else:
                    plan = _build_plan_uncached(csr, rung_config, deadline=deadline)
        except (TimeoutExceeded, MemoryError) as exc:
            provenance.append(f"{label}: {type(exc).__name__}: {exc}")
            if index == len(rungs) - 1:
                raise
            continue
        provenance.append(f"{label}: ok")
        plan = replace(plan, provenance=tuple(provenance))
        if index > 0:
            METRICS.counter(
                "resilience.degradation_rung",
                "plan builds settled below the full ladder rung",
            ).inc()
            warnings.warn(
                f"plan build degraded to rung '{label}' "
                f"({'; '.join(provenance[:-1])})",
                DegradedExecution,
                stacklevel=3,
            )
        return plan
    raise AssertionError("unreachable")  # pragma: no cover


def _build_plan_uncached(
    csr: CSRMatrix, config: ReorderConfig, *, deadline=None
) -> ExecutionPlan:
    """The actual Fig. 5 workflow (no cache consultation)."""
    times: dict[str, float] = {}
    lsh = config.lsh_index()

    with span("build_plan", rows=csr.n_rows, cols=csr.n_cols, nnz=csr.nnz), timed(
        times, "total"
    ):
        # ---- round 1 gate + reorder -----------------------------------
        gate1 = should_reorder_round1(
            csr,
            config.panel_height,
            config.dense_threshold,
            skip_above=config.dense_ratio_skip,
        )
        do_round1 = gate1.reorder if config.force_round1 is None else config.force_round1
        n_cand1 = 0
        if do_round1:
            with span("lsh1"), timed(times, "lsh1"):
                pairs, sims = lsh.candidate_pairs(csr, deadline=deadline)
            n_cand1 = int(pairs.shape[0])
            with span("cluster1", pairs=n_cand1), timed(times, "cluster1"):
                clustering = cluster_rows(
                    csr, pairs, sims,
                    threshold_size=config.threshold_size,
                    measure=config.measure,
                    deadline=deadline,
                )
            row_order = clustering.order
            with span("permute1"), timed(times, "permute1"):
                reordered = permute_csr_rows(csr, row_order)
        else:
            row_order = np.arange(csr.n_rows, dtype=np.int64)
            reordered = csr

        # ---- tiling -----------------------------------------------------
        if deadline is not None:
            deadline.check("tile")
        with span("tile"), timed(times, "tile"):
            tiled = tile_matrix(
                reordered,
                config.panel_height,
                config.dense_threshold,
                max_dense_cols=config.max_dense_cols,
            )

        # ---- round 2 gate + reorder of the remainder -------------------
        if deadline is not None:
            deadline.check("sim2")
        with span("sim2"), timed(times, "sim2"):
            gate2 = should_reorder_round2(
                tiled.sparse_part, skip_above=config.avg_sim_skip
            )
        do_round2 = gate2.reorder if config.force_round2 is None else config.force_round2
        n_cand2 = 0
        if do_round2 and tiled.sparse_part.nnz:
            with span("lsh2"), timed(times, "lsh2"):
                pairs2, sims2 = lsh.candidate_pairs(
                    tiled.sparse_part, deadline=deadline
                )
            n_cand2 = int(pairs2.shape[0])
            with span("cluster2", pairs=n_cand2), timed(times, "cluster2"):
                clustering2 = cluster_rows(
                    tiled.sparse_part,
                    pairs2,
                    sims2,
                    threshold_size=config.threshold_size,
                    measure=config.measure,
                    deadline=deadline,
                )
            remainder_order = clustering2.order
            remainder = permute_csr_rows(tiled.sparse_part, remainder_order)
        else:
            do_round2 = False
            remainder_order = np.arange(csr.n_rows, dtype=np.int64)
            remainder = tiled.sparse_part

    stats = PlanStats(
        dense_ratio_before=gate1.indicator,
        dense_ratio_after=tiled.dense_ratio,
        avg_sim_before=gate2.indicator,
        avg_sim_after=average_consecutive_similarity(remainder),
        round1_applied=bool(do_round1),
        round2_applied=bool(do_round2),
        n_candidates_round1=n_cand1,
        n_candidates_round2=n_cand2,
    )
    plan = ExecutionPlan(
        original=csr,
        row_order=row_order,
        tiled=tiled,
        remainder=remainder,
        remainder_order=remainder_order,
        stats=stats,
        preprocess_seconds=times,
    )
    return attach_backend(plan, config)
