"""Incremental (online) row placement — extension beyond the paper.

The paper's §4 closes with an *online scenario*: reorder in the first
iteration, keep the result if it is faster.  For workloads where the sparse
matrix **grows** (streaming graphs, arriving users in a recommender), a
full re-clustering per batch is wasteful.  :class:`OnlineReorderer`
maintains the LSH state incrementally:

* it keeps the MinHash hash functions and per-band bucket tables of all
  rows seen so far;
* a new row is hashed in ``O(siglen * nnz_row)``, its band buckets yield
  candidate neighbours, the best exact-similarity match above
  ``min_similarity`` decides which cluster the row joins (or it starts a
  new cluster);
* :meth:`order` emits the current grouped row order at any time, giving
  the same panel-locality benefit as a batch re-run at a fraction of the
  cost.

Consistency contract (tested): inserting the rows of a matrix one by one
groups same-pattern rows together exactly like the batch pipeline does,
and the emitted order is always a permutation of the rows seen.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.similarity.minhash import MERSENNE_PRIME
from repro.sparse.csr import CSRMatrix
from repro.util.rng import as_generator
from repro.util.validation import check_in_range, check_integer_array, check_positive

__all__ = ["OnlineReorderer"]


class OnlineReorderer:
    """Streaming row-clustering index (see module docstring).

    Parameters
    ----------
    n_cols:
        Column universe of the incoming rows.
    siglen, bsize:
        MinHash/LSH parameters (paper defaults 128/2).
    min_similarity:
        A new row joins the best candidate's cluster only if their exact
        Jaccard similarity reaches this (default 0.3 — below that, reuse
        is too thin to pay for grouping).
    max_cluster:
        Clusters stop accepting rows at this size (the Alg. 3
        ``threshold_size`` analogue).
    seed:
        Hash-function seed.
    """

    def __init__(
        self,
        n_cols: int,
        *,
        siglen: int = 128,
        bsize: int = 2,
        min_similarity: float = 0.3,
        max_cluster: int = 256,
        seed: int = 0,
    ):
        self.n_cols = check_positive("n_cols", n_cols)
        self.siglen = check_positive("siglen", siglen)
        self.bsize = check_positive("bsize", bsize)
        if self.siglen % self.bsize != 0:
            raise ValidationError(
                f"bsize={bsize} must divide siglen={siglen}"
            )
        self.min_similarity = check_in_range(
            "min_similarity", min_similarity, 0.0, 1.0
        )
        self.max_cluster = check_positive("max_cluster", max_cluster)

        rng = as_generator(seed)
        p = int(MERSENNE_PRIME)
        self._p = p
        self._a = rng.integers(1, p, size=siglen, dtype=np.int64)
        self._b = rng.integers(0, p, size=siglen, dtype=np.int64)
        self._nbands = siglen // bsize
        self._mix = rng.integers(1, 2**61, size=(self._nbands, bsize), dtype=np.int64)

        #: per-band dict: band key -> list of row ids
        self._buckets: list[dict[int, list[int]]] = [dict() for _ in range(self._nbands)]
        self._supports: list[np.ndarray] = []  #: sorted column sets per row
        self._cluster_of: list[int] = []  #: row -> cluster id
        self._clusters: list[list[int]] = []  #: cluster id -> member rows

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Rows inserted so far."""
        return len(self._supports)

    @property
    def n_clusters(self) -> int:
        """Clusters formed so far."""
        return len(self._clusters)

    def _signature(self, cols: np.ndarray) -> np.ndarray:
        if cols.size == 0:
            return np.full(self.siglen, self._p, dtype=np.int64)
        folded = cols % self._p
        hashed = (self._a[:, None] * folded[None, :] + self._b[:, None]) % self._p
        return hashed.min(axis=1)

    def _band_keys(self, signature: np.ndarray) -> np.ndarray:
        bands = signature.reshape(self._nbands, self.bsize)
        with np.errstate(over="ignore"):
            return (bands * self._mix).sum(axis=1, dtype=np.int64)

    def _jaccard_with(self, cols: np.ndarray, other_row: int) -> float:
        other = self._supports[other_row]
        if cols.size == 0 and other.size == 0:
            return 0.0
        inter = np.intersect1d(cols, other, assume_unique=True).size
        union = cols.size + other.size - inter
        return inter / union if union else 0.0

    # ------------------------------------------------------------------
    def insert_row(self, cols) -> int:
        """Insert a row given its column indices; returns its cluster id.

        Empty rows form/extend a dedicated singleton-cluster stream (they
        carry no reuse).
        """
        cols = check_integer_array(
            "cols", np.unique(np.asarray(cols, dtype=np.int64)),
            min_value=0, max_value=self.n_cols - 1,
        )
        row_id = len(self._supports)
        self._supports.append(cols)

        best_row, best_sim = -1, 0.0
        signature = self._signature(cols)
        keys = self._band_keys(signature)
        if cols.size:
            seen: set[int] = set()
            for band, key in enumerate(keys.tolist()):
                for candidate in self._buckets[band].get(key, ()):
                    if candidate in seen:
                        continue
                    seen.add(candidate)
                    sim = self._jaccard_with(cols, candidate)
                    if sim > best_sim:
                        best_row, best_sim = candidate, sim

        if (
            best_row >= 0
            and best_sim >= self.min_similarity
            and len(self._clusters[self._cluster_of[best_row]]) < self.max_cluster
        ):
            cluster = self._cluster_of[best_row]
        else:
            cluster = len(self._clusters)
            self._clusters.append([])
        self._clusters[cluster].append(row_id)
        self._cluster_of.append(cluster)

        if cols.size:
            for band, key in enumerate(keys.tolist()):
                self._buckets[band].setdefault(int(key), []).append(row_id)
        return cluster

    def insert_matrix(self, csr: CSRMatrix) -> list[int]:
        """Insert every row of ``csr`` in order; returns their cluster ids."""
        if csr.n_cols != self.n_cols:
            raise ValidationError(
                f"matrix has {csr.n_cols} columns, index expects {self.n_cols}"
            )
        return [self.insert_row(csr.row_cols(i)) for i in range(csr.n_rows)]

    def order(self) -> np.ndarray:
        """Current grouped row order (cluster by cluster, insertion order)."""
        if not self._clusters:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.asarray(c, dtype=np.int64) for c in self._clusters]
        )

    def cluster_sizes(self) -> np.ndarray:
        """Sizes of the current clusters."""
        return np.array([len(c) for c in self._clusters], dtype=np.int64)
