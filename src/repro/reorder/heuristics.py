"""The §4 skip heuristics.

Row reordering is not always useful.  The paper identifies two cases and a
cheap indicator for each:

* **Already clustered** (Fig. 7a): if ASpT on the *original* matrix already
  captures more than ``dense_ratio_skip`` (10%) of the non-zeros in dense
  tiles, skip round 1 — reordering with a small candidate set may break the
  existing clusters, and LSH on near-duplicate neighbouring rows generates
  huge candidate sets (cost without benefit).
* **Remainder already local**: if the average Jaccard similarity between
  consecutive rows of the sparse remainder exceeds ``avg_sim_skip`` (0.1),
  skip round 2 for the same reason.

(The third case — a *scattered* matrix like Fig. 7b — needs no explicit
check: LSH simply produces no candidate pairs and the clustering degenerates
to the identity.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aspt.stats import dense_ratio
from repro.contracts import checked, validates
from repro.similarity.jaccard import average_consecutive_similarity
from repro.sparse.csr import CSRMatrix
from repro.util.validation import check_in_range

__all__ = ["HeuristicDecision", "should_reorder_round1", "should_reorder_round2"]


@dataclass(frozen=True)
class HeuristicDecision:
    """Outcome of a skip heuristic.

    Attributes
    ----------
    reorder:
        True when the round should run.
    indicator:
        The measured indicator value (dense ratio for round 1, average
        consecutive similarity for round 2).
    threshold:
        The threshold it was compared against.
    """

    reorder: bool
    indicator: float
    threshold: float


@checked(validates("csr"))
def should_reorder_round1(
    csr: CSRMatrix,
    panel_height: int,
    dense_threshold: int = 2,
    *,
    skip_above: float = 0.10,
) -> HeuristicDecision:
    """Round-1 gate: reorder unless the original dense ratio exceeds 10%.

    The paper (§5.2): "for all matrices that show slowdown after
    row-reordering, the original ratios of nonzeros in the dense tiles are
    greater than 10%. So we set the threshold to 10%."
    """
    skip_above = check_in_range("skip_above", skip_above, 0.0, 1.0)
    ratio = dense_ratio(csr, panel_height, dense_threshold)
    return HeuristicDecision(reorder=ratio <= skip_above, indicator=ratio, threshold=skip_above)


def should_reorder_round2(
    sparse_part: CSRMatrix,
    *,
    skip_above: float = 0.10,
) -> HeuristicDecision:
    """Round-2 gate: reorder unless consecutive rows are already similar.

    The paper (§5.2): "we skip the second round of row-reordering if the
    average similarity is greater than 0.1."
    """
    skip_above = check_in_range("skip_above", skip_above, 0.0, 1.0)
    avg = average_consecutive_similarity(sparse_part)
    return HeuristicDecision(reorder=avg <= skip_above, indicator=avg, threshold=skip_above)
